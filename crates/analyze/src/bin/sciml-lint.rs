//! sciml-lint — static analysis gate for the sciml workspace.
//!
//! ```text
//! sciml-lint [--path <dir>] [--config <lint.toml>] [--json]
//!            [--require <rule>=<max>[,...]] [--update-baseline]
//!            [--quiet]
//! ```
//!
//! Walks `<path>/crates` *and* `<path>/shims` (or `<path>` itself when
//! it is not a repo root) and exits non-zero on any non-baselined
//! violation or stale baseline entry. `--update-baseline` rewrites the
//! generated sections of `lint.toml` — the violation baseline and the
//! unsafe inventory — to match reality and exits 0. `--require`
//! additionally gates on *total* per-rule counts (baselined included),
//! mirroring `sciml scrape --require`.

use sciml_analyze::{lint_tree, Config, Outcome, Report, RULE_NAMES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    path: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    update_baseline: bool,
    quiet: bool,
    require: Vec<(String, usize)>,
}

/// Parses one `--require` value: comma-separated `<rule>=<max>` pairs.
fn parse_require(value: &str, out: &mut Vec<(String, usize)>) -> Result<(), String> {
    for part in value.split(',').filter(|s| !s.is_empty()) {
        let (rule, max) = part
            .split_once('=')
            .ok_or_else(|| format!("--require expects <rule>=<max>, got `{part}`"))?;
        let rule = rule.trim();
        if !RULE_NAMES.contains(&rule) {
            return Err(format!("--require: unknown rule `{rule}`"));
        }
        let max: usize = max
            .trim()
            .parse()
            .map_err(|_| format!("--require: `{part}` needs an integer bound"))?;
        out.push((rule.to_string(), max));
    }
    Ok(())
}

/// Checks `--require` bounds against total per-rule counts. Returns
/// failure messages (empty = pass).
fn check_require(outcome: &Outcome, require: &[(String, usize)]) -> Vec<String> {
    let mut failures = Vec::new();
    for (rule, max) in require {
        let total: usize = outcome
            .counts
            .iter()
            .filter(|((_, r), _)| r == rule)
            .map(|(_, &c)| c)
            .sum();
        if total > *max {
            failures.push(format!(
                "--require {rule}={max} failed: {total} total violation(s)"
            ));
        }
    }
    failures
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: PathBuf::from("."),
        config: None,
        json: false,
        update_baseline: false,
        quiet: false,
        require: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--path" => {
                args.path = PathBuf::from(it.next().ok_or("--path needs a value")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?));
            }
            "--json" => args.json = true,
            "--update-baseline" => args.update_baseline = true,
            "--quiet" | "-q" => args.quiet = true,
            "--require" => {
                let value = it.next().ok_or("--require needs <rule>=<max>")?;
                parse_require(&value, &mut args.require)?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: sciml-lint [--path <dir>] [--config <lint.toml>] [--json] \
                            [--require <rule>=<max>[,...]] [--update-baseline] [--quiet]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let repo_root = args.path.clone();
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| repo_root.join("lint.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sciml-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // A repo root is scanned as crates/ + shims/ (the lockcheck shim
    // code is linted too); anything else is scanned as-is.
    let crates_dir = repo_root.join("crates");
    let scan_roots: Vec<PathBuf> = if crates_dir.is_dir() {
        let shims_dir = repo_root.join("shims");
        if shims_dir.is_dir() {
            vec![crates_dir, shims_dir]
        } else {
            vec![crates_dir]
        }
    } else {
        vec![repo_root.clone()]
    };
    let outcome = match lint_tree(&scan_roots, &repo_root, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sciml-lint: scanning: {e}");
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let entries = outcome.as_baseline();
        if let Err(e) =
            Config::update_baseline_file(&config_path, &entries, &outcome.unsafe_entries)
        {
            eprintln!("sciml-lint: writing {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!(
                "baseline updated: {} entr{}, {} unsafe site(s) inventoried in {}",
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" },
                outcome.unsafe_entries.len(),
                config_path.display()
            );
        }
        return ExitCode::SUCCESS;
    }

    let report = Report::new(&outcome);
    if args.json {
        println!("{}", report.json());
    } else if !args.quiet {
        print!("{}", report.table());
        let failures = report.failures();
        if !failures.is_empty() {
            print!("\n{failures}");
        }
    }
    let require_failures = check_require(&outcome, &args.require);
    for f in &require_failures {
        eprintln!("sciml-lint: {f}");
    }
    if outcome.is_green() && require_failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
