//! sciml-lint — static analysis gate for the sciml workspace.
//!
//! ```text
//! sciml-lint [--path <dir>] [--config <lint.toml>] [--json]
//!            [--update-baseline] [--quiet]
//! ```
//!
//! Walks `<path>/crates` (or `<path>` itself when it is not a repo
//! root) and exits non-zero on any non-baselined violation or stale
//! baseline entry. `--update-baseline` rewrites the generated section
//! of `lint.toml` to match reality and exits 0.

use sciml_analyze::{lint_tree, Config, Report};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    path: PathBuf,
    config: Option<PathBuf>,
    json: bool,
    update_baseline: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        path: PathBuf::from("."),
        config: None,
        json: false,
        update_baseline: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--path" => {
                args.path = PathBuf::from(it.next().ok_or("--path needs a value")?);
            }
            "--config" => {
                args.config = Some(PathBuf::from(it.next().ok_or("--config needs a value")?));
            }
            "--json" => args.json = true,
            "--update-baseline" => args.update_baseline = true,
            "--quiet" | "-q" => args.quiet = true,
            "--help" | "-h" => {
                return Err(
                    "usage: sciml-lint [--path <dir>] [--config <lint.toml>] [--json] \
                            [--update-baseline] [--quiet]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let repo_root = args.path.clone();
    let config_path = args
        .config
        .clone()
        .unwrap_or_else(|| repo_root.join("lint.toml"));
    let cfg = match Config::load(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("sciml-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let crates_dir = repo_root.join("crates");
    let scan_root = if crates_dir.is_dir() {
        crates_dir
    } else {
        repo_root.clone()
    };
    let outcome = match lint_tree(&scan_root, &repo_root, &cfg) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("sciml-lint: scanning {}: {e}", scan_root.display());
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let entries = outcome.as_baseline();
        if let Err(e) = Config::update_baseline_file(&config_path, &entries) {
            eprintln!("sciml-lint: writing {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
        if !args.quiet {
            println!(
                "baseline updated: {} entr{} in {}",
                entries.len(),
                if entries.len() == 1 { "y" } else { "ies" },
                config_path.display()
            );
        }
        return ExitCode::SUCCESS;
    }

    let report = Report::new(&outcome);
    if args.json {
        println!("{}", report.json());
    } else if !args.quiet {
        print!("{}", report.table());
        let failures = report.failures();
        if !failures.is_empty() {
            print!("\n{failures}");
        }
    }
    if outcome.is_green() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
