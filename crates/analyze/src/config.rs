//! `lint.toml` parsing: rule configuration plus the grandfather
//! baseline, in a deliberately small TOML subset (sections, string /
//! integer / string-array values) so the analyzer stays std-only.
//!
//! The baseline lives between `# BEGIN GENERATED BASELINE` /
//! `# END GENERATED BASELINE` markers and is rewritten in place by
//! `sciml-lint --update-baseline`; everything outside the markers is
//! hand-maintained configuration and survives regeneration verbatim.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Marker opening the generated baseline section.
pub const BASELINE_BEGIN: &str = "# BEGIN GENERATED BASELINE (sciml-lint --update-baseline)";
/// Marker closing the generated baseline section.
pub const BASELINE_END: &str = "# END GENERATED BASELINE";
/// Marker opening the generated unsafe-inventory section.
pub const UNSAFE_BEGIN: &str = "# BEGIN GENERATED UNSAFE INVENTORY (sciml-lint --update-baseline)";
/// Marker closing the generated unsafe-inventory section.
pub const UNSAFE_END: &str = "# END GENERATED UNSAFE INVENTORY";

/// One grandfathered (file, rule) violation count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Repo-relative file path (forward slashes).
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Number of violations grandfathered in this file.
    pub count: usize,
}

/// Root / boundary configuration for one graph rule
/// (`[rule.<name>]` section).
#[derive(Debug, Clone, Default)]
pub struct RuleCfg {
    /// Root functions as `"path/suffix.rs:fn_name"` specs.
    pub roots: Vec<String>,
    /// Functions the reachability walk never enters (same spec format,
    /// or a bare fn name).
    pub boundaries: Vec<String>,
}

/// One recorded unsafe site in the generated inventory
/// (`[[unsafe]]` table between the inventory markers).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct UnsafeEntry {
    /// Repo-relative file path.
    pub file: String,
    /// `block`, `impl`, or `fn`.
    pub kind: String,
    /// Enclosing fn (blocks / unsafe fns) or impl type.
    pub context: String,
    /// Normalized FNV-1a 64 hash of the span's non-whitespace bytes.
    pub hash: String,
    /// Whether a SAFETY comment covers the site.
    pub safety: bool,
}

/// Parsed `lint.toml`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose non-test code must be panic-free (`no_panics`).
    pub hot_path_crates: Vec<String>,
    /// Paths (repo-relative prefixes) designated as decode inner loops
    /// for the `no_instant` rule.
    pub instant_paths: Vec<String>,
    /// Grandfathered violations: `(file, rule) -> count`.
    pub baseline: BTreeMap<(String, String), usize>,
    /// Graph-rule roots/boundaries, keyed by rule name.
    pub rules: BTreeMap<String, RuleCfg>,
    /// The committed unsafe inventory. `None` means the config has no
    /// inventory section yet and the ratchet is not enforced (so unit
    /// fixtures and fresh repos don't instantly fail).
    pub unsafe_inventory: Option<Vec<UnsafeEntry>>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            hot_path_crates: ["codec", "pipeline", "serve", "store", "compress"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
            instant_paths: vec![
                "crates/codec/src".into(),
                "crates/compress/src".into(),
                "crates/pipeline/src/pipeline.rs".into(),
            ],
            baseline: BTreeMap::new(),
            rules: BTreeMap::new(),
            unsafe_inventory: None,
        }
    }
}

/// A `lint.toml` parse failure with its line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-indexed line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lint.toml:{}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

enum Section {
    None,
    Lint,
    Baseline,
    Rule(String),
    Unsafe,
    Unknown,
}

impl Config {
    /// Parses `lint.toml` text.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut cfg = Config {
            baseline: BTreeMap::new(),
            ..Config::default()
        };
        let mut section = Section::None;
        let mut cur: Option<BaselineEntry> = None;
        let mut cur_unsafe: Option<UnsafeEntry> = None;
        let finish = |cur: &mut Option<BaselineEntry>,
                      cur_unsafe: &mut Option<UnsafeEntry>,
                      cfg: &mut Config,
                      line: usize|
         -> Result<(), ConfigError> {
            if let Some(e) = cur.take() {
                if e.file.is_empty() || e.rule.is_empty() {
                    return Err(ConfigError {
                        line,
                        message: "baseline entry needs both `file` and `rule`".into(),
                    });
                }
                cfg.baseline.insert((e.file, e.rule), e.count);
            }
            if let Some(e) = cur_unsafe.take() {
                if e.file.is_empty() || e.kind.is_empty() || e.hash.is_empty() {
                    return Err(ConfigError {
                        line,
                        message: "unsafe entry needs `file`, `kind`, and `hash`".into(),
                    });
                }
                cfg.unsafe_inventory.get_or_insert_with(Vec::new).push(e);
            }
            Ok(())
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line == UNSAFE_BEGIN {
                // An (even empty) inventory section turns the ratchet
                // on: "no unsafe recorded" then means "no unsafe
                // allowed", not "not enforced".
                cfg.unsafe_inventory.get_or_insert_with(Vec::new);
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[baseline]]" {
                finish(&mut cur, &mut cur_unsafe, &mut cfg, lineno)?;
                section = Section::Baseline;
                cur = Some(BaselineEntry {
                    file: String::new(),
                    rule: String::new(),
                    count: 0,
                });
                continue;
            }
            if line == "[[unsafe]]" {
                finish(&mut cur, &mut cur_unsafe, &mut cfg, lineno)?;
                section = Section::Unsafe;
                cur_unsafe = Some(UnsafeEntry {
                    file: String::new(),
                    kind: String::new(),
                    context: String::new(),
                    hash: String::new(),
                    safety: false,
                });
                continue;
            }
            if line.starts_with('[') {
                finish(&mut cur, &mut cur_unsafe, &mut cfg, lineno)?;
                section = if line == "[lint]" {
                    Section::Lint
                } else if let Some(rule) = line
                    .strip_prefix("[rule.")
                    .and_then(|s| s.strip_suffix(']'))
                {
                    cfg.rules.entry(rule.to_string()).or_default();
                    Section::Rule(rule.to_string())
                } else {
                    Section::Unknown
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: lineno,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let key = key.trim();
            let value = value.trim();
            match section {
                Section::Lint => match key {
                    "hot_path_crates" => cfg.hot_path_crates = parse_string_array(value, lineno)?,
                    "instant_paths" => cfg.instant_paths = parse_string_array(value, lineno)?,
                    _ => {
                        return Err(ConfigError {
                            line: lineno,
                            message: format!("unknown [lint] key `{key}`"),
                        })
                    }
                },
                Section::Baseline => {
                    let entry = cur.as_mut().ok_or(ConfigError {
                        line: lineno,
                        message: "baseline key outside [[baseline]]".into(),
                    })?;
                    match key {
                        "file" => entry.file = parse_string(value, lineno)?,
                        "rule" => entry.rule = parse_string(value, lineno)?,
                        "count" => {
                            entry.count = value.parse().map_err(|_| ConfigError {
                                line: lineno,
                                message: format!("count must be an integer, got `{value}`"),
                            })?
                        }
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown [[baseline]] key `{key}`"),
                            })
                        }
                    }
                }
                Section::Rule(ref rule) => {
                    let entry = cfg.rules.entry(rule.clone()).or_default();
                    match key {
                        "roots" => entry.roots = parse_string_array(value, lineno)?,
                        "boundaries" => entry.boundaries = parse_string_array(value, lineno)?,
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown [rule.{rule}] key `{key}`"),
                            })
                        }
                    }
                }
                Section::Unsafe => {
                    let entry = cur_unsafe.as_mut().ok_or(ConfigError {
                        line: lineno,
                        message: "unsafe key outside [[unsafe]]".into(),
                    })?;
                    match key {
                        "file" => entry.file = parse_string(value, lineno)?,
                        "kind" => entry.kind = parse_string(value, lineno)?,
                        "context" => entry.context = parse_string(value, lineno)?,
                        "hash" => entry.hash = parse_string(value, lineno)?,
                        "safety" => {
                            entry.safety = match value {
                                "true" => true,
                                "false" => false,
                                _ => {
                                    return Err(ConfigError {
                                        line: lineno,
                                        message: format!(
                                            "safety must be true or false, got `{value}`"
                                        ),
                                    })
                                }
                            }
                        }
                        _ => {
                            return Err(ConfigError {
                                line: lineno,
                                message: format!("unknown [[unsafe]] key `{key}`"),
                            })
                        }
                    }
                }
                Section::Unknown => {}
                Section::None => {
                    return Err(ConfigError {
                        line: lineno,
                        message: "key before any section header".into(),
                    })
                }
            }
        }
        finish(&mut cur, &mut cur_unsafe, &mut cfg, text.lines().count())?;
        Ok(cfg)
    }

    /// Loads `lint.toml` from `path`; a missing file yields the default
    /// configuration with an empty baseline.
    pub fn load(path: &Path) -> Result<Self, ConfigError> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Config::default()),
            Err(e) => Err(ConfigError {
                line: 0,
                message: format!("reading {}: {e}", path.display()),
            }),
        }
    }

    /// Serializes `entries` as the generated baseline section body.
    pub fn render_baseline(entries: &[BaselineEntry]) -> String {
        let mut out = String::new();
        for e in entries {
            out.push_str(&format!(
                "\n[[baseline]]\nfile = \"{}\"\nrule = \"{}\"\ncount = {}\n",
                e.file, e.rule, e.count
            ));
        }
        out
    }

    /// Serializes `entries` as the generated unsafe-inventory body.
    pub fn render_unsafe(entries: &[UnsafeEntry]) -> String {
        let mut out = String::new();
        for e in entries {
            out.push_str(&format!(
                "\n[[unsafe]]\nfile = \"{}\"\nkind = \"{}\"\ncontext = \"{}\"\nhash = \"{}\"\nsafety = {}\n",
                e.file, e.kind, e.context, e.hash, e.safety
            ));
        }
        out
    }

    /// Rewrites the marker-delimited generated sections of `lint.toml`
    /// at `path` — the violation baseline and the unsafe inventory —
    /// creating the file (markers included) if absent. Returns the new
    /// file text.
    pub fn update_baseline_file(
        path: &Path,
        entries: &[BaselineEntry],
        unsafe_entries: &[UnsafeEntry],
    ) -> std::io::Result<String> {
        let existing = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => format!(
                "# sciml-lint configuration (see docs/ARCHITECTURE.md §4f and §4k)\n\n{}\n{}\n\n{}\n{}\n",
                BASELINE_BEGIN, BASELINE_END, UNSAFE_BEGIN, UNSAFE_END
            ),
            Err(e) => return Err(e),
        };
        let text = replace_section(
            &existing,
            BASELINE_BEGIN,
            BASELINE_END,
            &Self::render_baseline(entries),
        );
        let text = replace_section(
            &text,
            UNSAFE_BEGIN,
            UNSAFE_END,
            &Self::render_unsafe(unsafe_entries),
        );
        std::fs::write(path, &text)?;
        Ok(text)
    }
}

/// Replaces the text between `begin` and `end` markers with `body`,
/// appending a fresh marker pair when the text has none.
fn replace_section(existing: &str, begin: &str, end: &str, body: &str) -> String {
    match (existing.find(begin), existing.find(end)) {
        (Some(b), Some(e)) if b < e => {
            let after_begin = b + begin.len();
            format!("{}{}\n{}", &existing[..after_begin], body, &existing[e..])
        }
        _ => format!("{}\n\n{}\n{}{}\n", existing.trim_end(), begin, body, end),
    }
}

fn parse_string(value: &str, line: usize) -> Result<String, ConfigError> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_string())
    } else {
        Err(ConfigError {
            line,
            message: format!("expected a quoted string, got `{value}`"),
        })
    }
}

fn parse_string_array(value: &str, line: usize) -> Result<Vec<String>, ConfigError> {
    let v = value.trim();
    let Some(inner) = v.strip_prefix('[').and_then(|s| s.strip_suffix(']')) else {
        return Err(ConfigError {
            line,
            message: format!("expected an array of strings, got `{value}`"),
        });
    };
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, line))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let text = r#"
# comment
[lint]
hot_path_crates = ["codec", "pipeline"]
instant_paths = ["crates/codec/src"]

# BEGIN GENERATED BASELINE (sciml-lint --update-baseline)
[[baseline]]
file = "crates/serve/src/server.rs"
rule = "no_panics"
count = 3

[[baseline]]
file = "crates/codec/src/lib.rs"
rule = "safety_comment"
count = 1
# END GENERATED BASELINE
"#;
        let cfg = Config::parse(text).unwrap();
        assert_eq!(cfg.hot_path_crates, vec!["codec", "pipeline"]);
        assert_eq!(
            cfg.baseline
                .get(&("crates/serve/src/server.rs".into(), "no_panics".into())),
            Some(&3)
        );
        assert_eq!(cfg.baseline.len(), 2);
    }

    #[test]
    fn missing_field_is_an_error() {
        let text = "[[baseline]]\nfile = \"x.rs\"\ncount = 1\n";
        assert!(Config::parse(text).is_err());
    }

    #[test]
    fn bad_syntax_reports_line() {
        let err = Config::parse("[lint]\nhot_path_crates = nope\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn baseline_roundtrip_through_markers() {
        let dir = std::env::temp_dir().join(format!("lint-cfg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint.toml");
        let entries = vec![BaselineEntry {
            file: "crates/a/src/lib.rs".into(),
            rule: "no_panics".into(),
            count: 2,
        }];
        Config::update_baseline_file(&path, &entries, &[]).unwrap();
        let cfg = Config::load(&path).unwrap();
        assert_eq!(
            cfg.baseline
                .get(&("crates/a/src/lib.rs".into(), "no_panics".into())),
            Some(&2)
        );
        // Hand-written config outside the markers survives an update.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text = format!("[lint]\nhot_path_crates = [\"codec\"]\n{text}");
        std::fs::write(&path, &text).unwrap();
        Config::update_baseline_file(&path, &[], &[]).unwrap();
        let cfg = Config::load(&path).unwrap();
        assert_eq!(cfg.hot_path_crates, vec!["codec"]);
        assert!(cfg.baseline.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parses_rule_sections() {
        let text = "[rule.no_panics_transitive]\nroots = [\"decode.rs:decode_into\"]\n\n\
                    [rule.no_blocking_in_reactor]\nroots = [\"reactor.rs:run\"]\nboundaries = [\"reactor.rs:maybe_dispatch\"]\n";
        let cfg = Config::parse(text).unwrap();
        assert_eq!(
            cfg.rules["no_panics_transitive"].roots,
            vec!["decode.rs:decode_into"]
        );
        assert_eq!(
            cfg.rules["no_blocking_in_reactor"].boundaries,
            vec!["reactor.rs:maybe_dispatch"]
        );
        let err = Config::parse("[rule.x]\nnope = [\"y\"]\n").unwrap_err();
        assert!(err.message.contains("unknown [rule.x] key"));
    }

    #[test]
    fn unsafe_inventory_roundtrip_and_empty_semantics() {
        // No section at all: the ratchet is off.
        assert!(Config::parse("[lint]\nhot_path_crates = []\n")
            .unwrap()
            .unsafe_inventory
            .is_none());
        // An empty marker pair turns it on with zero recorded sites.
        let text = format!("{UNSAFE_BEGIN}\n{UNSAFE_END}\n");
        let cfg = Config::parse(&text).unwrap();
        assert_eq!(cfg.unsafe_inventory.as_deref(), Some(&[] as &[UnsafeEntry]));

        let dir = std::env::temp_dir().join(format!("lint-unsafe-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lint.toml");
        let entries = vec![UnsafeEntry {
            file: "crates/simd/src/gather.rs".into(),
            kind: "block".into(),
            context: "gather_rows".into(),
            hash: "00ff00ff00ff00ff".into(),
            safety: true,
        }];
        Config::update_baseline_file(&path, &[], &entries).unwrap();
        let cfg = Config::load(&path).unwrap();
        assert_eq!(cfg.unsafe_inventory.as_deref(), Some(entries.as_slice()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
