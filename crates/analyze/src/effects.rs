//! Graph-reachability effect rules.
//!
//! Each rule walks the [`Workspace`] call
//! graph from configured root functions and fails if any reachable
//! function carries a matching local effect token. Violations name the
//! whole chain:
//!
//! ```text
//! decode_into -> gather_rows -> lut_get [panic! at crates/simd/src/gather.rs:211]
//! ```
//!
//! * **Roots** come from `lint.toml`'s `[rule.<name>]` sections as
//!   `"path/suffix.rs:fn_name"` specs.
//! * **Boundaries** (same spec format, or a bare fn name) are functions
//!   the walk never enters — e.g. the reactor's worker-pool dispatch
//!   seam, where blocking is the *point*.
//! * Per-edge waivers: a `// lint:allow(<rule>): <reason>` on a call
//!   line severs that edge for that rule; on an effect line it drops
//!   the effect (handled during graph construction).

use crate::config::Config;
use crate::graph::{EffectKind, Workspace};
use crate::rules::Violation;
use std::collections::HashMap;

/// One reported effect chain (for the JSON report).
#[derive(Debug, Clone)]
pub struct Chain {
    /// The rule that fired.
    pub rule: &'static str,
    /// File of the root function.
    pub root_file: String,
    /// Declaration line of the root function.
    pub root_line: usize,
    /// Function names from the root to the offending function.
    pub path: Vec<String>,
    /// The offending token.
    pub token: String,
    /// File containing the token.
    pub site_file: String,
    /// Line of the token.
    pub site_line: usize,
}

impl Chain {
    /// The human rendering used as the violation token.
    pub fn render(&self) -> String {
        format!(
            "{} [{} at {}:{}]",
            self.path.join(" -> "),
            self.token,
            self.site_file,
            self.site_line
        )
    }
}

const GRAPH_RULES: &[(&str, EffectKind)] = &[
    ("no_panics_transitive", EffectKind::Panic),
    ("no_alloc_hot_loop", EffectKind::Alloc),
    ("no_blocking_in_reactor", EffectKind::Block),
];

/// Evaluates every configured graph rule against the workspace.
pub fn evaluate(ws: &Workspace, cfg: &Config) -> (Vec<Violation>, Vec<Chain>) {
    let mut violations = Vec::new();
    let mut chains = Vec::new();
    for &(rule, kind) in GRAPH_RULES {
        let Some(rule_cfg) = cfg.rules.get(rule) else {
            continue;
        };
        let boundary: Vec<&String> = rule_cfg.boundaries.iter().collect();
        let is_boundary =
            |idx: usize| -> bool { boundary.iter().any(|spec| matches_spec(ws, idx, spec)) };
        for spec in &rule_cfg.roots {
            let roots: Vec<usize> = (0..ws.nodes.len())
                .filter(|&i| matches_spec(ws, i, spec))
                .collect();
            if roots.is_empty() {
                violations.push(Violation {
                    file: "lint.toml".into(),
                    line: 0,
                    rule,
                    token: format!("root `{spec}` matched no function"),
                });
                continue;
            }
            for root in roots {
                walk_root(
                    ws,
                    rule,
                    kind,
                    root,
                    &is_boundary,
                    &mut violations,
                    &mut chains,
                );
            }
        }
    }
    (violations, chains)
}

fn walk_root(
    ws: &Workspace,
    rule: &'static str,
    kind: EffectKind,
    root: usize,
    is_boundary: &dyn Fn(usize) -> bool,
    violations: &mut Vec<Violation>,
    chains: &mut Vec<Chain>,
) {
    // BFS with parent pointers for chain reconstruction.
    let mut parent: HashMap<usize, usize> = HashMap::new();
    let mut queue = std::collections::VecDeque::new();
    let mut seen = vec![false; ws.nodes.len()];
    seen[root] = true;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for effect in &ws.nodes[u].effects {
            if effect.kind != kind {
                continue;
            }
            let mut path = vec![ws.nodes[u].name.clone()];
            let mut at = u;
            while let Some(&p) = parent.get(&at) {
                path.push(ws.nodes[p].name.clone());
                at = p;
            }
            path.reverse();
            let chain = Chain {
                rule,
                root_file: ws.nodes[root].file.clone(),
                root_line: ws.nodes[root].decl_line,
                path,
                token: effect.token.clone(),
                site_file: ws.nodes[u].file.clone(),
                site_line: effect.line,
            };
            violations.push(Violation {
                file: chain.root_file.clone(),
                line: chain.root_line,
                rule,
                token: chain.render(),
            });
            chains.push(chain);
        }
        for call in &ws.nodes[u].calls {
            if call.waived.contains(rule) {
                continue;
            }
            for v in ws.resolve(u, call) {
                if seen[v] || is_boundary(v) {
                    continue;
                }
                seen[v] = true;
                parent.insert(v, u);
                queue.push_back(v);
            }
        }
    }
}

/// Does node `idx` match a `"path/suffix.rs:fn_name"` spec (or a bare
/// `fn_name`)?
fn matches_spec(ws: &Workspace, idx: usize, spec: &str) -> bool {
    let n = &ws.nodes[idx];
    match spec.rsplit_once(':') {
        Some((path, name)) => n.name == name && n.file.ends_with(path),
        None => n.name == spec,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RuleCfg;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(r, t)| (r.to_string(), t.to_string()))
            .collect();
        Workspace::build(&files)
    }

    fn cfg_with(rule: &str, roots: &[&str], boundaries: &[&str]) -> Config {
        let mut cfg = Config::default();
        cfg.rules.insert(
            rule.to_string(),
            RuleCfg {
                roots: roots.iter().map(|s| s.to_string()).collect(),
                boundaries: boundaries.iter().map(|s| s.to_string()).collect(),
            },
        );
        cfg
    }

    #[test]
    fn three_deep_panic_chain_reports_full_path() {
        let w = ws(&[(
            "crates/c/src/decode.rs",
            "pub fn decode_into() { gather_rows(); }\n\
             fn gather_rows() { lut_get(); }\n\
             fn lut_get() { panic!(\"bad index\") }\n",
        )]);
        let cfg = cfg_with("no_panics_transitive", &["decode.rs:decode_into"], &[]);
        let (violations, chains) = evaluate(&w, &cfg);
        assert_eq!(violations.len(), 1);
        assert_eq!(chains.len(), 1);
        assert_eq!(
            chains[0].path,
            vec!["decode_into", "gather_rows", "lut_get"]
        );
        assert_eq!(chains[0].token, "panic!");
        assert_eq!(chains[0].site_line, 3);
        assert!(violations[0].token.contains(
            "decode_into -> gather_rows -> lut_get [panic! at crates/c/src/decode.rs:3]"
        ));
        // The violation is attributed to the root's declaration.
        assert_eq!(violations[0].file, "crates/c/src/decode.rs");
        assert_eq!(violations[0].line, 1);
    }

    #[test]
    fn boundary_stops_traversal() {
        let w = ws(&[(
            "crates/net/src/reactor.rs",
            "pub fn run() { step(); dispatch(); }\n\
             fn step() {}\n\
             fn dispatch() { blocking_send(); }\n\
             fn blocking_send() { ch.recv(); }\n",
        )]);
        let cfg = cfg_with("no_blocking_in_reactor", &["reactor.rs:run"], &[]);
        let (violations, _) = evaluate(&w, &cfg);
        assert_eq!(violations.len(), 1);
        let cfg = cfg_with(
            "no_blocking_in_reactor",
            &["reactor.rs:run"],
            &["reactor.rs:dispatch"],
        );
        let (violations, _) = evaluate(&w, &cfg);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn edge_waiver_severs_the_edge() {
        let w = ws(&[(
            "crates/c/src/lib.rs",
            "pub fn hot() {\n    // lint:allow(no_alloc_hot_loop): cold error path only\n    \
             slow_path();\n}\nfn slow_path() { let v = Vec::new(); }\n",
        )]);
        let cfg = cfg_with("no_alloc_hot_loop", &["lib.rs:hot"], &[]);
        let (violations, _) = evaluate(&w, &cfg);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn unmatched_root_is_a_violation() {
        let w = ws(&[("crates/c/src/lib.rs", "fn f() {}\n")]);
        let cfg = cfg_with("no_panics_transitive", &["lib.rs:not_there"], &[]);
        let (violations, _) = evaluate(&w, &cfg);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].token.contains("matched no function"));
    }

    #[test]
    fn clean_chain_is_green() {
        let w = ws(&[(
            "crates/c/src/lib.rs",
            "pub fn decode_into(buf: &mut [u8]) { widen(buf); }\n\
             fn widen(buf: &mut [u8]) { for b in buf { *b += 1 } }\n",
        )]);
        let cfg = cfg_with("no_panics_transitive", &["lib.rs:decode_into"], &[]);
        let (violations, chains) = evaluate(&w, &cfg);
        assert!(violations.is_empty());
        assert!(chains.is_empty());
    }
}
