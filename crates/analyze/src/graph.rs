//! Approximate intra-workspace call graph.
//!
//! Call *extraction* finds `ident(`-shaped tokens in the code-masked
//! text, so calls planted in strings, comments, or `#[cfg(test)]` items
//! never create edges. Call *resolution* is name-based with a tiered
//! scope search (same file → same crate → whole workspace, first
//! non-empty tier wins) and is deliberately conservative on ambiguity:
//!
//! * bare calls (`helper(x)`) resolve to free functions only;
//! * method calls (`x.helper()`) resolve to associated functions only,
//!   and cross-file method calls whose name matches more than one impl
//!   type resolve to nothing (a documented false-negative class —
//!   better a missed edge than a storm of spurious chains);
//! * `Type::helper(x)` resolves against `impl Type` blocks, with
//!   `Self::` rewritten through the caller's enclosing impl, and a
//!   lowercase qualifier (`module::helper`) falling back to free
//!   functions;
//! * macro invocations (`name!`) and uppercase bare names (tuple-struct
//!   and enum constructors) are skipped — panics raised *by* macros are
//!   caught as local effect tokens instead.
//!
//! Test items are excluded from the graph on both ends: they neither
//! produce nor receive edges.

use crate::items::{parse_lexed, UnsafeSite};
use crate::lexer::lex;
use crate::rules::allow_map;
use std::collections::{HashMap, HashSet};
use std::ops::Range;

/// Method names that collide with ubiquitous std APIs (collections,
/// atomics, paths, io, sync). Method calls with these names are never
/// resolved to workspace functions — the receiver is almost always a
/// std type, and one false edge poisons a whole reachability subtree.
const STD_METHOD_NAMES: &[&str] = &[
    "append", "borrow", "clear", "clone", "collect", "contains", "drain", "extend", "fill", "find",
    "flush", "get", "insert", "join", "len", "load", "lock", "map", "next", "open", "parse",
    "poll", "pop", "push", "read", "recv", "remove", "replace", "resize", "retain", "send", "seek",
    "split", "store", "swap", "take", "truncate", "wait", "write",
];

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper(x)` — resolves to free functions.
    Bare,
    /// `x.helper()` — resolves to associated functions.
    Method,
    /// `Type::helper(x)` / `module::helper(x)`.
    Qualified,
}

/// One call-looking token inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Resolution kind.
    pub kind: CallKind,
    /// Callee name.
    pub name: String,
    /// The path segment before `::` for [`CallKind::Qualified`].
    pub qualifier: Option<String>,
    /// 1-indexed line of the call.
    pub line: usize,
    /// Rules waived at this line via `lint:allow` — traversal skips
    /// this edge for those rules.
    pub waived: HashSet<String>,
}

/// Kind of a local effect token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectKind {
    /// `unwrap` / `expect` / `panic!` family.
    Panic,
    /// Heap construction (`Vec::new`, `to_vec`, `format!`, …).
    Alloc,
    /// Blocking syscalls and lock acquisition.
    Block,
}

impl EffectKind {
    /// The graph rule this effect kind feeds.
    pub fn rule(self) -> &'static str {
        match self {
            EffectKind::Panic => "no_panics_transitive",
            EffectKind::Alloc => "no_alloc_hot_loop",
            EffectKind::Block => "no_blocking_in_reactor",
        }
    }
}

/// One effect token found directly inside a function body.
#[derive(Debug, Clone)]
pub struct LocalEffect {
    /// Panic / Alloc / Block.
    pub kind: EffectKind,
    /// The offending token, e.g. `.unwrap()` or `Vec::new(`.
    pub token: String,
    /// 1-indexed line.
    pub line: usize,
}

/// One function node in the workspace graph.
#[derive(Debug)]
pub struct FnNode {
    /// Repo-relative file path.
    pub file: String,
    /// Crate name (`crates/<name>/…`), empty outside `crates/`.
    pub crate_name: String,
    /// Function name.
    pub name: String,
    /// Enclosing impl/trait type, if an associated fn.
    pub impl_type: Option<String>,
    /// 1-indexed declaration line.
    pub decl_line: usize,
    /// Call sites inside this fn's own body (nested fns excluded).
    pub calls: Vec<CallSite>,
    /// Effect tokens inside this fn's own body, waiver-filtered.
    pub effects: Vec<LocalEffect>,
}

/// Per-file facts the inventory check needs after graph construction.
pub struct FileFacts {
    /// Repo-relative path.
    pub rel: String,
    /// Whether the whole file is test code.
    pub test_file: bool,
    /// Unsafe sites with spans resolved against the original text.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// Fingerprints (normalized span hashes) matching `unsafe_sites`.
    pub unsafe_hashes: Vec<String>,
}

/// The whole-workspace call graph.
pub struct Workspace {
    /// Every non-test fn in the scanned files.
    pub nodes: Vec<FnNode>,
    /// Per-file facts (test files included — for the inventory).
    pub files: Vec<FileFacts>,
    by_name: HashMap<String, Vec<usize>>,
}

impl Workspace {
    /// Builds the graph from `(rel_path, text)` pairs. `repo_rel` paths
    /// decide crate attribution and test-file status.
    pub fn build(files: &[(String, String)]) -> Workspace {
        let mut ws = Workspace {
            nodes: Vec::new(),
            files: Vec::new(),
            by_name: HashMap::new(),
        };
        for (rel, text) in files {
            ws.add_file(rel, text);
        }
        for (i, node) in ws.nodes.iter().enumerate() {
            ws.by_name.entry(node.name.clone()).or_default().push(i);
            let _ = node;
        }
        ws
    }

    fn add_file(&mut self, rel: &str, text: &str) {
        let test_file = rel.contains("/tests/") || rel.contains("/benches/");
        let lexed = lex(text);
        let parsed = parse_lexed(&lexed, test_file);
        let allows = allow_map(&lexed);
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or("")
            .to_string();
        // Only `crates/` files become graph nodes: the shims stand in
        // for external crates, and their internals are represented at
        // the call site by the effect-token lists instead. Shim files
        // still contribute to the unsafe inventory below.
        let in_graph = rel.starts_with("crates/");

        // Production fns only; remember each node's body range so call
        // sites and effects can be attributed to the *innermost* fn.
        let base = self.nodes.len();
        let mut bodies: Vec<(Range<usize>, usize, usize)> = Vec::new(); // (body, decl_line, node idx)
        for f in &parsed.fns {
            if f.is_test || !in_graph {
                continue;
            }
            let idx = self.nodes.len();
            bodies.push((f.body.clone(), f.decl_line, idx));
            self.nodes.push(FnNode {
                file: rel.to_string(),
                crate_name: crate_name.clone(),
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                decl_line: f.decl_line,
                calls: Vec::new(),
                effects: Vec::new(),
            });
        }
        let owner_of = |offset: usize| -> Option<usize> {
            // Innermost containing body = the one starting latest.
            bodies
                .iter()
                .filter(|(b, _, _)| b.contains(&offset))
                .max_by_key(|(b, _, _)| b.start)
                .map(|&(_, _, idx)| idx)
        };
        // Line-based owner for effect scanning: a one-line fn's tokens
        // share the declaration line, whose *start* offset sits before
        // the body — so attribute whole lines by [decl_line, end_line].
        let line_spans: Vec<(usize, usize, usize)> = bodies
            .iter()
            .map(|(b, decl, idx)| (*decl, lexed.line_of_offset(b.end.max(b.start)), *idx))
            .collect();
        let owner_of_line = |line: usize| -> Option<usize> {
            line_spans
                .iter()
                .filter(|(d, e, _)| *d <= line && line <= *e)
                .max_by_key(|(d, _, _)| *d)
                .map(|&(_, _, idx)| idx)
        };

        for call in extract_calls(&parsed.code_text, &lexed) {
            if let Some(idx) = owner_of(call.offset) {
                let waived = allows.get(&call.line).cloned().unwrap_or_default();
                self.nodes[idx].calls.push(CallSite {
                    kind: call.kind,
                    name: call.name,
                    qualifier: call.qualifier,
                    line: call.line,
                    waived,
                });
            }
        }

        // Local effects: scan each code line once; a `lint:allow` for
        // the effect's rule on that line drops the effect.
        for (lidx, line_text) in parsed.code_text.split('\n').enumerate() {
            let line = lidx + 1;
            if let Some(idx) = owner_of_line(line) {
                let waived = |rule: &str| allows.get(&line).is_some_and(|s| s.contains(rule));
                let mut push = |kind: EffectKind, token: String| {
                    if !waived(kind.rule()) {
                        self.nodes[idx]
                            .effects
                            .push(LocalEffect { kind, token, line });
                    }
                };
                for token in crate::rules::panic_tokens(line_text) {
                    push(EffectKind::Panic, token);
                }
                for token in alloc_tokens(line_text) {
                    push(EffectKind::Alloc, token);
                }
                for token in blocking_tokens(line_text) {
                    push(EffectKind::Block, token);
                }
            }
        }
        let _ = base;

        let unsafe_hashes = parsed
            .unsafe_sites
            .iter()
            .map(|s| crate::items::fingerprint(&text[s.span.clone()]))
            .collect();
        self.files.push(FileFacts {
            rel: rel.to_string(),
            test_file,
            unsafe_sites: parsed.unsafe_sites,
            unsafe_hashes,
        });
    }

    /// Resolves one call site from `caller` to node indices.
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let from = &self.nodes[caller];
        // Receiver types are unknown, so a method call named like a
        // common std container/sync/io method (`events.append(…)`,
        // `ACTIVE.load(…)`, `path.join(…)`) would resolve to any
        // workspace fn that happens to share the name — a false edge
        // that poisons whole reachability subtrees. Skip those names
        // entirely; a workspace method that shadows one is a documented
        // false-negative class (ARCHITECTURE §4k).
        if call.kind == CallKind::Method && STD_METHOD_NAMES.contains(&call.name.as_str()) {
            return Vec::new();
        }
        let Some(cands) = self.by_name.get(&call.name) else {
            return Vec::new();
        };
        let matches_kind = |i: &usize| -> bool {
            let n = &self.nodes[*i];
            match call.kind {
                CallKind::Bare => n.impl_type.is_none(),
                CallKind::Method => n.impl_type.is_some(),
                CallKind::Qualified => {
                    let q = match call.qualifier.as_deref() {
                        Some("Self") => from.impl_type.as_deref(),
                        q => q,
                    };
                    match q {
                        Some(q) if q.starts_with(|c: char| c.is_ascii_uppercase()) => {
                            n.impl_type.as_deref() == Some(q)
                        }
                        // `module::helper(…)` — a free fn elsewhere.
                        _ => n.impl_type.is_none(),
                    }
                }
            }
        };
        let base: Vec<usize> = cands.iter().filter(|i| matches_kind(i)).copied().collect();
        if base.is_empty() {
            return base;
        }
        let in_file: Vec<usize> = base
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].file == from.file && i != caller)
            .collect();
        if !in_file.is_empty() {
            return in_file;
        }
        let tier = |f: &dyn Fn(usize) -> bool| -> Vec<usize> {
            base.iter().copied().filter(|&i| f(i)).collect()
        };
        let in_crate =
            tier(&|i| !from.crate_name.is_empty() && self.nodes[i].crate_name == from.crate_name);
        let chosen = if !in_crate.is_empty() {
            in_crate
        } else {
            base.clone()
        };
        // Cross-file method calls matching several impl types are
        // ambiguous: create no edge rather than guess.
        if call.kind == CallKind::Method {
            let types: HashSet<&str> = chosen
                .iter()
                .filter_map(|&i| self.nodes[i].impl_type.as_deref())
                .collect();
            if types.len() > 1 {
                return Vec::new();
            }
        }
        chosen
    }
}

/// A call site before attribution to its enclosing fn.
pub struct RawCall {
    /// Resolution kind.
    pub kind: CallKind,
    /// Callee name.
    pub name: String,
    /// Qualifier for `Type::f` calls.
    pub qualifier: Option<String>,
    /// Byte offset of the callee identifier.
    pub offset: usize,
    /// 1-indexed line.
    pub line: usize,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "fn", "let", "mut", "ref", "move",
    "in", "as", "unsafe", "use", "pub", "impl", "trait", "mod", "struct", "enum", "union", "where",
    "break", "continue", "await", "dyn", "box", "true", "false", "self", "Self", "super", "crate",
    "const", "static", "type",
];

/// Extracts every call-looking token from code-masked `code` (an
/// identifier followed by an optional turbofish and `(`). Macro
/// invocations and uppercase bare names are skipped.
pub fn extract_calls(code: &str, lexed: &crate::lexer::Lexed<'_>) -> Vec<RawCall> {
    let bytes = code.as_bytes();
    let n = bytes.len();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < n {
        let b = bytes[i];
        if !(b.is_ascii_alphabetic() || b == b'_') {
            i += 1;
            continue;
        }
        if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
            i += 1;
        }
        let name = &code[start..i];
        // `r#ident` reaches us as `r`, `#`, `ident` — treat the `r` as
        // opaque; the ident after `#` is picked up on its own.
        let mut j = i;
        // Optional turbofish `::<…>` between name and `(`.
        if code[j..].starts_with("::<") {
            let mut depth = 0usize;
            let mut k = j + 2;
            while k < n {
                match bytes[k] {
                    b'<' => depth += 1,
                    b'>' => {
                        depth -= 1;
                        if depth == 0 {
                            k += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        while j < n && (bytes[j] == b' ') {
            j += 1;
        }
        if bytes.get(j) != Some(&b'(') {
            continue;
        }
        if i < n && bytes[i] == b'!' {
            continue; // macro
        }
        if KEYWORDS.contains(&name) {
            continue;
        }
        // Kind from what precedes the identifier.
        let before = code[..start].trim_end_matches(' ');
        let (kind, qualifier) = if before.ends_with('.') {
            (CallKind::Method, None)
        } else if before.ends_with("::") {
            let q_end = before.len() - 2;
            let q_start = before[..q_end]
                .rfind(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
                .map_or(0, |p| p + 1);
            let q = &before[q_start..q_end];
            if q.is_empty() || KEYWORDS.contains(&q) && q != "Self" {
                // `<T as Trait>::f(…)`, `crate::f(…)` — skip the
                // unresolvable qualifier but keep free-fn semantics.
                (CallKind::Bare, None)
            } else {
                (CallKind::Qualified, Some(q.to_string()))
            }
        } else {
            if name.starts_with(|c: char| c.is_ascii_uppercase()) {
                continue; // tuple-struct / enum-variant constructor
            }
            (CallKind::Bare, None)
        };
        if kind == CallKind::Bare && name.starts_with(|c: char| c.is_ascii_uppercase()) {
            continue;
        }
        out.push(RawCall {
            kind,
            name: name.to_string(),
            qualifier,
            offset: start,
            line: lexed.line_of_offset(start),
        });
    }
    out
}

/// Allocation-constructing tokens on a code-masked line.
pub fn alloc_tokens(code: &str) -> Vec<String> {
    const TOKENS: &[&str] = &[
        "Vec::new(",
        "Vec::with_capacity(",
        "Vec::from(",
        "vec!",
        "Box::new(",
        "String::new(",
        "String::from(",
        "String::with_capacity(",
        "format!",
        ".to_vec()",
        ".to_string()",
        ".to_owned()",
    ];
    token_scan(code, TOKENS)
}

/// Blocking-syscall / lock tokens on a code-masked line. `.accept()` /
/// `.recv()`-style entries match only the zero-argument spelling, so
/// nonblocking reactor reads (`read(&mut buf)`) never fire.
pub fn blocking_tokens(code: &str) -> Vec<String> {
    const TOKENS: &[&str] = &[
        "thread::sleep(",
        ".lock()",
        ".recv()",
        ".recv_timeout(",
        ".wait(",
        ".wait_timeout(",
        "File::open(",
        "File::create(",
        "OpenOptions::new(",
        "fs::read(",
        "fs::read_to_string(",
        "fs::write(",
        "fs::create_dir",
        "fs::remove_file(",
        "TcpStream::connect(",
        ".accept()",
        ".read_to_end(",
        ".read_to_string(",
        ".join()",
    ];
    token_scan(code, TOKENS)
}

fn token_scan(code: &str, tokens: &[&str]) -> Vec<String> {
    let mut out = Vec::new();
    for tok in tokens {
        let mut at = 0usize;
        while let Some(pos) = code[at..].find(tok) {
            let start = at + pos;
            at = start + 1;
            // Identifier boundary on the left when the token starts
            // with one (so `MyVec::new(` is not `Vec::new(`).
            if tok.starts_with(|c: char| c.is_ascii_alphanumeric()) && start > 0 {
                let prev = code.as_bytes()[start - 1];
                if prev.is_ascii_alphanumeric() || prev == b'_' {
                    continue;
                }
            }
            out.push((*tok).to_string());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let files: Vec<(String, String)> = files
            .iter()
            .map(|(r, t)| (r.to_string(), t.to_string()))
            .collect();
        Workspace::build(&files)
    }

    fn node<'a>(ws: &'a Workspace, name: &str) -> &'a FnNode {
        ws.nodes.iter().find(|n| n.name == name).unwrap()
    }

    fn resolved_names(ws: &Workspace, from: &str) -> Vec<String> {
        let idx = ws.nodes.iter().position(|n| n.name == from).unwrap();
        let mut out = Vec::new();
        for call in &ws.nodes[idx].calls {
            for t in ws.resolve(idx, call) {
                out.push(ws.nodes[t].name.clone());
            }
        }
        out.sort();
        out.dedup();
        out
    }

    #[test]
    fn bare_and_method_calls_resolve() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() { helper(1); s.step(); }\nfn helper(x: u8) {}\n\
             struct S;\nimpl S {\n    fn step(&self) {}\n}\n",
        )]);
        assert_eq!(resolved_names(&w, "root"), vec!["helper", "step"]);
    }

    #[test]
    fn same_file_tier_beats_same_crate() {
        let w = ws(&[
            (
                "crates/a/src/one.rs",
                "fn root() { helper(); }\nfn helper() { local_mark(); }\nfn local_mark() {}\n",
            ),
            (
                "crates/a/src/two.rs",
                "fn helper() { other_mark(); }\nfn other_mark() {}\n",
            ),
        ]);
        let idx = w.nodes.iter().position(|n| n.name == "root").unwrap();
        let call = &w.nodes[idx].calls[0];
        let targets = w.resolve(idx, call);
        assert_eq!(targets.len(), 1);
        assert_eq!(w.nodes[targets[0]].file, "crates/a/src/one.rs");
    }

    #[test]
    fn std_method_names_never_resolve() {
        // `.load()` here is an atomic load, but a workspace fn named
        // `load` exists — the denylist must prevent the false edge.
        let w = ws(&[
            (
                "crates/a/src/lib.rs",
                "fn root() { ACTIVE.load(x); q.push(v); }\n",
            ),
            (
                "crates/a/src/cfg.rs",
                "impl Config {\n    fn load(&self) {}\n    fn push(&self) {}\n}\n",
            ),
        ]);
        assert!(resolved_names(&w, "root").is_empty());
    }

    #[test]
    fn ambiguous_cross_file_method_resolves_to_nothing() {
        let w = ws(&[
            ("crates/a/src/lib.rs", "fn root(x: X) { x.get(); }\n"),
            (
                "crates/a/src/b.rs",
                "impl P {\n    fn get(&self) {}\n}\nimpl Q {\n    fn get(&self) {}\n}\n",
            ),
        ]);
        assert!(resolved_names(&w, "root").is_empty());
    }

    #[test]
    fn qualified_and_self_calls() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "impl Codec {\n    fn decode(&self) { Self::check(); Codec::reset(); util::log_it(); }\n\
             \n    fn check() {}\n    fn reset() {}\n}\nmod util {\n    pub fn log_it() {}\n}\n",
        )]);
        assert_eq!(
            resolved_names(&w, "decode"),
            vec!["check", "log_it", "reset"]
        );
    }

    #[test]
    fn strings_comments_and_macros_make_no_edges() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn root() {\n    // helper() in a comment\n    let s = \"helper()\";\n    \
             println!(\"{}\", s);\n}\nfn helper() {}\n",
        )]);
        assert!(resolved_names(&w, "root").is_empty());
    }

    #[test]
    fn test_items_make_no_nodes_or_edges() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t_helper() { prod(); }\n}\n",
        )]);
        assert_eq!(w.nodes.len(), 1);
        assert_eq!(w.nodes[0].name, "prod");
        // And a whole test file contributes nothing.
        let w = ws(&[("crates/a/tests/it.rs", "fn t() { x.unwrap(); }\n")]);
        assert!(w.nodes.is_empty());
    }

    #[test]
    fn local_effects_collected_and_waivable() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn f(x: Option<u8>) {\n    let v = Vec::new();\n    x.unwrap();\n    \
             // lint:allow(no_alloc_hot_loop): one-time header scratch\n    let w = data.to_vec();\n    \
             m.lock();\n    let _ = (v, w);\n}\n",
        )]);
        let n = node(&w, "f");
        let kinds: Vec<EffectKind> = n.effects.iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EffectKind::Panic));
        assert!(kinds.contains(&EffectKind::Alloc));
        // `.lock()` needs the () form — `m.lock();` has it.
        assert!(kinds.contains(&EffectKind::Block));
        // The waived to_vec is gone; Vec::new stays.
        let allocs: Vec<&str> = n
            .effects
            .iter()
            .filter(|e| e.kind == EffectKind::Alloc)
            .map(|e| e.token.as_str())
            .collect();
        assert_eq!(allocs, vec!["Vec::new("]);
    }

    #[test]
    fn effects_attributed_to_innermost_fn() {
        let w = ws(&[(
            "crates/a/src/lib.rs",
            "fn outer() {\n    fn inner(x: Option<u8>) { x.unwrap(); }\n    inner(None);\n}\n",
        )]);
        assert!(node(&w, "outer").effects.is_empty());
        assert_eq!(node(&w, "inner").effects.len(), 1);
    }

    #[test]
    fn turbofish_calls_still_extract() {
        let lexed = crate::lexer::lex("fn f() { parse::<u32>(s); }\n");
        let code = lexed.code_text();
        let calls = extract_calls(&code, &lexed);
        assert!(calls.iter().any(|c| c.name == "parse"));
    }

    #[test]
    fn blocking_tokens_spare_nonblocking_reads() {
        assert!(blocking_tokens("sock.read(&mut buf)").is_empty());
        assert!(!blocking_tokens("rx.recv()").is_empty());
        assert!(!blocking_tokens("std::thread::sleep(d)").is_empty());
        assert!(blocking_tokens("parts.join(\",\")").is_empty());
        assert!(!blocking_tokens("handle.join()").is_empty());
    }

    #[test]
    fn alloc_tokens_have_boundaries() {
        assert!(alloc_tokens("SmallVec::new()").is_empty());
        assert!(!alloc_tokens("Vec::new()").is_empty());
        assert!(!alloc_tokens("let s = format!(\"x\")").is_empty());
    }
}
