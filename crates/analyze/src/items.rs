//! Item-aware parsing on top of the lexer: function boundaries, impl /
//! trait / mod attribution, `#[cfg(test)]` / `#[cfg(target_arch)]`
//! classification, and `unsafe` site extraction.
//!
//! This is not a Rust parser — it is a brace-tracking scanner over the
//! lexer's code-only text (strings and comments blanked to spaces, so
//! they can never confuse brace matching). It answers exactly the
//! questions the call-graph and the unsafe inventory need:
//!
//! * where does each `fn` start and end (byte range of its body)?
//! * which impl / trait block encloses it (for method resolution)?
//! * is it test code, and which `target_arch` is it gated on?
//! * where is every `unsafe` block / `unsafe impl` / `unsafe fn`, and
//!   what is the normalized fingerprint of its span?
//!
//! Known approximations (documented in ARCHITECTURE §4k): const-generic
//! braces in signatures (`fn f() -> Foo<{N}>`) and multi-line
//! attributes are not understood; neither occurs in this workspace.

use crate::lexer::{lex, Lexed};
use std::ops::Range;

/// One `fn` item found in a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Enclosing impl/trait type name (last path segment, generics
    /// stripped), if the fn is an associated fn / method.
    pub impl_type: Option<String>,
    /// 1-indexed line of the `fn` keyword.
    pub decl_line: usize,
    /// Byte range of the body, *inside* the outer braces.
    pub body: Range<usize>,
    /// Whether the fn lives in test code (`#[test]` / `#[cfg(test)]`
    /// regions, or a `tests/`/`benches/` file).
    pub is_test: bool,
    /// `unsafe fn`?
    pub is_unsafe: bool,
    /// `target_arch` value from a `#[cfg(target_arch = "…")]` attribute
    /// on the fn or an enclosing mod, if any.
    pub arch: Option<String>,
}

/// Kind of one `unsafe` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// `unsafe { … }` block.
    Block,
    /// `unsafe impl … { … }` (or `unsafe trait`).
    Impl,
    /// `unsafe fn` (the whole body is the unsafe span).
    Fn,
}

impl UnsafeKind {
    /// Stable name used in the generated inventory.
    pub fn name(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Impl => "impl",
            UnsafeKind::Fn => "fn",
        }
    }

    /// Parses an inventory `kind` value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "block" => Some(UnsafeKind::Block),
            "impl" => Some(UnsafeKind::Impl),
            "fn" => Some(UnsafeKind::Fn),
            _ => None,
        }
    }
}

/// One `unsafe` site found in a file.
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Block, impl, or fn.
    pub kind: UnsafeKind,
    /// 1-indexed line of the `unsafe` keyword.
    pub line: usize,
    /// Enclosing fn name (for blocks), the fn's own name (for
    /// `unsafe fn`), or the impl/trait type (for `unsafe impl`).
    pub context: String,
    /// Byte range of the site's span in the original text (from the
    /// `unsafe` keyword through the matching close brace).
    pub span: Range<usize>,
    /// Whether a `SAFETY:`/`# Safety` comment covers the site.
    pub safety_comment: bool,
    /// Whether the site is in test code.
    pub is_test: bool,
}

/// Parse result for one file.
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnItem>,
    /// Every `unsafe` site, in source order.
    pub unsafe_sites: Vec<UnsafeSite>,
    /// The file text with non-code bytes blanked (newlines kept), so
    /// byte offsets match the original. Call extraction works on this.
    pub code_text: String,
    /// Per-line test classification (1-indexed line N at `[N-1]`).
    pub test_mask: Vec<bool>,
}

/// FNV-1a 64 over the non-whitespace bytes of `span_text`: the
/// normalized token hash used to fingerprint unsafe sites. Collapsing
/// whitespace keeps reformatting from invalidating the inventory while
/// any token change does.
pub fn fingerprint(span_text: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in span_text.bytes().filter(|b| !b.is_ascii_whitespace()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

enum ScopeKind {
    Plain,
    Mod,
    Container,
    Fn { idx: usize },
    Unsafe { site_idx: usize },
}

struct Scope {
    kind: ScopeKind,
    prev_container: Option<String>,
    prev_arch: Option<String>,
}

enum Pending {
    Fn {
        name: String,
        decl_line: usize,
        is_unsafe: bool,
        arch: Option<String>,
    },
    Container {
        start: usize,
        is_unsafe: bool,
        unsafe_line: usize,
    },
    Mod {
        arch: Option<String>,
    },
    Unsafe {
        start: usize,
        line: usize,
    },
}

/// Parses `text` into fn items and unsafe sites. `whole_file_test`
/// marks every item as test code (for `tests/` / `benches/` files).
pub fn parse_file(text: &str, whole_file_test: bool) -> ParsedFile {
    parse_lexed(&lex(text), whole_file_test)
}

/// [`parse_file`] over an already-lexed file.
pub fn parse_lexed(lexed: &Lexed<'_>, whole_file_test: bool) -> ParsedFile {
    let code = lexed.code_text();
    let test_mask = crate::rules::test_line_mask(lexed, whole_file_test);
    let (fns, unsafe_sites) = Parser {
        lexed,
        code: code.as_bytes(),
        test_mask: &test_mask,
        fns: Vec::new(),
        unsafe_sites: Vec::new(),
        scopes: Vec::new(),
        container: None,
        arch: None,
    }
    .run();
    ParsedFile {
        fns,
        unsafe_sites,
        code_text: code,
        test_mask,
    }
}

struct Parser<'a> {
    lexed: &'a Lexed<'a>,
    code: &'a [u8],
    test_mask: &'a [bool],
    fns: Vec<FnItem>,
    unsafe_sites: Vec<UnsafeSite>,
    scopes: Vec<Scope>,
    /// Current impl/trait type for method attribution.
    container: Option<String>,
    /// Current `target_arch` gate inherited from enclosing mods.
    arch: Option<String>,
}

impl<'a> Parser<'a> {
    fn run(mut self) -> (Vec<FnItem>, Vec<UnsafeSite>) {
        let n = self.code.len();
        let mut i = 0usize;
        // The pending item whose `{` we are looking for, plus the
        // paren/bracket depth inside its signature (a `;` or `{` only
        // counts at depth 0 — `[u8; 2]` must not cancel a pending fn).
        let mut pending: Option<Pending> = None;
        let mut sig_depth = 0usize;
        // Set when the previous identifier was `unsafe`, so `unsafe fn`
        // / `unsafe impl` / `unsafe trait` attach the flag.
        let mut unsafe_kw: Option<(usize, usize)> = None; // (start, line)

        while i < n {
            let b = self.code[i];
            if b.is_ascii_alphabetic() || b == b'_' {
                let start = i;
                while i < n && (self.code[i].is_ascii_alphanumeric() || self.code[i] == b'_') {
                    i += 1;
                }
                // Raw identifiers (`r#match`) reach here as `r` … no:
                // the lexer keeps `r#ident` as code, so the scanner sees
                // `r`, `#`, `ident` — all harmless for item parsing.
                let word = &self.code[start..i];
                let took_unsafe = unsafe_kw.take();
                match word {
                    b"unsafe" if pending.is_none() => {
                        let line = self.lexed.line_of_offset(start);
                        // Peek: `unsafe {` opens an unsafe block; a
                        // following `fn`/`impl`/`trait` keyword picks
                        // the flag up from `unsafe_kw`.
                        let mut j = i;
                        while j < n && (self.code[j] == b' ' || self.code[j] == b'\n') {
                            j += 1;
                        }
                        if self.code.get(j) == Some(&b'{') {
                            pending = Some(Pending::Unsafe { start, line });
                        } else {
                            unsafe_kw = Some((start, line));
                        }
                    }
                    b"fn" if pending.is_none() => {
                        // `fn(` is a function-pointer type, not an item.
                        let mut j = i;
                        while j < n && (self.code[j] == b' ' || self.code[j] == b'\n') {
                            j += 1;
                        }
                        let name_start = j;
                        while j < n
                            && (self.code[j].is_ascii_alphanumeric() || self.code[j] == b'_')
                        {
                            j += 1;
                        }
                        if j > name_start {
                            let decl_line = self.lexed.line_of_offset(start);
                            let name =
                                String::from_utf8_lossy(&self.code[name_start..j]).into_owned();
                            let arch = self.attr_arch(decl_line).or_else(|| self.arch.clone());
                            pending = Some(Pending::Fn {
                                name,
                                decl_line,
                                is_unsafe: took_unsafe.is_some(),
                                arch,
                            });
                            sig_depth = 0;
                            i = j;
                        }
                    }
                    b"impl" | b"trait" if pending.is_none() => {
                        let line = self.lexed.line_of_offset(start);
                        let (us, ul) = match took_unsafe {
                            Some((s, l)) => (true, (s, l)),
                            None => (false, (start, line)),
                        };
                        pending = Some(Pending::Container {
                            start: if us { ul.0 } else { start },
                            is_unsafe: us,
                            unsafe_line: ul.1,
                        });
                        sig_depth = 0;
                    }
                    b"mod" if pending.is_none() => {
                        let line = self.lexed.line_of_offset(start);
                        let arch = self.attr_arch(line);
                        pending = Some(Pending::Mod { arch });
                        sig_depth = 0;
                    }
                    _ => {}
                }
                continue;
            }
            // Whitespace between `unsafe` and the following `fn` /
            // `impl` must not clear the pending keyword.
            if !matches!(b, b' ' | b'\n' | b'\r' | b'\t') {
                unsafe_kw = None;
            }
            match b {
                b'(' | b'[' if pending.is_some() => sig_depth += 1,
                b')' | b']' if pending.is_some() => sig_depth = sig_depth.saturating_sub(1),
                b';' if pending.is_some() && sig_depth == 0 => {
                    // Bodiless item: trait method decl, `mod x;`, …
                    pending = None;
                }
                b'{' => {
                    let scope = match pending.take() {
                        Some(Pending::Fn {
                            name,
                            decl_line,
                            is_unsafe,
                            arch,
                        }) => {
                            let idx = self.fns.len();
                            let is_test =
                                self.test_mask.get(decl_line - 1).copied().unwrap_or(false);
                            self.fns.push(FnItem {
                                name: name.clone(),
                                impl_type: self.container.clone(),
                                decl_line,
                                body: i + 1..i + 1, // end patched on close
                                is_test,
                                is_unsafe,
                                arch,
                            });
                            if is_unsafe {
                                let site_idx = self.unsafe_sites.len();
                                self.unsafe_sites.push(UnsafeSite {
                                    kind: UnsafeKind::Fn,
                                    line: decl_line,
                                    context: name,
                                    span: i + 1..i + 1,
                                    safety_comment: self.fn_safety_doc(decl_line),
                                    is_test,
                                });
                                self.scopes.push(Scope {
                                    kind: ScopeKind::Unsafe { site_idx },
                                    prev_container: None,
                                    prev_arch: None,
                                });
                            }
                            Scope {
                                kind: ScopeKind::Fn { idx },
                                prev_container: None,
                                prev_arch: None,
                            }
                        }
                        Some(Pending::Container {
                            start,
                            is_unsafe,
                            unsafe_line,
                        }) => {
                            let name = self.container_name(start, i);
                            if is_unsafe {
                                let is_test = self
                                    .test_mask
                                    .get(unsafe_line - 1)
                                    .copied()
                                    .unwrap_or(false);
                                let site_idx = self.unsafe_sites.len();
                                self.unsafe_sites.push(UnsafeSite {
                                    kind: UnsafeKind::Impl,
                                    line: unsafe_line,
                                    context: name.clone().unwrap_or_default(),
                                    span: start..start,
                                    safety_comment: crate::rules::has_safety_comment(
                                        self.lexed,
                                        unsafe_line,
                                    ),
                                    is_test,
                                });
                                self.scopes.push(Scope {
                                    kind: ScopeKind::Unsafe { site_idx },
                                    prev_container: None,
                                    prev_arch: None,
                                });
                            }
                            let prev = self.container.take();
                            self.container = name;
                            Scope {
                                kind: ScopeKind::Container,
                                prev_container: prev,
                                prev_arch: None,
                            }
                        }
                        Some(Pending::Mod { arch }) => {
                            let prev_arch = self.arch.take();
                            self.arch = arch.or_else(|| prev_arch.clone());
                            let prev_container = self.container.take();
                            Scope {
                                kind: ScopeKind::Mod,
                                prev_container,
                                prev_arch,
                            }
                        }
                        Some(Pending::Unsafe { start, line }) => {
                            let site_idx = self.unsafe_sites.len();
                            let context = self
                                .scopes
                                .iter()
                                .rev()
                                .find_map(|s| match &s.kind {
                                    ScopeKind::Fn { idx } => Some(self.fns[*idx].name.clone()),
                                    _ => None,
                                })
                                .unwrap_or_default();
                            let is_test = self.test_mask.get(line - 1).copied().unwrap_or(false);
                            self.unsafe_sites.push(UnsafeSite {
                                kind: UnsafeKind::Block,
                                line,
                                context,
                                span: start..start,
                                safety_comment: crate::rules::has_safety_comment(self.lexed, line),
                                is_test,
                            });
                            Scope {
                                kind: ScopeKind::Unsafe { site_idx },
                                prev_container: None,
                                prev_arch: None,
                            }
                        }
                        None => Scope {
                            kind: ScopeKind::Plain,
                            prev_container: None,
                            prev_arch: None,
                        },
                    };
                    self.scopes.push(scope);
                }
                b'}' => {
                    // An `unsafe fn` pushed two scopes (Unsafe then Fn);
                    // keep popping Unsafe scopes that end here too.
                    while let Some(scope) = self.scopes.pop() {
                        let again = matches!(
                            (&scope.kind, self.scopes.last().map(|s| &s.kind)),
                            (ScopeKind::Fn { .. }, Some(ScopeKind::Unsafe { .. }))
                                | (ScopeKind::Container, Some(ScopeKind::Unsafe { .. }))
                        );
                        match scope.kind {
                            ScopeKind::Fn { idx } => self.fns[idx].body.end = i,
                            ScopeKind::Unsafe { site_idx } => {
                                self.unsafe_sites[site_idx].span.end = i + 1;
                            }
                            ScopeKind::Container => {
                                self.container = scope.prev_container;
                            }
                            ScopeKind::Mod => {
                                self.container = scope.prev_container;
                                self.arch = scope.prev_arch;
                            }
                            ScopeKind::Plain => {}
                        }
                        if !again {
                            break;
                        }
                    }
                }
                _ => {}
            }
            i += 1;
        }
        // Unclosed scopes at EOF (truncated input): close them at EOF.
        while let Some(scope) = self.scopes.pop() {
            match scope.kind {
                ScopeKind::Fn { idx } => self.fns[idx].body.end = n,
                ScopeKind::Unsafe { site_idx } => self.unsafe_sites[site_idx].span.end = n,
                _ => {}
            }
        }
        (self.fns, self.unsafe_sites)
    }

    /// Derives the impl/trait type name from the header text between
    /// the keyword (at `start`) and the opening brace (at `brace`):
    /// strip `where …`, take the segment after ` for ` if present,
    /// last `::` path segment, generics stripped.
    fn container_name(&self, start: usize, brace: usize) -> Option<String> {
        let header = String::from_utf8_lossy(&self.code[start..brace]).into_owned();
        let header = header.split(" where ").next().unwrap_or(&header).trim();
        let ty = match header.rfind(" for ") {
            Some(at) => &header[at + 5..],
            None => {
                // `impl<T> Type`, `trait Name`, `impl Trait for` …
                // drop the leading keyword and any generic params.
                let rest = header
                    .trim_start_matches("unsafe")
                    .trim_start()
                    .trim_start_matches("impl")
                    .trim_start_matches("trait")
                    .trim_start();
                let rest = skip_generics(rest);
                rest
            }
        };
        let ty = ty.trim();
        // Last path segment, generics stripped, reference/pointer
        // sigils dropped.
        let ty = ty.split('<').next().unwrap_or(ty).trim();
        let ty = ty.rsplit("::").next().unwrap_or(ty).trim();
        let ty: String = ty
            .trim_start_matches(['&', '*', ' '])
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ty.is_empty() {
            None
        } else {
            Some(ty)
        }
    }

    /// `target_arch = "x"` from attribute lines directly above `line`.
    fn attr_arch(&self, line: usize) -> Option<String> {
        let mut l = line;
        while l > 1 {
            l -= 1;
            let raw = self.lexed.line(l).trim();
            let is_attr = raw.starts_with("#[") || raw.starts_with("#!");
            if !is_attr && !raw.is_empty() && self.lexed.line_has_code(l) {
                return None;
            }
            if let Some(at) = raw.find("target_arch") {
                let rest = &raw[at..];
                let mut quotes = rest.split('"');
                quotes.next();
                if let Some(v) = quotes.next() {
                    return Some(v.to_string());
                }
            }
            if !is_attr && raw.is_empty() {
                continue;
            }
        }
        None
    }

    /// `unsafe fn` safety contract: a `# Safety` / `SAFETY:` marker in
    /// the doc/comment block directly above the declaration.
    fn fn_safety_doc(&self, decl_line: usize) -> bool {
        let mut l = decl_line;
        // Attributes may sit between the doc block and the fn.
        loop {
            if l <= 1 {
                return false;
            }
            l -= 1;
            let raw = self.lexed.line(l).trim();
            if raw.starts_with("#[") {
                continue;
            }
            if raw.is_empty() {
                continue;
            }
            if self.lexed.line_has_code(l) {
                return false;
            }
            // A comment line: scan the contiguous comment block.
            break;
        }
        let mut l = l + 1;
        while l > 1 {
            l -= 1;
            let raw = self.lexed.line(l).trim();
            if self.lexed.line_has_code(l) {
                return false;
            }
            if raw.contains("# Safety") || raw.contains("SAFETY:") {
                return true;
            }
            if raw.is_empty() && !raw.starts_with("//") {
                // Blank line still inside the doc block: keep going one
                // step, then stop at the next blank.
                continue;
            }
        }
        false
    }
}

/// Skips a leading `<…>` generic parameter list (balanced).
fn skip_generics(s: &str) -> &str {
    let b = s.as_bytes();
    if b.first() != Some(&b'<') {
        return s;
    }
    let mut depth = 0usize;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'<' => depth += 1,
            b'>' => {
                depth -= 1;
                if depth == 0 {
                    return s[i + 1..].trim_start();
                }
            }
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fns(text: &str) -> Vec<FnItem> {
        parse_file(text, false).fns
    }

    #[test]
    fn free_fn_and_method_attribution() {
        let src = "fn free(x: u8) -> u8 { x }\n\
                   struct S;\n\
                   impl S {\n    fn method(&self) { self.other() }\n    fn other(&self) {}\n}\n\
                   impl std::fmt::Display for S {\n    fn fmt(&self) {}\n}\n";
        let items = fns(src);
        let names: Vec<(&str, Option<&str>)> = items
            .iter()
            .map(|f| (f.name.as_str(), f.impl_type.as_deref()))
            .collect();
        assert_eq!(
            names,
            vec![
                ("free", None),
                ("method", Some("S")),
                ("other", Some("S")),
                ("fmt", Some("S")),
            ]
        );
        assert_eq!(items[0].decl_line, 1);
    }

    #[test]
    fn body_ranges_are_exact() {
        let src = "fn a() { inner(1); }\nfn b() { x }\n";
        let items = fns(src);
        assert_eq!(&src[items[0].body.clone()], " inner(1); ");
        assert_eq!(&src[items[1].body.clone()], " x ");
    }

    #[test]
    fn nested_fns_and_braces() {
        let src = "fn outer() {\n    let c = |x: u8| { x + 1 };\n    fn inner() { leaf() }\n    if a { b() } else { c() }\n}\n";
        let items = fns(src);
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "outer");
        assert_eq!(items[1].name, "inner");
        // inner's body nests inside outer's.
        assert!(items[0].body.start < items[1].body.start);
        assert!(items[1].body.end < items[0].body.end);
    }

    #[test]
    fn cfg_test_marks_items() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn t() {}\n}\n";
        let items = fns(src);
        assert!(!items[0].is_test);
        assert!(items[1].is_test && items[2].is_test);
    }

    #[test]
    fn target_arch_from_fn_and_mod() {
        let src = "#[cfg(target_arch = \"x86_64\")]\nmod avx2 {\n    fn kernel() {}\n}\n#[cfg(target_arch = \"aarch64\")]\nfn neon_kernel() {}\nfn plain() {}\n";
        let items = fns(src);
        assert_eq!(items[0].arch.as_deref(), Some("x86_64"));
        assert_eq!(items[1].arch.as_deref(), Some("aarch64"));
        assert_eq!(items[2].arch, None);
    }

    #[test]
    fn trait_decls_without_bodies_are_skipped() {
        let src = "trait T {\n    fn decl(&self) -> u8;\n    fn dflt(&self) -> u8 { 0 }\n}\n";
        let items = fns(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "dflt");
        assert_eq!(items[0].impl_type.as_deref(), Some("T"));
    }

    #[test]
    fn signature_punctuation_does_not_cancel_fn() {
        let src = "fn f(x: [u8; 2], y: (u8, u8)) -> Result<(), E> where E: Sized { body() }\n";
        let items = fns(src);
        assert_eq!(items.len(), 1);
        assert!(src[items[0].body.clone()].contains("body()"));
    }

    #[test]
    fn unsafe_sites_extracted_with_context() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: valid\n    unsafe { *p = 1 };\n}\n\
                   // SAFETY: no shared state\nunsafe impl Send for X {}\n\
                   /// # Safety\n/// caller checks\npub unsafe fn raw(p: *mut u8) { *p }\n";
        let parsed = parse_file(src, false);
        let sites = &parsed.unsafe_sites;
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].kind, UnsafeKind::Block);
        assert_eq!(sites[0].context, "f");
        assert!(sites[0].safety_comment);
        assert_eq!(sites[1].kind, UnsafeKind::Impl);
        assert_eq!(sites[1].context, "X");
        assert!(sites[1].safety_comment);
        assert_eq!(sites[2].kind, UnsafeKind::Fn);
        assert_eq!(sites[2].context, "raw");
        assert!(sites[2].safety_comment);
        assert!(src[sites[0].span.clone()].starts_with("unsafe"));
        assert!(src[sites[0].span.clone()].ends_with('}'));
    }

    #[test]
    fn unsafe_without_safety_comment_flagged() {
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 1 };\n}\nunsafe fn g() {}\n";
        let parsed = parse_file(src, false);
        assert!(!parsed.unsafe_sites[0].safety_comment);
        assert!(!parsed.unsafe_sites[1].safety_comment);
    }

    #[test]
    fn impl_for_generic_types() {
        let src = "impl<'a, T: Clone> Deref for PooledTensor<T> {\n    fn deref(&self) {}\n}\n";
        let items = fns(src);
        assert_eq!(items[0].impl_type.as_deref(), Some("PooledTensor"));
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn real(cb: fn(u8) -> u8) { cb(1) }\nstatic F: fn() = || {};\n";
        let items = fns(src);
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }
}
