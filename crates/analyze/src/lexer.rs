//! Minimal Rust lexer: classifies every byte of a source file as code,
//! comment, or literal so the lint rules never fire on tokens that only
//! appear inside strings or comments.
//!
//! This is not a full tokenizer — it only has to answer "is this byte
//! part of executable code text?" and "what comments precede line N?".
//! It understands:
//!
//! * line comments (`//`, `///`, `//!`) and *nested* block comments,
//! * string literals with escapes, including `b"…"`/`c"…"` prefixes,
//! * raw strings `r"…"`, `r#"…"#`, … with any hash depth (and `br`/`cr`
//!   prefixes), which have no escapes,
//! * char/byte literals (`'x'`, `'\n'`, `b'\xff'`) vs lifetimes
//!   (`'static`), disambiguated by lookahead.
//!
//! Output is a per-byte [`Class`] mask plus the line table; rule code
//! works on the masked text. Proptest coverage in `tests/lexer_prop.rs`
//! nests all of the above and asserts planted markers inside literals
//! and comments are never classified as code.

/// Classification of one source byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Executable code text (identifiers, punctuation, whitespace).
    Code,
    /// Inside `//…` or `/* … */` (delimiters included).
    Comment,
    /// Inside a string/char literal (quotes and prefix included).
    Literal,
}

/// Lexed view of one source file.
pub struct Lexed<'a> {
    /// The original text.
    pub text: &'a str,
    /// Per-byte classification, same length as `text`.
    pub mask: Vec<Class>,
    /// Byte offset where each line starts.
    line_starts: Vec<usize>,
}

impl<'a> Lexed<'a> {
    /// Number of lines.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The full text of 1-indexed `line` (no trailing newline).
    pub fn line(&self, line: usize) -> &'a str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&next| next);
        self.text[start..end].trim_end_matches(['\n', '\r'])
    }

    /// The code-only bytes of 1-indexed `line`: every byte that is not
    /// code is replaced by a space, so byte offsets keep their meaning.
    pub fn code_of_line(&self, line: usize) -> String {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&next| next);
        self.text[start..end]
            .bytes()
            .enumerate()
            .map(|(i, b)| {
                if self.mask[start + i] == Class::Code && b != b'\n' && b != b'\r' {
                    b as char
                } else {
                    ' '
                }
            })
            .collect()
    }

    /// The comment bytes of 1-indexed `line` (non-comment replaced by
    /// spaces).
    pub fn comment_of_line(&self, line: usize) -> String {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.text.len(), |&next| next);
        self.text[start..end]
            .bytes()
            .enumerate()
            .map(|(i, b)| {
                if self.mask[start + i] == Class::Comment && b != b'\n' && b != b'\r' {
                    b as char
                } else {
                    ' '
                }
            })
            .collect()
    }

    /// Whether 1-indexed `line` contains any code byte that is not
    /// whitespace.
    pub fn line_has_code(&self, line: usize) -> bool {
        !self.code_of_line(line).trim().is_empty()
    }

    /// 1-indexed line containing byte `offset`.
    pub fn line_of_offset(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The whole file with every non-code byte replaced by a space
    /// (newlines kept), so byte offsets and line boundaries survive.
    /// This is the text the item parser and call-graph extractor work
    /// on: brace matching and identifier scans can never be confused by
    /// strings or comments.
    pub fn code_text(&self) -> String {
        self.text
            .bytes()
            .enumerate()
            .map(|(i, b)| {
                if b == b'\n' || (self.mask[i] == Class::Code && b != b'\r') {
                    b as char
                } else {
                    ' '
                }
            })
            .collect()
    }
}

/// Lexes `text` into a per-byte classification.
pub fn lex(text: &str) -> Lexed<'_> {
    let bytes = text.as_bytes();
    let mut mask = vec![Class::Code; bytes.len()];
    let mut line_starts = vec![0usize];
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'\n' {
            if i + 1 < bytes.len() {
                line_starts.push(i + 1);
            }
            i += 1;
            continue;
        }
        match b {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    mask[i] = Class::Comment;
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'\n' {
                        if i + 1 != bytes.len() {
                            line_starts.push(i + 1);
                        }
                        i += 1;
                        continue;
                    }
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        mask[i] = Class::Comment;
                        mask[i + 1] = Class::Comment;
                        i += 2;
                        continue;
                    }
                    if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        mask[i] = Class::Comment;
                        mask[i + 1] = Class::Comment;
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                        continue;
                    }
                    mask[i] = Class::Comment;
                    i += 1;
                }
            }
            b'"' => i = lex_string(bytes, i, &mut mask, &mut line_starts),
            b'r' if is_raw_identifier(bytes, i) => {
                // Raw identifier (`r#match`, `r#type`, …): the `r#` and
                // the identifier are code. Consuming the whole token at
                // once matters — raw identifiers like `r#r` or `r#b`
                // would otherwise leave a bare `r`/`b` adjacent to a
                // following `"` and be mis-lexed as a raw/byte string
                // start, which disables escape handling for the rest of
                // the file.
                i += 2;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
            }
            b'r' | b'b' | b'c' if is_literal_prefix(bytes, i) => {
                let start = i;
                let mut j = i;
                while matches!(bytes.get(j), Some(b'r' | b'b' | b'c')) {
                    j += 1;
                }
                match bytes.get(j) {
                    Some(b'"') | Some(b'#') if has_r(bytes, start, j) => {
                        i = lex_raw_string(bytes, start, j, &mut mask, &mut line_starts);
                    }
                    Some(b'"') => {
                        for m in mask.iter_mut().take(j).skip(start) {
                            *m = Class::Literal;
                        }
                        i = lex_string(bytes, j, &mut mask, &mut line_starts);
                    }
                    Some(b'\'') => {
                        for m in mask.iter_mut().take(j).skip(start) {
                            *m = Class::Literal;
                        }
                        i = lex_char(bytes, j, &mut mask);
                    }
                    _ => i = j, // plain identifier starting with r/b/c
                }
            }
            b'\'' => {
                if is_char_literal(bytes, i) {
                    i = lex_char(bytes, i, &mut mask);
                } else {
                    // Lifetime: the quote and the following identifier
                    // are code.
                    i += 1;
                }
            }
            _ if b.is_ascii_alphanumeric() || b == b'_' => {
                // Skip the whole identifier/number so a trailing r/b/c
                // inside it is never mistaken for a literal prefix.
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    Lexed {
        text,
        mask,
        line_starts,
    }
}

/// Is the `r` at `i` the start of a raw identifier (`r#ident`)? True
/// when `r#` is followed by an identifier-start byte — `r#"` (raw
/// string) and `r##"` (hash-depth ≥ 1, which raw identifiers never
/// have) stay literal prefixes.
fn is_raw_identifier(bytes: &[u8], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    bytes.get(i + 1) == Some(&b'#')
        && bytes
            .get(i + 2)
            .is_some_and(|&b| b.is_ascii_alphabetic() || b == b'_')
}

/// Is the r/b/c run starting at `i` actually a literal prefix (i.e. not
/// the middle of an identifier)?
fn is_literal_prefix(bytes: &[u8], i: usize) -> bool {
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    let mut run = 0;
    while matches!(bytes.get(j), Some(b'r' | b'b' | b'c')) && run < 2 {
        j += 1;
        run += 1;
    }
    matches!(bytes.get(j), Some(b'"') | Some(b'\''))
        || (bytes.get(j) == Some(&b'#') && has_r(bytes, i, j) && followed_by_quote(bytes, j))
}

fn has_r(bytes: &[u8], start: usize, end: usize) -> bool {
    bytes[start..end].contains(&b'r')
}

/// After the prefix, `#…#"` must eventually open a raw string.
fn followed_by_quote(bytes: &[u8], mut j: usize) -> bool {
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Lexes a `"…"` string starting at the opening quote; returns the
/// index just past the closing quote.
fn lex_string(
    bytes: &[u8],
    mut i: usize,
    mask: &mut [Class],
    line_starts: &mut Vec<usize>,
) -> usize {
    mask[i] = Class::Literal;
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            mask[i] = Class::Literal;
            if i + 1 != bytes.len() {
                line_starts.push(i + 1);
            }
            i += 1;
            continue;
        }
        mask[i] = Class::Literal;
        match bytes[i] {
            b'\\' => {
                if i + 1 < bytes.len() {
                    mask[i + 1] = Class::Literal;
                    if bytes[i + 1] == b'\n' && i + 2 != bytes.len() {
                        // Escaped newline (string continuation) still
                        // starts a new source line.
                        line_starts.push(i + 2);
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Lexes a raw string whose prefix (`r`, `br`, `cr`) spans
/// `[start, after_prefix)`; returns the index past the final `#`s.
fn lex_raw_string(
    bytes: &[u8],
    start: usize,
    after_prefix: usize,
    mask: &mut [Class],
    line_starts: &mut Vec<usize>,
) -> usize {
    let mut i = after_prefix;
    let mut hashes = 0usize;
    while bytes.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    if bytes.get(i) != Some(&b'"') {
        return after_prefix; // not actually a raw string
    }
    for m in mask.iter_mut().take(i + 1).skip(start) {
        *m = Class::Literal;
    }
    i += 1;
    while i < bytes.len() {
        if bytes[i] == b'\n' {
            mask[i] = Class::Literal;
            if i + 1 != bytes.len() {
                line_starts.push(i + 1);
            }
            i += 1;
            continue;
        }
        mask[i] = Class::Literal;
        if bytes[i] == b'"' {
            let mut ok = true;
            for k in 0..hashes {
                if bytes.get(i + 1 + k) != Some(&b'#') {
                    ok = false;
                    break;
                }
            }
            if ok {
                for m in mask.iter_mut().take(i + 1 + hashes).skip(i) {
                    *m = Class::Literal;
                }
                return i + 1 + hashes;
            }
        }
        i += 1;
    }
    i
}

/// Does the `'` at `i` open a char literal (vs a lifetime)?
fn is_char_literal(bytes: &[u8], i: usize) -> bool {
    match bytes.get(i + 1) {
        Some(b'\\') => true,
        Some(&c) if c != b'\'' && c != b'\n' => {
            // `'x'` is a char; `'x` followed by anything else is a
            // lifetime. Multi-byte UTF-8 chars: find the next quote
            // within the max char-literal length.
            if c.is_ascii() {
                bytes.get(i + 2) == Some(&b'\'')
            } else {
                // UTF-8 continuation: scan up to 4 bytes for the quote.
                (2..=4).any(|k| bytes.get(i + 1 + k) == Some(&b'\''))
            }
        }
        _ => false,
    }
}

/// Lexes a char/byte literal starting at the `'`; returns the index
/// past the closing quote.
fn lex_char(bytes: &[u8], mut i: usize, mask: &mut [Class]) -> usize {
    mask[i] = Class::Literal;
    i += 1;
    let mut budget = 12; // longest: '\u{10FFFF}'
    while i < bytes.len() && budget > 0 {
        mask[i] = Class::Literal;
        match bytes[i] {
            b'\\' => {
                if i + 1 < bytes.len() {
                    mask[i + 1] = Class::Literal;
                }
                i += 2;
            }
            b'\'' => return i + 1,
            _ => i += 1,
        }
        budget -= 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(text: &str) -> String {
        let lexed = lex(text);
        (1..=lexed.line_count())
            .map(|l| lexed.code_of_line(l))
            .collect::<Vec<_>>()
            .join("\n")
    }

    #[test]
    fn line_comment_masked() {
        assert!(!code("let x = 1; // unwrap() here").contains("unwrap"));
    }

    #[test]
    fn nested_block_comment_masked() {
        let src = "a /* outer /* inner unwrap() */ still */ b.unwrap()";
        let c = code(src);
        assert_eq!(c.matches("unwrap").count(), 1);
        assert!(c.contains("b.unwrap()"));
    }

    #[test]
    fn string_masked() {
        assert!(!code(r#"let s = "panic! inside";"#).contains("panic!"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        assert!(!code(r#"let s = "a\"b unwrap() c";"#).contains("unwrap"));
    }

    #[test]
    fn raw_string_with_hashes_masked() {
        let src = r###"let s = r#"contains "quotes" and unwrap()"# ; x.expect("y")"###;
        let c = code(src);
        assert!(!c.contains("unwrap"));
        assert!(c.contains(".expect("));
    }

    #[test]
    fn byte_and_cstr_prefixes() {
        assert!(!code(r#"let s = b"unwrap()";"#).contains("unwrap"));
        assert!(!code(r##"let s = br#"unwrap()"#;"##).contains("unwrap"));
        assert!(!code(r#"let s = c"unwrap()";"#).contains("unwrap"));
    }

    #[test]
    fn lifetimes_are_code_chars_are_literals() {
        let c = code("fn f<'a>(x: &'a str) { let q = '\"'; let n = '\\n'; x.unwrap() }");
        assert!(c.contains("'a str"));
        assert!(c.contains("unwrap"));
        // The quote char literal must not open a string.
        assert!(!c.contains('"'));
    }

    #[test]
    fn char_quote_then_comment() {
        let c = code("let q = '\\''; // unwrap()");
        assert!(!c.contains("unwrap"));
    }

    #[test]
    fn multiline_string_tracks_lines() {
        let lexed = lex("let s = \"line one\nline two\";\nlet y = 2;");
        assert_eq!(lexed.line_count(), 3);
        // The closing quote is literal; only the `;` is code.
        assert_eq!(lexed.code_of_line(2).trim(), ";");
        assert_eq!(lexed.code_of_line(3).trim(), "let y = 2;");
    }

    #[test]
    fn identifier_ending_in_r_is_not_prefix() {
        // `for` ends in 'r' but must not swallow the following string
        // as raw. And `var"x"` style: identifier then string.
        let c = code("for x in y { s.push_str(\"unwrap()\") }");
        assert!(c.contains("for x in y"));
        assert!(!c.contains("unwrap"));
    }

    #[test]
    fn raw_identifiers_are_code_not_raw_strings() {
        // `r#match` is an identifier, fully code.
        let c = code("let r#match = x.unwrap(); // panic! in comment");
        assert!(c.contains("r#match"));
        assert!(c.contains("unwrap"));
        assert!(!c.contains("panic"));
        // `r#r` / `r#b` adjacent to a string: the trailing `r`/`b` must
        // not be re-interpreted as a raw/byte string prefix — the
        // string that follows keeps normal escape handling.
        let c = code(r#"m!(r#r"a\" x.unwrap()");"#);
        assert!(c.contains("r#r"));
        assert!(!c.contains("unwrap"), "escaped quote leaked: {c}");
        let c = code(r#"let _ = (r#b, "unreachable!");"#);
        assert!(c.contains("r#b"));
        assert!(!c.contains("unreachable"));
        // Raw *strings* still lex as strings: `r#"…"#` is not an ident.
        let c = code(r###"let s = r#"todo!"#;"###);
        assert!(!c.contains("todo"));
    }

    #[test]
    fn code_text_preserves_offsets() {
        let lexed = lex("let a = \"x\"; // c\nlet b = 2;\n");
        let flat = lexed.code_text();
        assert_eq!(flat.len(), lexed.text.len());
        assert_eq!(&flat[..8], "let a = ");
        assert!(flat.contains("\nlet b = 2;"));
        assert!(!flat.contains('"'));
        assert!(!flat.contains("// c"));
    }

    #[test]
    fn comment_of_line_extracts_comment_text() {
        let lexed = lex("let x = 1; // SAFETY: fine\n");
        assert!(lexed.comment_of_line(1).contains("SAFETY: fine"));
        assert!(!lexed.comment_of_line(1).contains("let x"));
    }
}
