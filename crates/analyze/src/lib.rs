//! sciml-analyze — in-repo correctness tooling for the sciml stack.
//!
//! Two halves (see `docs/ARCHITECTURE.md` §4f):
//!
//! * **`sciml-lint`** (this crate, plus the `sciml-lint` binary): a
//!   std-only static-analysis pass over `crates/` built on a small
//!   comment/string/raw-string-aware Rust [`lexer`]. Enforced
//!   [`rules`]: `no_panics` (no `unwrap`/`expect`/`panic!` family in
//!   non-test hot-path code), `safety_comment` (every `unsafe` block
//!   or impl carries a `// SAFETY:` justification), `no_std_sync`
//!   (lock types go through `shims/parking_lot`, which is where the
//!   lockcheck instrumentation lives), `no_instant` (no raw
//!   `Instant::now()` in designated decode inner loops — timing goes
//!   through `sciml-obs`). Violations are waived in place with
//!   `// lint:allow(<rule>): <reason>` or grandfathered per
//!   (file, rule) in `lint.toml`'s generated baseline.
//! * **the lock-order detector** in `parking_lot::lockcheck`
//!   (`--cfg lockcheck`), whose statistics `sciml-obs` republishes as
//!   `analyze.lockcheck.*`.
//!
//! The CI gate is [`Outcome::is_green`]: zero non-baselined violations
//! *and* zero stale baseline entries, so the baseline can only shrink.

#![deny(missing_docs)]

pub mod config;
pub mod effects;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;

pub use config::{BaselineEntry, Config, RuleCfg, UnsafeEntry};
pub use effects::Chain;
pub use report::Report;
pub use rules::{baselineable, FileContext, Violation, RULE_NAMES};

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Result of linting a tree against a config + baseline.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Violations not covered by the baseline (CI-failing).
    pub new_violations: Vec<Violation>,
    /// Baseline entries whose file now has *fewer* violations than
    /// recorded: the baseline is stale and must be tightened
    /// (CI-failing, by design — ratchet only moves down).
    pub stale: Vec<StaleEntry>,
    /// Violations absorbed by the baseline.
    pub suppressed: usize,
    /// Every raw violation (for `--update-baseline` and reporting),
    /// keyed `(file, rule) -> count`.
    pub counts: BTreeMap<(String, String), usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Effect chains behind the graph-rule violations.
    pub chains: Vec<Chain>,
    /// The unsafe inventory of the scanned tree as it exists *now*
    /// (what `--update-baseline` writes).
    pub unsafe_entries: Vec<UnsafeEntry>,
}

/// One baseline entry that no longer matches reality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// File the entry refers to.
    pub file: String,
    /// Rule name.
    pub rule: String,
    /// Count recorded in the baseline.
    pub baselined: usize,
    /// Count actually found now.
    pub actual: usize,
}

impl Outcome {
    /// The CI gate: no new violations, no stale baseline.
    pub fn is_green(&self) -> bool {
        self.new_violations.is_empty() && self.stale.is_empty()
    }

    /// The baselineable violation set re-expressed as baseline entries.
    /// Graph-rule and inventory violations are deliberately excluded:
    /// they cannot be grandfathered, only fixed or waived in place.
    pub fn as_baseline(&self) -> Vec<BaselineEntry> {
        self.counts
            .iter()
            .filter(|(_, &count)| count > 0)
            .filter(|((_, rule), _)| baselineable(rule))
            .map(|((file, rule), &count)| BaselineEntry {
                file: file.clone(),
                rule: rule.clone(),
                count,
            })
            .collect()
    }
}

/// Lints every `.rs` file under each of `roots` (typically the repo's
/// `crates/` and `shims/` directories, or a single file) against `cfg`.
///
/// Two phases: per-file token rules first, then the workspace call
/// graph is built once over all scanned files for the reachability
/// rules and the unsafe-inventory check.
pub fn lint_tree(roots: &[PathBuf], repo_root: &Path, cfg: &Config) -> std::io::Result<Outcome> {
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, &mut files)?;
    }
    files.sort();
    files.dedup();

    let mut outcome = Outcome::default();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in files {
        let text = std::fs::read_to_string(&path)?;
        let rel = rel_path(repo_root, &path);
        let ctx = file_context(&rel, cfg);
        outcome.files_scanned += 1;
        for v in rules::scan_file(&text, &ctx) {
            outcome.new_violations.push(v);
        }
        sources.push((rel, text));
    }

    // Phase two: call graph + effect rules + unsafe inventory. Only
    // `crates/` files become graph nodes (the shims mimic external
    // crates; their blocking/alloc internals are exactly what the
    // effect tokens detect at the call site), but every scanned file
    // is inventoried for unsafe sites.
    let ws = graph::Workspace::build(&sources);
    let (graph_violations, chains) = effects::evaluate(&ws, cfg);
    outcome.new_violations.extend(graph_violations);
    outcome.chains = chains;

    outcome.unsafe_entries = current_inventory(&ws);
    if let Some(recorded) = &cfg.unsafe_inventory {
        outcome.new_violations.extend(inventory_diff(&ws, recorded));
    }

    for v in &outcome.new_violations {
        *outcome
            .counts
            .entry((v.file.clone(), v.rule.to_string()))
            .or_default() += 1;
    }

    // Apply the baseline: per (file, rule), the first `count`
    // violations are grandfathered; extras are new. Fewer than `count`
    // means the baseline is stale.
    let mut remaining: BTreeMap<(String, String), usize> =
        cfg.baseline.iter().map(|(k, &v)| (k.clone(), v)).collect();
    outcome.new_violations.retain(|v| {
        let key = (v.file.clone(), v.rule.to_string());
        match remaining.get_mut(&key) {
            Some(budget) if *budget > 0 => {
                *budget -= 1;
                outcome.suppressed += 1;
                false
            }
            _ => true,
        }
    });
    for ((file, rule), &baselined) in &cfg.baseline {
        let actual = outcome
            .counts
            .get(&(file.clone(), rule.clone()))
            .copied()
            .unwrap_or(0);
        if actual < baselined {
            outcome.stale.push(StaleEntry {
                file: file.clone(),
                rule: rule.clone(),
                baselined,
                actual,
            });
        }
    }
    Ok(outcome)
}

/// The scanned tree's non-test unsafe sites as inventory entries.
/// Test-code unsafe (inside `#[cfg(test)]` or `tests/` files) is
/// excluded: it churns with test edits and is not part of the
/// production unsafe surface the ratchet protects.
fn current_inventory(ws: &graph::Workspace) -> Vec<UnsafeEntry> {
    let mut out = Vec::new();
    for f in &ws.files {
        for (site, hash) in f.unsafe_sites.iter().zip(&f.unsafe_hashes) {
            if f.test_file || site.is_test {
                continue;
            }
            out.push(UnsafeEntry {
                file: f.rel.clone(),
                kind: site.kind.name().to_string(),
                context: site.context.clone(),
                hash: hash.clone(),
                safety: site.safety_comment,
            });
        }
    }
    out.sort();
    out
}

/// Multiset diff of the current unsafe sites against the recorded
/// inventory: unrecorded sites and entries that no longer match both
/// fail as `unsafe_inventory` violations until the inventory is
/// regenerated (and the diff reviewed).
fn inventory_diff(ws: &graph::Workspace, recorded: &[UnsafeEntry]) -> Vec<Violation> {
    type Key = (String, String, String, String, bool);
    let key = |e: &UnsafeEntry| -> Key {
        (
            e.file.clone(),
            e.kind.clone(),
            e.context.clone(),
            e.hash.clone(),
            e.safety,
        )
    };
    let mut budget: BTreeMap<Key, usize> = BTreeMap::new();
    for e in recorded {
        *budget.entry(key(e)).or_default() += 1;
    }
    let mut out = Vec::new();
    for f in &ws.files {
        for (site, hash) in f.unsafe_sites.iter().zip(&f.unsafe_hashes) {
            if f.test_file || site.is_test {
                continue;
            }
            let k = (
                f.rel.clone(),
                site.kind.name().to_string(),
                site.context.clone(),
                hash.clone(),
                site.safety_comment,
            );
            match budget.get_mut(&k) {
                Some(n) if *n > 0 => *n -= 1,
                _ => out.push(Violation {
                    file: f.rel.clone(),
                    line: site.line,
                    rule: "unsafe_inventory",
                    token: format!(
                        "unrecorded or edited unsafe {} in `{}` — review it, then run `sciml-lint --update-baseline`",
                        site.kind.name(),
                        site.context
                    ),
                }),
            }
        }
    }
    for ((file, kind, context, _, _), n) in budget {
        if n > 0 {
            out.push(Violation {
                file,
                line: 0,
                rule: "unsafe_inventory",
                token: format!(
                    "inventory records {n} unsafe {kind} site(s) in `{context}` that no longer exist as recorded — run `sciml-lint --update-baseline`"
                ),
            });
        }
    }
    out
}

fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    for entry in std::fs::read_dir(path)? {
        let entry = entry?;
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_path(repo_root: &Path, path: &Path) -> String {
    path.strip_prefix(repo_root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Derives the per-file rule context from its repo-relative path.
pub fn file_context(rel: &str, cfg: &Config) -> FileContext {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("");
    let test_file = rel.contains("/tests/") || rel.contains("/benches/");
    FileContext {
        rel_path: rel.to_string(),
        hot_path: cfg.hot_path_crates.iter().any(|c| c == crate_name),
        instant_designated: cfg
            .instant_paths
            .iter()
            .any(|p| rel.starts_with(p.as_str())),
        test_file,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write(dir: &Path, rel: &str, text: &str) {
        let p = dir.join(rel);
        std::fs::create_dir_all(p.parent().unwrap()).unwrap();
        std::fs::write(p, text).unwrap();
    }

    fn tmp_repo(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lint-tree-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn baseline_absorbs_then_flags_extras_and_staleness() {
        let dir = tmp_repo("base");
        write(
            &dir,
            "crates/codec/src/lib.rs",
            "fn f(x: Option<u8>) { x.unwrap(); }\nfn g(x: Option<u8>) { x.unwrap(); }\n",
        );
        let mut cfg = Config::default();

        // Exact baseline: green.
        cfg.baseline
            .insert(("crates/codec/src/lib.rs".into(), "no_panics".into()), 2);
        let out = lint_tree(&[dir.join("crates")], &dir, &cfg).unwrap();
        assert!(out.is_green(), "{:?}", out.new_violations);
        assert_eq!(out.suppressed, 2);

        // Baseline smaller than reality: the extra violation fails.
        cfg.baseline
            .insert(("crates/codec/src/lib.rs".into(), "no_panics".into()), 1);
        let out = lint_tree(&[dir.join("crates")], &dir, &cfg).unwrap();
        assert_eq!(out.new_violations.len(), 1);

        // Baseline larger than reality: stale, also fails.
        cfg.baseline
            .insert(("crates/codec/src/lib.rs".into(), "no_panics".into()), 3);
        let out = lint_tree(&[dir.join("crates")], &dir, &cfg).unwrap();
        assert!(out.new_violations.is_empty());
        assert_eq!(out.stale.len(), 1);
        assert_eq!(out.stale[0].actual, 2);
        assert!(!out.is_green());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn context_rules_follow_paths() {
        let cfg = Config::default();
        assert!(file_context("crates/codec/src/lib.rs", &cfg).hot_path);
        assert!(!file_context("crates/obs/src/lib.rs", &cfg).hot_path);
        assert!(file_context("crates/codec/src/f16.rs", &cfg).instant_designated);
        assert!(file_context("crates/serve/tests/integration.rs", &cfg).test_file);
    }

    #[test]
    fn as_baseline_roundtrips_counts() {
        let dir = tmp_repo("round");
        write(
            &dir,
            "crates/store/src/lib.rs",
            "fn f(x: Option<u8>) { x.unwrap(); panic!(\"x\") }\n",
        );
        let out = lint_tree(&[dir.join("crates")], &dir, &Config::default()).unwrap();
        assert_eq!(out.new_violations.len(), 2);
        let entries = out.as_baseline();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].count, 2);
        // Feeding the generated baseline back turns CI green.
        let mut cfg = Config::default();
        for e in &entries {
            cfg.baseline
                .insert((e.file.clone(), e.rule.clone()), e.count);
        }
        let out = lint_tree(&[dir.join("crates")], &dir, &cfg).unwrap();
        assert!(out.is_green());
        std::fs::remove_dir_all(&dir).ok();
    }
}
