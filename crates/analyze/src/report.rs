//! Human table + JSON rendering of a lint [`Outcome`].

use crate::rules::RULE_NAMES;
use crate::{Outcome, StaleEntry, Violation};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renderable summary of one lint run.
pub struct Report<'a> {
    outcome: &'a Outcome,
}

impl<'a> Report<'a> {
    /// Wraps an outcome for rendering.
    pub fn new(outcome: &'a Outcome) -> Self {
        Self { outcome }
    }

    /// Per-crate × per-rule table of *total* violation counts
    /// (baselined + new), with failing cells carrying the new count.
    pub fn table(&self) -> String {
        let mut per_crate: BTreeMap<String, BTreeMap<&str, usize>> = BTreeMap::new();
        for ((file, rule), &count) in &self.outcome.counts {
            if count == 0 {
                continue;
            }
            let krate = crate_of(file);
            if let Some(r) = RULE_NAMES.iter().find(|r| *r == rule) {
                *per_crate.entry(krate).or_default().entry(r).or_default() += count;
            }
        }
        let mut new_per_crate: BTreeMap<String, usize> = BTreeMap::new();
        for v in &self.outcome.new_violations {
            *new_per_crate.entry(crate_of(&v.file)).or_default() += 1;
        }

        let name_w = per_crate
            .keys()
            .map(|k| k.len())
            .chain(["crate".len()])
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        let _ = write!(out, "{:<name_w$}", "crate");
        for rule in RULE_NAMES {
            let w = rule.len().max(5);
            let _ = write!(out, "  {rule:>w$}");
        }
        let _ = writeln!(out, "  {:>6}", "new");
        for (krate, counts) in &per_crate {
            let _ = write!(out, "{krate:<name_w$}");
            for rule in RULE_NAMES {
                let w = rule.len().max(5);
                let c = counts.get(rule).copied().unwrap_or(0);
                if c == 0 {
                    let _ = write!(out, "  {:>w$}", "-");
                } else {
                    let _ = write!(out, "  {c:>w$}");
                }
            }
            let newc = new_per_crate.get(krate).copied().unwrap_or(0);
            let _ = writeln!(out, "  {newc:>6}");
        }
        if per_crate.is_empty() {
            let _ = writeln!(out, "(no violations)");
        }
        let _ = writeln!(
            out,
            "\n{} file(s) scanned, {} violation(s) baselined, {} new, {} stale baseline entr{}",
            self.outcome.files_scanned,
            self.outcome.suppressed,
            self.outcome.new_violations.len(),
            self.outcome.stale.len(),
            if self.outcome.stale.len() == 1 {
                "y"
            } else {
                "ies"
            },
        );
        out
    }

    /// Detail lines for failures: each new violation and stale entry.
    pub fn failures(&self) -> String {
        let mut out = String::new();
        for Violation {
            file,
            line,
            rule,
            token,
        } in &self.outcome.new_violations
        {
            let _ = writeln!(
                out,
                "{file}:{line}: [{rule}] `{token}` — annotate `// lint:allow({rule}): <reason>` or fix"
            );
        }
        for StaleEntry {
            file,
            rule,
            baselined,
            actual,
        } in &self.outcome.stale
        {
            let _ = writeln!(
                out,
                "lint.toml: stale baseline for {file} [{rule}]: lists {baselined}, found {actual} — run `sciml-lint --update-baseline`"
            );
        }
        out
    }

    /// JSON document for tooling: schema-versioned counts, per-rule
    /// totals, new violations, staleness, and effect chains.
    ///
    /// The top-level `schema` field is the stability contract
    /// (`sciml.lint.report.v1`): existing fields keep their names and
    /// types within a major version; consumers must ignore unknown
    /// fields.
    pub fn json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"schema\":\"sciml.lint.report.v1\",\"files_scanned\":{},\"suppressed\":{},\"green\":{}",
            self.outcome.files_scanned,
            self.outcome.suppressed,
            self.outcome.is_green()
        );
        // Per-rule totals (baselined + new) and new-only counts.
        let mut total: BTreeMap<&str, usize> = BTreeMap::new();
        for ((_, rule), &count) in &self.outcome.counts {
            if let Some(r) = RULE_NAMES.iter().find(|r| *r == rule) {
                *total.entry(r).or_default() += count;
            }
        }
        let mut newc: BTreeMap<&str, usize> = BTreeMap::new();
        for v in &self.outcome.new_violations {
            *newc.entry(v.rule).or_default() += 1;
        }
        out.push_str(",\"rules\":{");
        for (i, rule) in RULE_NAMES.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"total\":{},\"new\":{}}}",
                rule,
                total.get(rule).copied().unwrap_or(0),
                newc.get(rule).copied().unwrap_or(0)
            );
        }
        out.push('}');
        out.push_str(",\"new_violations\":[");
        for (i, v) in self.outcome.new_violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"token\":\"{}\"}}",
                escape(&v.file),
                v.line,
                v.rule,
                escape(&v.token)
            );
        }
        out.push_str("],\"stale\":[");
        for (i, s) in self.outcome.stale.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"rule\":\"{}\",\"baselined\":{},\"actual\":{}}}",
                escape(&s.file),
                s.rule,
                s.baselined,
                s.actual
            );
        }
        out.push_str("],\"counts\":[");
        let mut first = true;
        for ((file, rule), &count) in &self.outcome.counts {
            if count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"rule\":\"{}\",\"count\":{}}}",
                escape(file),
                rule,
                count
            );
        }
        out.push_str("],\"chains\":[");
        for (i, c) in self.outcome.chains.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":\"{}\",\"root_file\":\"{}\",\"root_line\":{},\"path\":[",
                c.rule,
                escape(&c.root_file),
                c.root_line
            );
            for (j, seg) in c.path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", escape(seg));
            }
            let _ = write!(
                out,
                "],\"token\":\"{}\",\"site_file\":\"{}\",\"site_line\":{}}}",
                escape(&c.token),
                escape(&c.site_file),
                c.site_line
            );
        }
        out.push_str("]}");
        out
    }
}

fn crate_of(file: &str) -> String {
    file.strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("(root)")
        .to_string()
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Violation;

    fn outcome_with(new: usize) -> Outcome {
        let mut o = Outcome {
            files_scanned: 3,
            suppressed: 2,
            ..Default::default()
        };
        for i in 0..new {
            o.new_violations.push(Violation {
                file: "crates/serve/src/server.rs".into(),
                line: 10 + i,
                rule: "no_panics",
                token: ".unwrap()".into(),
            });
        }
        o.counts.insert(
            ("crates/serve/src/server.rs".into(), "no_panics".into()),
            new + 2,
        );
        o
    }

    #[test]
    fn table_shows_counts_and_totals() {
        let o = outcome_with(1);
        let t = Report::new(&o).table();
        assert!(t.contains("serve"));
        assert!(t.contains("no_panics"));
        assert!(t.contains("2 violation(s) baselined, 1 new"));
    }

    #[test]
    fn json_is_parseable_shape() {
        let o = outcome_with(2);
        let j = Report::new(&o).json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"green\":false"));
        assert!(j.contains("\"rule\":\"no_panics\""));
        // Balanced quotes: every key/value quote closes.
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn json_carries_schema_rules_and_chains() {
        let mut o = outcome_with(1);
        o.chains.push(crate::effects::Chain {
            rule: "no_panics_transitive",
            root_file: "crates/codec/src/decode.rs".into(),
            root_line: 10,
            path: vec!["decode_into".into(), "lut_get".into()],
            token: "panic!".into(),
            site_file: "crates/codec/src/lut.rs".into(),
            site_line: 42,
        });
        let j = Report::new(&o).json();
        assert!(j.contains("\"schema\":\"sciml.lint.report.v1\""));
        assert!(j.contains("\"rules\":{"));
        assert!(j.contains("\"no_panics\":{\"total\":3,\"new\":1}"));
        assert!(j.contains("\"no_blocking_in_reactor\":{\"total\":0,\"new\":0}"));
        assert!(j.contains("\"path\":[\"decode_into\",\"lut_get\"]"));
        assert!(j.contains("\"site_line\":42"));
        assert_eq!(j.matches('"').count() % 2, 0);
    }

    #[test]
    fn failures_mention_fix_paths() {
        let mut o = outcome_with(1);
        o.stale.push(StaleEntry {
            file: "crates/a/src/lib.rs".into(),
            rule: "no_panics".into(),
            baselined: 4,
            actual: 1,
        });
        let f = Report::new(&o).failures();
        assert!(f.contains("lint:allow(no_panics)"));
        assert!(f.contains("--update-baseline"));
    }
}
