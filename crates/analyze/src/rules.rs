//! The lint rules and the per-file scanner.
//!
//! Every rule works on the lexer's code mask, so tokens inside strings
//! and comments never fire. Violations can be waived in place with
//!
//! ```text
//! // lint:allow(<rule>): <reason>
//! ```
//!
//! on the offending line (trailing comment) or in the comment block
//! immediately above it; the reason is mandatory. Violations that
//! predate the lint live in `lint.toml`'s generated baseline instead.

use crate::lexer::{lex, Lexed};
use std::collections::{HashMap, HashSet};

/// Names of all rules, in report order. The first four are token
/// rules (line-local, baselineable); the last four are the graph and
/// inventory rules added by lint v2, which can be waived in place but
/// never grandfathered.
pub const RULE_NAMES: [&str; 8] = [
    "no_panics",
    "safety_comment",
    "no_std_sync",
    "no_instant",
    "no_panics_transitive",
    "no_alloc_hot_loop",
    "no_blocking_in_reactor",
    "unsafe_inventory",
];

/// Whether violations of `rule` may be grandfathered in the generated
/// baseline. Graph-reachability and inventory rules deliberately are
/// not: a transitive panic chain or an unrecorded unsafe site must be
/// fixed or waived in place, not absorbed.
pub fn baselineable(rule: &str) -> bool {
    matches!(
        rule,
        "no_panics" | "safety_comment" | "no_std_sync" | "no_instant"
    )
}

/// One rule violation at a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// The offending token.
    pub token: String,
}

/// Per-file facts the rules need.
#[derive(Debug, Clone, Default)]
pub struct FileContext {
    /// Repo-relative path with forward slashes.
    pub rel_path: String,
    /// Whether this file belongs to a hot-path crate (`no_panics`).
    pub hot_path: bool,
    /// Whether this file is under a designated decode-inner-loop path
    /// (`no_instant`).
    pub instant_designated: bool,
    /// Whether the whole file is test code (`tests/`, `benches/`).
    pub test_file: bool,
}

/// Scans one file, returning every violation (before baseline and
/// annotation filtering is applied by the caller — annotations are
/// already honored here).
pub fn scan_file(text: &str, ctx: &FileContext) -> Vec<Violation> {
    let lexed = lex(text);
    let n = lexed.line_count();
    let test_lines = test_line_mask(&lexed, ctx.test_file);
    let allows = allow_map(&lexed);
    let mut out = Vec::new();

    for line in 1..=n {
        let code = lexed.code_of_line(line);
        if code.trim().is_empty() {
            continue;
        }
        let in_test = test_lines[line - 1];
        let allowed = |rule: &str| allows.get(&line).is_some_and(|set| set.contains(rule));

        if ctx.hot_path && !in_test && !allowed("no_panics") {
            for token in panic_tokens(&code) {
                out.push(Violation {
                    file: ctx.rel_path.clone(),
                    line,
                    rule: "no_panics",
                    token,
                });
            }
        }

        if !allowed("safety_comment") {
            for _ in 0..unsafe_sites_needing_comment(&lexed, line, &code) {
                out.push(Violation {
                    file: ctx.rel_path.clone(),
                    line,
                    rule: "safety_comment",
                    token: "unsafe".into(),
                });
            }
        }

        if !in_test && !allowed("no_std_sync") {
            if let Some(token) = std_sync_token(&code) {
                out.push(Violation {
                    file: ctx.rel_path.clone(),
                    line,
                    rule: "no_std_sync",
                    token,
                });
            }
        }

        if ctx.instant_designated && !in_test && !allowed("no_instant") {
            for (at, _) in word_occurrences(&code, "Instant") {
                if code[at..].starts_with("Instant::now") {
                    out.push(Violation {
                        file: ctx.rel_path.clone(),
                        line,
                        rule: "no_instant",
                        token: "Instant::now".into(),
                    });
                }
            }
        }
    }
    out
}

/// `true` for every 1-indexed line inside `#[cfg(test)]` / `#[test]`
/// regions (attribute line through the matching close brace).
pub(crate) fn test_line_mask(lexed: &Lexed<'_>, whole_file: bool) -> Vec<bool> {
    let n = lexed.line_count();
    if whole_file {
        return vec![true; n];
    }
    let mut mask = vec![false; n];
    // Flatten the code text once so brace matching can cross lines.
    let code: Vec<String> = (1..=n).map(|l| lexed.code_of_line(l)).collect();
    let mut line = 1usize;
    while line <= n {
        let text = &code[line - 1];
        let is_marker = text.contains("#[test]")
            || (text.contains("#[cfg(") && contains_word(text, "test"))
            || (text.contains("#[cfg_attr(") && contains_word(text, "test"));
        if !is_marker {
            line += 1;
            continue;
        }
        // Find the block the attribute introduces: the first `{` at or
        // after this line, then its matching `}`. `mod tests;` (no
        // body) or attribute on a `use` ends at the first `;` before
        // any `{`.
        let mut depth = 0usize;
        let mut started = false;
        let mut l = line;
        'outer: while l <= n {
            for ch in code[l - 1].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        started = true;
                    }
                    '}' => {
                        depth = depth.saturating_sub(1);
                        if started && depth == 0 {
                            break 'outer;
                        }
                    }
                    ';' if !started => break 'outer,
                    _ => {}
                }
            }
            l += 1;
        }
        let end = l.min(n);
        for m in mask.iter_mut().take(end).skip(line - 1) {
            *m = true;
        }
        line = end + 1;
    }
    mask
}

/// Parses `lint:allow(rule): reason` annotations. Returns, per code
/// line, the set of rules waived there (trailing comments waive their
/// own line; comment-only lines waive the next line with code).
pub(crate) fn allow_map(lexed: &Lexed<'_>) -> HashMap<usize, HashSet<String>> {
    let n = lexed.line_count();
    let mut map: HashMap<usize, HashSet<String>> = HashMap::new();
    let mut pending: HashSet<String> = HashSet::new();
    for line in 1..=n {
        let comment = lexed.comment_of_line(line);
        let mut here: HashSet<String> = HashSet::new();
        let mut at = 0usize;
        while let Some(pos) = comment[at..].find("lint:allow(") {
            let start = at + pos + "lint:allow(".len();
            let Some(close) = comment[start..].find(')') else {
                break;
            };
            let rule = comment[start..start + close].trim().to_string();
            let rest = &comment[start + close + 1..];
            // Mandatory `: reason`.
            if let Some(reason) = rest.strip_prefix(':') {
                if !reason.trim().is_empty() && RULE_NAMES.contains(&rule.as_str()) {
                    here.insert(rule);
                }
            }
            at = start + close + 1;
        }
        if lexed.line_has_code(line) {
            let entry = map.entry(line).or_default();
            entry.extend(here);
            entry.extend(pending.drain());
        } else {
            pending.extend(here);
        }
    }
    map
}

/// Panic-capable tokens on a code line: `.unwrap()`, `.expect(`,
/// `panic!`, `unreachable!`, `todo!`.
pub(crate) fn panic_tokens(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    for (at, _) in word_occurrences(code, "unwrap") {
        if at > 0 && code[..at].ends_with('.') {
            out.push(".unwrap()".into());
        }
    }
    for (at, _) in word_occurrences(code, "expect") {
        if at > 0 && code[..at].ends_with('.') {
            out.push(".expect(..)".into());
        }
    }
    for mac in ["panic", "unreachable", "todo"] {
        for (at, end) in word_occurrences(code, mac) {
            if code[end..].starts_with('!') {
                // `core::panic!`-style paths still match the word.
                let _ = at;
                out.push(format!("{mac}!"));
            }
        }
    }
    out
}

/// `unsafe` blocks / `unsafe impl`s on `line` lacking a `SAFETY:`
/// comment on the same line or in the comment block directly above.
fn unsafe_sites_needing_comment(lexed: &Lexed<'_>, line: usize, code: &str) -> usize {
    let mut needing = 0usize;
    for (_, end) in word_occurrences(code, "unsafe") {
        let rest = code[end..].trim_start();
        // Only sites that *introduce* unsafety here: blocks and trait
        // impls. `unsafe fn` declarations document their contract in
        // `# Safety` rustdoc instead.
        if !(rest.starts_with('{') || rest.starts_with("impl")) {
            continue;
        }
        if has_safety_comment(lexed, line) {
            continue;
        }
        needing += 1;
    }
    needing
}

pub(crate) fn has_safety_comment(lexed: &Lexed<'_>, line: usize) -> bool {
    if lexed.comment_of_line(line).contains("SAFETY:") {
        return true;
    }
    // Walk the contiguous comment/blank block above.
    let mut l = line;
    while l > 1 {
        l -= 1;
        if lexed.line_has_code(l) {
            return false;
        }
        if lexed.comment_of_line(l).contains("SAFETY:") {
            return true;
        }
    }
    false
}

/// Direct `std::sync` lock usage: qualified paths or `use` imports of
/// `Mutex` / `RwLock` / `Condvar`.
fn std_sync_token(code: &str) -> Option<String> {
    if !code.contains("std::sync") {
        return None;
    }
    for lock in ["Mutex", "RwLock", "Condvar"] {
        if word_occurrences(code, lock).next().is_some() {
            return Some(format!("std::sync::{lock}"));
        }
    }
    None
}

fn contains_word(text: &str, word: &str) -> bool {
    word_occurrences(text, word).next().is_some()
}

/// Occurrences of `word` in `text` with identifier boundaries on both
/// sides; yields `(start, end)` byte offsets.
pub(crate) fn word_occurrences<'a>(
    text: &'a str,
    word: &'a str,
) -> impl Iterator<Item = (usize, usize)> + 'a {
    let mut at = 0usize;
    std::iter::from_fn(move || {
        while let Some(pos) = text[at..].find(word) {
            let start = at + pos;
            let end = start + word.len();
            at = start + 1;
            let left_ok = start == 0
                || !text.as_bytes()[start - 1].is_ascii_alphanumeric()
                    && text.as_bytes()[start - 1] != b'_';
            let right_ok = end >= text.len()
                || !text.as_bytes()[end].is_ascii_alphanumeric() && text.as_bytes()[end] != b'_';
            if left_ok && right_ok {
                return Some((start, end));
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_hot() -> FileContext {
        FileContext {
            rel_path: "crates/x/src/lib.rs".into(),
            hot_path: true,
            instant_designated: true,
            test_file: false,
        }
    }

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_unwrap_expect_and_macros() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    let y = x.unwrap();\n    let z = x.expect(\"msg\");\n    if y == 0 { panic!(\"boom\") }\n    unreachable!()\n}\n";
        let v = scan_file(src, &ctx_hot());
        assert_eq!(
            rules_of(&v),
            vec!["no_panics", "no_panics", "no_panics", "no_panics"]
        );
        assert_eq!(v[0].token, ".unwrap()");
        assert_eq!(v[3].token, "unreachable!");
    }

    #[test]
    fn ignores_unwrap_or_variants_and_non_hot_crates() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap_or(0).min(x.unwrap_or_default()) }\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let cold = FileContext {
            hot_path: false,
            ..ctx_hot()
        };
        assert!(scan_file(src, &cold).is_empty());
    }

    #[test]
    fn expect_err_is_not_expect() {
        let src = "fn f(x: Result<u8, u8>) -> u8 { x.expect_err(\"want err\") }\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_no_panics() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
        let src = "#[test]\nfn t() { Some(1).unwrap(); }\nfn bad(x: Option<u8>) { x.unwrap(); }\n";
        let v = scan_file(src, &ctx_hot());
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn annotation_waives_same_line_and_next_line() {
        let src =
            "fn f(x: Option<u8>) {\n    x.unwrap(); // lint:allow(no_panics): checked above\n}\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
        let src = "fn f(x: Option<u8>) {\n    // lint:allow(no_panics): invariant — set in new()\n    // and never cleared.\n    x.unwrap();\n}\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
    }

    #[test]
    fn annotation_requires_reason_and_known_rule() {
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); // lint:allow(no_panics):\n}\n";
        assert_eq!(scan_file(src, &ctx_hot()).len(), 1);
        let src = "fn f(x: Option<u8>) {\n    x.unwrap(); // lint:allow(not_a_rule): because\n}\n";
        assert_eq!(scan_file(src, &ctx_hot()).len(), 1);
    }

    #[test]
    fn unsafe_block_needs_safety_comment() {
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 1 };\n}\n";
        let v = scan_file(src, &ctx_hot());
        assert_eq!(rules_of(&v), vec!["safety_comment"]);
        let src = "fn f(p: *mut u8) {\n    // SAFETY: p is valid for writes, caller contract.\n    unsafe { *p = 1 };\n}\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
        // Trailing same-line SAFETY also counts.
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 1 }; // SAFETY: p valid\n}\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
    }

    #[test]
    fn unsafe_impl_needs_comment_but_unsafe_fn_does_not() {
        let src = "unsafe impl Send for X {}\n";
        assert_eq!(scan_file(src, &ctx_hot()).len(), 1);
        let src = "/// # Safety\n/// caller must…\npub unsafe fn f() {}\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
    }

    #[test]
    fn std_sync_locks_flagged_atomics_fine() {
        let src = "use std::sync::{Arc, Mutex};\n";
        let v = scan_file(src, &ctx_hot());
        assert_eq!(rules_of(&v), vec!["no_std_sync"]);
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\nuse std::sync::Arc;\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
        let src = "fn f() { let m = std::sync::RwLock::new(0); }\n";
        assert_eq!(scan_file(src, &ctx_hot()).len(), 1);
    }

    #[test]
    fn instant_only_in_designated_paths() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert_eq!(rules_of(&scan_file(src, &ctx_hot())), vec!["no_instant"]);
        let undesignated = FileContext {
            instant_designated: false,
            ..ctx_hot()
        };
        assert!(scan_file(src, &undesignated).is_empty());
    }

    #[test]
    fn tokens_in_strings_and_comments_never_fire() {
        let src = "fn f() {\n    let s = \"x.unwrap() panic! std::sync::Mutex Instant::now()\";\n    // x.unwrap() and unsafe { } in a comment\n    let r = r#\"todo! unreachable!\"#;\n    let _ = (s, r);\n}\n";
        assert!(scan_file(src, &ctx_hot()).is_empty());
    }

    #[test]
    fn whole_test_file_exempt() {
        let src = "fn helper(x: Option<u8>) { x.unwrap(); }\n";
        let tf = FileContext {
            test_file: true,
            ..ctx_hot()
        };
        assert!(scan_file(src, &tf).is_empty());
    }
}
