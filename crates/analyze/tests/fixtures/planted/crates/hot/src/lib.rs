//! Planted fixture: a 3-deep transitive panic chain
//! (`decode_into -> gather_rows -> lut_get`) and an unsafe block that
//! is deliberately absent from the fixture's (empty) unsafe inventory.
//! The lint gate must fail on both — the integration test and
//! `scripts/ci.sh` assert exactly that.

pub fn decode_into(keys: &[u8], out: &mut [f32]) {
    gather_rows(keys, out);
}

fn gather_rows(keys: &[u8], out: &mut [f32]) {
    for (o, &k) in out.iter_mut().zip(keys) {
        *o = lut_get(k as usize);
    }
}

fn lut_get(i: usize) -> f32 {
    if i >= 256 {
        panic!("lut index out of range");
    }
    i as f32
}

pub fn head(xs: &[f32]) -> f32 {
    // SAFETY: caller guarantees a non-empty slice. (This site is
    // deliberately NOT recorded in the inventory above.)
    unsafe { *xs.as_ptr() }
}
