//! Property tests for the call-graph extractor — call-looking tokens
//! planted in comments, strings, and `#[cfg(test)]` code must never
//! become edges — plus the planted-fixture integration test: a 3-deep
//! transitive panic chain and an uninventoried unsafe block must make
//! the lint gate fail with a fully-attributed chain.

use proptest::prelude::*;
use sciml_analyze::graph::Workspace;
use sciml_analyze::{lint_tree, Config};
use std::path::Path;

/// One source segment that plants a `lut_get(…)`-looking call inside
/// non-code bytes (or innocuous code with no call at all).
fn noise_segment(kind: u8, a: u8) -> String {
    match kind % 6 {
        0 => format!("    let v = {a};\n"),
        1 => "    // lut_get(7); gather_rows(keys, out);\n".to_string(),
        2 => "    /* lut_get(1) /* gather_rows() */ */\n".to_string(),
        3 => format!("    let s = \"lut_get({a}) \\\" gather_rows()\";\n"),
        4 => "    let r = r#\"lut_get(0) \" gather_rows()\"#;\n".to_string(),
        _ => format!("    let m = \"line one lut_get({a})\nline two gather_rows()\";\n"),
    }
}

proptest! {
    /// Calls that exist only in comments/strings never produce edges:
    /// the root's call list stays free of the planted names.
    #[test]
    fn calls_in_noncode_never_make_edges(
        kinds in proptest::collection::vec((0u8..6, any::<u8>()), 1..16),
    ) {
        let mut src = String::from("pub fn root(x: u8) {\n");
        for &(kind, a) in &kinds {
            src.push_str(&noise_segment(kind, a));
        }
        src.push_str("}\npub fn lut_get(i: u8) -> f32 { i as f32 }\n");
        let ws = Workspace::build(&[("crates/a/src/lib.rs".to_string(), src.clone())]);
        let root = ws
            .nodes
            .iter()
            .position(|n| n.name == "root")
            .expect("root node");
        let planted: Vec<_> = ws.nodes[root]
            .calls
            .iter()
            .filter(|c| c.name == "lut_get" || c.name == "gather_rows")
            .collect();
        prop_assert!(planted.is_empty(), "phantom calls {planted:?} in:\n{src}");
    }

    /// Functions inside `#[cfg(test)]` modules never become graph
    /// nodes, so their calls and panics are invisible to the effect
    /// rules no matter what the generator plants in them.
    #[test]
    fn cfg_test_code_produces_no_nodes(
        a in any::<u8>(),
    ) {
        let src = format!(
            "pub fn root() {{ helper({a}); }}\n\
             pub fn helper(x: u8) -> u8 {{ x }}\n\
             #[cfg(test)]\n\
             mod tests {{\n\
                 fn test_only() {{ lut_get(1); panic!(\"boom\"); }}\n\
                 fn lut_get(i: u8) -> u8 {{ i }}\n\
             }}\n"
        );
        let ws = Workspace::build(&[("crates/a/src/lib.rs".to_string(), src)]);
        prop_assert!(ws.nodes.iter().all(|n| n.name != "test_only" && n.name != "lut_get"));
        // The real code is still graphed.
        prop_assert!(ws.nodes.iter().any(|n| n.name == "root"));
        prop_assert!(ws.nodes.iter().any(|n| n.name == "helper"));
    }
}

/// The on-disk planted fixture must fail the gate with a full chain
/// for the 3-deep panic and an `unsafe_inventory` violation for the
/// unrecorded unsafe block. `scripts/ci.sh` re-checks the same fixture
/// through the real binary.
#[test]
fn planted_fixture_fails_with_full_chain() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/planted");
    let cfg = Config::load(&dir.join("lint.toml")).expect("fixture lint.toml");
    let outcome = lint_tree(&[dir.join("crates")], &dir, &cfg).expect("fixture scan");

    assert!(!outcome.is_green(), "planted fixture must fail the gate");
    let chain = outcome
        .chains
        .iter()
        .find(|c| c.rule == "no_panics_transitive")
        .expect("transitive panic chain reported");
    assert_eq!(chain.path, ["decode_into", "gather_rows", "lut_get"]);
    assert_eq!(chain.token, "panic!");
    assert_eq!(chain.site_file, "crates/hot/src/lib.rs");
    assert!(
        outcome
            .new_violations
            .iter()
            .any(|v| v.rule == "unsafe_inventory" && v.file == "crates/hot/src/lib.rs"),
        "unrecorded unsafe block must trip the ratchet; got {:?}",
        outcome.new_violations
    );
}
