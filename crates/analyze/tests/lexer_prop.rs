//! Property tests for the lint lexer: randomly generated nests of
//! strings, raw strings, char literals, and (nested) comments that all
//! contain panic-looking / lock-looking tokens must never produce a
//! lint violation — the lexer's code mask is what stands between the
//! rules and false positives. A real violation appended after the noise
//! must still be found, at the right line.

use proptest::prelude::*;
use sciml_analyze::rules::{scan_file, FileContext};

fn hot_ctx() -> FileContext {
    FileContext {
        rel_path: "crates/codec/src/lib.rs".into(),
        hot_path: true,
        instant_designated: true,
        test_file: false,
    }
}

/// Builds one source segment from a generated choice. Every segment
/// plants rule-triggering tokens inside non-code bytes only.
fn segment(kind: u8, a: u8) -> String {
    match kind % 9 {
        0 => format!("    let v = {a};\n"),
        1 => format!(
            "    // unwrap() .expect( panic! todo! std::sync::Mutex Instant::now() unsafe {{ {a}\n"
        ),
        2 => {
            // Nested block comment, optionally spanning lines.
            if a.is_multiple_of(2) {
                "    /* unwrap() /* panic!('{') */ std::sync::Mutex */\n".to_string()
            } else {
                "    /* .expect(\n    unreachable!() /* Instant::now() */\n    unsafe { */\n"
                    .to_string()
            }
        }
        3 => format!("    let s = \"unwrap() \\\" panic! {a} \\\\ std::sync::Mutex unsafe {{\";\n"),
        4 => {
            // Raw string with hash depth 1–2 and embedded quotes.
            if a.is_multiple_of(2) {
                "    let r = r#\"unwrap() \" .expect( std::sync::RwLock todo!\"#;\n".to_string()
            } else {
                "    let r = br##\"panic! \"# Instant::now() unsafe {\"##;\n".to_string()
            }
        }
        5 => "    fn g<'a>(x: &'a u8) -> char { let _ = x; '\"' }\n".to_string(),
        6 => format!("    let m = \"line one unwrap() {a}\nline two panic!\";\n"),
        7 => {
            // Raw identifiers must lex as plain code, not as raw-string
            // openers, even when named after keywords.
            if a.is_multiple_of(2) {
                format!("    let r#match = {a}; let _ = r#match + r#loop;\n")
            } else {
                "    let r#fn = 1; let s = \"panic! near r#str unwrap()\";\n".to_string()
            }
        }
        _ => {
            // Raw-identifier / raw-string adjacency: `r#r` is the
            // identifier `r`, so the following string literal (with an
            // escaped quote) must be masked — the historical lexer bug
            // treated `r#r"…"` as one raw string and unmasked the rest.
            if a.is_multiple_of(2) {
                "    m!(r#r, \"a\\\" x.unwrap()\");\n".to_string()
            } else {
                "    let r#br = 2; let b = br#\"unwrap() .expect( panic!\"#;\n".to_string()
            }
        }
    }
}

proptest! {
    #[test]
    fn generated_nests_never_false_positive(
        kinds in proptest::collection::vec((0u8..9, any::<u8>()), 1..24),
    ) {
        let mut src = String::from("fn f() {\n");
        for &(kind, a) in &kinds {
            src.push_str(&segment(kind, a));
        }
        src.push_str("}\n");
        let violations = scan_file(&src, &hot_ctx());
        prop_assert!(
            violations.is_empty(),
            "false positives {violations:?} in:\n{src}"
        );
    }

    #[test]
    fn real_violation_survives_the_noise(
        kinds in proptest::collection::vec((0u8..9, any::<u8>()), 1..24),
    ) {
        let mut src = String::from("fn f() {\n");
        for &(kind, a) in &kinds {
            src.push_str(&segment(kind, a));
        }
        src.push_str("}\n");
        let bad_line = src.lines().count() + 1;
        src.push_str("fn bad(x: Option<u8>) { x.unwrap(); }\n");
        let violations = scan_file(&src, &hot_ctx());
        prop_assert_eq!(violations.len(), 1, "in:\n{}", src);
        prop_assert_eq!(violations[0].rule, "no_panics");
        prop_assert_eq!(violations[0].line, bad_line);
    }
}
