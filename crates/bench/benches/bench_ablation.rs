//! Ablations of the design choices DESIGN.md calls out.
//!
//! * DeepCAM escape tolerance: ratio vs. error-tail trade-off (the knob
//!   behind the paper's "≈3 % above 10 % error" operating point);
//! * LZ77 effort levels in the gzip baseline (compression CPU cost);
//! * CosmoFlow decode with and without operator fusion on the *hot*
//!   path (per-voxel op after expansion vs. table-fused).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sciml_bench::{bench_cosmo_sample, bench_deepcam_sample};
use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::{ErrorStats, Op};
use sciml_compress::{deflate_compress, Level};
use sciml_data::serialize;
use sciml_half::slice::widen;

fn escape_tolerance_ablation(c: &mut Criterion) {
    let sample = bench_deepcam_sample();
    // Report the static trade-off once (criterion measures the encode
    // cost per tolerance below).
    println!("\nDeepCAM escape-tolerance ablation:");
    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "tolerance", "ratio", ">10% err frac", "literals"
    );
    for tol in [0.005f32, 0.02, 0.05, 0.2] {
        let cfg = dc::EncoderConfig {
            escape_rel_tol: tol,
            ..dc::EncoderConfig::default()
        };
        let (enc, stats) = dc::encode(&sample, &cfg);
        let out = widen(&dc::decode(&enc, Op::Identity).unwrap());
        let mut err = ErrorStats::new(1.0);
        err.record_slices(&out, &sample.data);
        println!(
            "{tol:>10} {:>10.3} {:>14.5} {:>12}",
            enc.compression_ratio(),
            err.frac_above_10pct(),
            stats.literals
        );
    }

    let mut g = c.benchmark_group("ablation_escape_tolerance");
    g.sample_size(10);
    for tol in [0.005f32, 0.05] {
        let cfg = dc::EncoderConfig {
            escape_rel_tol: tol,
            ..dc::EncoderConfig::default()
        };
        g.bench_with_input(BenchmarkId::from_parameter(tol), &cfg, |b, cfg| {
            b.iter(|| dc::encode(&sample, cfg))
        });
    }
    g.finish();
}

fn lz77_level_ablation(c: &mut Criterion) {
    let payload = serialize::cosmo_to_payload(&bench_cosmo_sample());
    println!("\ngzip effort-level ablation (CosmoFlow payload):");
    for (label, level) in [
        ("fastest", Level::Fastest),
        ("fast", Level::Fast),
        ("default", Level::Default),
        ("best", Level::Best),
    ] {
        let out = deflate_compress(&payload, level);
        println!(
            "  {label:<8} -> {} bytes ({:.2}x)",
            out.len(),
            payload.len() as f64 / out.len() as f64
        );
    }
    let mut g = c.benchmark_group("ablation_lz77_level");
    g.sample_size(10);
    for (label, level) in [("fast", Level::Fast), ("best", Level::Best)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &level, |b, &lv| {
            b.iter(|| deflate_compress(&payload, lv))
        });
    }
    g.finish();
}

fn fusion_ablation(c: &mut Criterion) {
    let sample = bench_cosmo_sample();
    let enc = cf::encode(&sample);
    let mut g = c.benchmark_group("ablation_op_fusion");
    g.sample_size(10);
    // Fused: op on unique values, then gather.
    g.bench_function("fused_log1p", |b| {
        b.iter(|| cf::decode(&enc, Op::Log1p).unwrap())
    });
    // Unfused: expand first, then per-voxel op — the order the paper's
    // reordering optimization eliminates.
    g.bench_function("unfused_log1p", |b| {
        b.iter(|| {
            let raw = cf::decode(&enc, Op::Identity).unwrap();
            raw.iter()
                .map(|h| sciml_half::F16::from_f32(h.to_f32().ln_1p()))
                .collect::<Vec<_>>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    escape_tolerance_ablation,
    lz77_level_ablation,
    fusion_ablation
);
criterion_main!(benches);
