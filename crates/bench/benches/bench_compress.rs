//! Payload-compression shootout: raw vs gzip vs sciml-pack on the two
//! workload streams the shard store actually carries — the CosmoFlow
//! custom payload (f16-dominated) and the DeepCAM differential code
//! stream (skewed byte codes). Emits `BENCH_compress_ratio.json` with
//! each codec's compression ratio and decode throughput, the numbers
//! behind the store's auto-select policy and the README compression
//! table.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sciml_bench::snapshot::write_snapshot;
use sciml_bench::{bench_cosmo_sample, bench_deepcam_sample_smooth};
use sciml_codec::deepcam as dc;
use sciml_compress::{gzip_compress, gzip_decompress, Level};
use sciml_data::serialize;
use sciml_obs::BenchEntry;
use std::time::Instant;

/// Decode GB/s over `iters` passes of `f` producing `raw_len` bytes.
fn decode_gbps(raw_len: usize, iters: u32, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let secs = t0.elapsed().as_secs_f64();
    if secs == 0.0 {
        return f64::INFINITY;
    }
    (raw_len as f64 * iters as f64) / secs / 1e9
}

/// Ratio + decode-throughput entries for one (workload, codec) cell.
fn cell(
    workload: &str,
    codec: &str,
    raw_len: usize,
    stored_len: usize,
    gbps: f64,
) -> Vec<BenchEntry> {
    vec![
        BenchEntry::new(
            format!("{workload}_{codec}_ratio"),
            raw_len as f64 / stored_len as f64,
            "x",
        ),
        BenchEntry::new(format!("{workload}_{codec}_decode_gbps"), gbps, "GB/s"),
    ]
}

fn shootout(workload: &str, data: &[u8], pack_width: u8, entries: &mut Vec<BenchEntry>) {
    let iters = 20u32;

    // raw: the no-op baseline (a copy, like the store's Raw fetch path).
    let raw_gbps = decode_gbps(data.len(), iters, || {
        std::hint::black_box(data.to_vec());
    });
    entries.extend(cell(workload, "raw", data.len(), data.len(), raw_gbps));

    let gz = gzip_compress(data, Level::Default);
    let gz_gbps = decode_gbps(data.len(), iters, || {
        std::hint::black_box(gzip_decompress(std::hint::black_box(&gz)).expect("gzip decode"));
    });
    entries.extend(cell(workload, "gzip", data.len(), gz.len(), gz_gbps));

    let packed = sciml_pack::pack(data, pack_width).expect("pack encode");
    let pk_gbps = decode_gbps(data.len(), iters, || {
        std::hint::black_box(sciml_pack::unpack(std::hint::black_box(&packed)).expect("unpack"));
    });
    entries.extend(cell(workload, "pack", data.len(), packed.len(), pk_gbps));

    println!(
        "{workload}: raw {} B | gzip {} B ({:.2}x, {:.2} GB/s) | pack {} B ({:.2}x, {:.2} GB/s)",
        data.len(),
        gz.len(),
        data.len() as f64 / gz.len() as f64,
        gz_gbps,
        packed.len(),
        data.len() as f64 / packed.len() as f64,
        pk_gbps,
    );
}

fn bench(c: &mut Criterion) {
    // Workload 1: the CosmoFlow custom payload — mostly f16 voxel words.
    let cosmo = serialize::cosmo_to_payload(&bench_cosmo_sample());
    // Workload 2: the DeepCAM differential code stream — the byte codes
    // the per-line delta encoder emits, before any second-stage squeeze.
    let (encoded, _) = dc::encode(
        &bench_deepcam_sample_smooth(),
        &dc::EncoderConfig::default(),
    );
    let deepcam_diff = encoded.payload.clone();

    let mut entries = Vec::new();
    shootout("cosmo", &cosmo, 2, &mut entries);
    shootout("deepcam_diff", &deepcam_diff, 1, &mut entries);

    match write_snapshot("compress_ratio", &entries) {
        Ok(path) => println!("compress snapshot: {}", path.display()),
        Err(e) => eprintln!("compress snapshot not written: {e}"),
    }

    // Criterion timings for the two decode hot paths on the deepcam
    // difference stream (the acceptance-relevant workload).
    let gz = gzip_compress(&deepcam_diff, Level::Default);
    let packed = sciml_pack::pack(&deepcam_diff, 1).expect("pack encode");
    let mut g = c.benchmark_group("compress_decode");
    g.throughput(Throughput::Bytes(deepcam_diff.len() as u64));
    g.sample_size(10);
    g.bench_function("gzip", |b| {
        b.iter(|| gzip_decompress(&gz).expect("gzip decode"))
    });
    g.bench_function("pack", |b| {
        b.iter(|| sciml_pack::unpack(&packed).expect("unpack"))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
