//! CosmoFlow codec benchmarks: encode, fused decode vs per-voxel
//! baseline preprocessing (the §V-B ablation), lossless count decode.
//! These are the microbenchmark ground truth behind Figs. 10–12's host
//! decode costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sciml_bench::bench_cosmo_sample;
use sciml_codec::cosmoflow as cf;
use sciml_codec::Op;

fn bench(c: &mut Criterion) {
    let sample = bench_cosmo_sample();
    let encoded = cf::encode(&sample);
    let raw_bytes = sample.raw_f32_bytes() as u64;

    let mut g = c.benchmark_group("cosmoflow_codec");
    g.throughput(Throughput::Bytes(raw_bytes));
    g.sample_size(10);

    g.bench_function("encode", |b| b.iter(|| cf::encode(&sample)));

    // The paper's comparison: fused table decode vs per-voxel op.
    g.bench_function("decode_fused_log1p", |b| {
        b.iter(|| cf::decode(&encoded, Op::Log1p).unwrap())
    });
    g.bench_function("decode_fused_parallel", |b| {
        b.iter(|| cf::decode_parallel(&encoded, Op::Log1p).unwrap())
    });
    g.bench_function("baseline_per_voxel_log1p", |b| {
        b.iter(|| cf::baseline_preprocess(&sample, Op::Log1p))
    });
    g.bench_function("decode_counts_lossless", |b| {
        b.iter(|| cf::decode_counts(&encoded).unwrap())
    });

    for op in [Op::Identity, Op::Log1p] {
        g.bench_with_input(
            BenchmarkId::new("decode_op", format!("{op:?}")),
            &op,
            |b, &op| b.iter(|| cf::decode(&encoded, op).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
