//! Honest thread-scaling decode bench: each decode kernel × each SIMD
//! tier this host supports × 1..N independent decode threads.
//!
//! "Honest" means thread-level parallelism over whole decodes (one
//! sample per thread, no rayon inside), wall-clock measured from a
//! barrier release to the last thread's finish — so the reported
//! per-thread efficiency includes every real effect (shared LLC,
//! memory bandwidth, SMT) instead of an extrapolated single-core
//! number. Emits `BENCH_decode_scaling.json` with per-thread
//! throughput, scaling efficiency, the single-thread speedup of each
//! vector tier over scalar, and the ISA the dispatcher actually chose.

use sciml_bench::snapshot::write_snapshot;
use sciml_bench::{bench_cosmo_sample, bench_deepcam_sample};
use sciml_codec::{cosmoflow, deepcam, Op};
use sciml_half::slice::{narrow_into, widen_into};
use sciml_half::F16;
use sciml_obs::BenchEntry;
use sciml_simd::{detected_level, force, supported_levels, SimdLevel};
use std::sync::Barrier;
use std::time::Instant;

/// Timed decode repetitions per thread (plus untimed warmup).
const ITERS: u32 = 16;
const WARMUP: u32 = 2;

fn max_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(2)
}

/// Total elements/second across `t` lockstep threads, each running the
/// worker returned by `make` for [`ITERS`] iterations.
fn throughput<W, F>(t: usize, elems_per_iter: usize, make: F) -> f64
where
    W: FnMut() + Send,
    F: Fn() -> W + Sync,
{
    let barrier = Barrier::new(t + 1);
    // Wall clock = the slowest thread's span from barrier release to
    // its own finish (each thread stamps its own clock right after the
    // release, so a descheduled coordinator can't shrink the measured
    // window).
    let mut secs = 0.0f64;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..t)
            .map(|_| {
                s.spawn(|| {
                    let mut work = make();
                    for _ in 0..WARMUP {
                        work();
                    }
                    barrier.wait();
                    let t0 = Instant::now();
                    for _ in 0..ITERS {
                        work();
                    }
                    t0.elapsed()
                })
            })
            .collect();
        barrier.wait();
        for h in handles {
            let d = h.join().expect("bench thread panicked");
            secs = secs.max(d.as_secs_f64());
        }
    });
    (t as f64 * ITERS as f64 * elems_per_iter as f64) / secs
}

/// Sweeps one kernel across tiers × thread counts, appending entries
/// and printing a compact table.
fn sweep<W, F>(name: &str, elems_per_iter: usize, make: F, entries: &mut Vec<BenchEntry>)
where
    W: FnMut() + Send,
    F: Fn() -> W + Sync,
{
    let tiers = supported_levels();
    let threads = max_threads();
    let mut scalar_t1 = 0.0f64;
    for &lvl in &tiers {
        let _guard = force(Some(lvl));
        let mut t1 = 0.0f64;
        for t in 1..=threads {
            let thr = throughput(t, elems_per_iter, &make);
            if t == 1 {
                t1 = thr;
                if lvl == SimdLevel::Scalar {
                    scalar_t1 = thr;
                }
            }
            let eff = thr / (t as f64 * t1);
            entries.push(BenchEntry::new(
                format!("{name}_{}_t{t}_melems_s", lvl.name()),
                thr / 1e6,
                "Melems/s",
            ));
            entries.push(BenchEntry::new(
                format!("{name}_{}_t{t}_efficiency", lvl.name()),
                eff,
                "x",
            ));
            println!(
                "{name:<13} {:<7} t{t}: {:>8.1} Melems/s  (efficiency {:.2})",
                lvl.name(),
                thr / 1e6,
                eff
            );
        }
        if lvl != SimdLevel::Scalar && scalar_t1 > 0.0 {
            let speedup = t1 / scalar_t1;
            entries.push(BenchEntry::new(
                format!("{name}_{}_speedup_vs_scalar", lvl.name()),
                speedup,
                "x",
            ));
            println!(
                "{name:<13} {:<7} single-thread speedup vs scalar: {speedup:.2}x",
                lvl.name()
            );
        }
    }
}

fn main() {
    let chosen = detected_level();
    println!(
        "decode scaling bench — detected tier {}, {} hardware threads, tiers {:?}",
        chosen.name(),
        max_threads(),
        supported_levels()
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
    );
    let mut entries = Vec::new();
    entries.push(BenchEntry::new(
        "chosen_isa_index",
        chosen.index() as f64,
        chosen.name(),
    ));
    entries.push(BenchEntry::new("threads_swept", max_threads() as f64, "n"));

    // CosmoFlow: dense-LUT gather decode (key stream -> 4 channel planes).
    let cosmo = cosmoflow::encode(&bench_cosmo_sample());
    let cosmo_elems = cosmoflow::decode(&cosmo, Op::Identity)
        .expect("cosmo decode")
        .len();
    sweep(
        "cosmo_decode",
        cosmo_elems,
        || {
            let enc = &cosmo;
            let mut out = vec![F16::ZERO; cosmo_elems];
            move || {
                cosmoflow::decode_into(enc, Op::Identity, &mut out).expect("cosmo decode");
                std::hint::black_box(&mut out);
            }
        },
        &mut entries,
    );

    // DeepCAM: per-line differential decode (codes -> prefix sums -> F16).
    let (dcam, _) = deepcam::encode(&bench_deepcam_sample(), &deepcam::EncoderConfig::default());
    let dcam_elems = dcam.n_values();
    sweep(
        "deepcam_decode",
        dcam_elems,
        || {
            let enc = &dcam;
            let mut out = vec![F16::ZERO; dcam_elems];
            move || {
                deepcam::decode_into(enc, Op::Identity, &mut out).expect("deepcam decode");
                std::hint::black_box(&mut out);
            }
        },
        &mut entries,
    );

    // Bulk F32<->F16: one narrow + one widen pass per iteration.
    let half_elems = 1 << 20;
    let src: Vec<f32> = (0..half_elems).map(|i| (i as f32).sin() * 1000.0).collect();
    sweep(
        "half_convert",
        2 * half_elems,
        || {
            let src = &src;
            let mut mid = vec![F16::ZERO; half_elems];
            let mut back = vec![0.0f32; half_elems];
            move || {
                narrow_into(src, &mut mid);
                widen_into(&mid, &mut back);
                std::hint::black_box(&mut back);
            }
        },
        &mut entries,
    );

    let path = write_snapshot("decode_scaling", &entries).expect("write snapshot");
    println!("snapshot written to {}", path.display());
}
