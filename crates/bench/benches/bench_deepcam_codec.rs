//! DeepCAM differential codec benchmarks: encode, sequential vs
//! line-parallel decode, raw-fallback cost. Ground truth behind Figs.
//! 8–9's host decode costs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sciml_bench::bench_deepcam_sample;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;

fn bench(c: &mut Criterion) {
    let sample = bench_deepcam_sample();
    let cfg = dc::EncoderConfig::default();
    let (encoded, _) = dc::encode(&sample, &cfg);
    let raw_bytes = sample.raw_f32_bytes() as u64;

    let mut g = c.benchmark_group("deepcam_codec");
    g.throughput(Throughput::Bytes(raw_bytes));
    g.sample_size(10);

    g.bench_function("encode", |b| b.iter(|| dc::encode(&sample, &cfg)));
    g.bench_function("decode_sequential", |b| {
        b.iter(|| dc::decode(&encoded, Op::Identity).unwrap())
    });
    g.bench_function("decode_line_parallel", |b| {
        b.iter(|| dc::decode_parallel(&encoded, Op::Identity).unwrap())
    });
    g.bench_function("decode_fused_normalize", |b| {
        b.iter(|| {
            dc::decode_parallel(
                &encoded,
                Op::Normalize {
                    scale: 0.05,
                    offset: 270.0,
                },
            )
            .unwrap()
        })
    });
    g.bench_function("wire_roundtrip", |b| {
        b.iter(|| dc::EncodedDeepCam::from_bytes(&encoded.to_bytes()).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
