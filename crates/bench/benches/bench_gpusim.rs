//! SIMT-simulator benchmarks: wall cost of simulating the decode
//! kernels, plus the simulated device times they report (printed once).

use criterion::{criterion_group, criterion_main, Criterion};
use sciml_bench::{bench_cosmo_sample, bench_deepcam_sample};
use sciml_codec::{cosmoflow as cf, deepcam as dc, Op};
use sciml_gpusim::{decode_cosmo, decode_deepcam, Gpu, GpuSpec};

fn bench(c: &mut Criterion) {
    let cosmo = cf::encode(&bench_cosmo_sample());
    let (cam, _) = dc::encode(&bench_deepcam_sample(), &dc::EncoderConfig::default());

    for spec in [GpuSpec::V100, GpuSpec::A100] {
        let gpu = Gpu::new(spec);
        let (_, _, t_cosmo) = decode_cosmo(&gpu, &cosmo, Op::Log1p).unwrap();
        let (_, _, t_cam) = decode_deepcam(&gpu, &cam, Op::Identity).unwrap();
        println!(
            "simulated {} decode: cosmoflow {:.1}us, deepcam {:.1}us",
            spec.name,
            t_cosmo * 1e6,
            t_cam * 1e6
        );
    }

    let gpu = Gpu::new(GpuSpec::V100);
    let mut g = c.benchmark_group("gpusim");
    g.sample_size(10);
    g.bench_function("simulate_cosmo_decode", |b| {
        b.iter(|| decode_cosmo(&gpu, &cosmo, Op::Log1p).unwrap())
    });
    g.bench_function("simulate_deepcam_decode", |b| {
        b.iter(|| decode_deepcam(&gpu, &cam, Op::Identity).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
