//! gzip baseline benchmarks: the CPU cost of the general-purpose path
//! the paper compares against ("decompression can only be performed on
//! the host CPU"). Ground truth behind the gzip bars of Figs. 10–12.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sciml_bench::bench_cosmo_sample;
use sciml_compress::{gzip_compress, gzip_decompress, Level};
use sciml_data::serialize;

fn bench(c: &mut Criterion) {
    let sample = bench_cosmo_sample();
    let payload = serialize::cosmo_to_payload(&sample);
    let gz = gzip_compress(&payload, Level::Default);

    let mut g = c.benchmark_group("gzip_baseline");
    g.throughput(Throughput::Bytes(payload.len() as u64));
    g.sample_size(10);

    g.bench_function("compress_default", |b| {
        b.iter(|| gzip_compress(&payload, Level::Default))
    });
    g.bench_function("compress_fast", |b| {
        b.iter(|| gzip_compress(&payload, Level::Fast))
    });
    g.bench_function("decompress", |b| b.iter(|| gzip_decompress(&gz).unwrap()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
