//! minidnn benchmarks: layer forward/backward and one optimizer step of
//! each miniature model (the compute behind the Fig. 6/7 runs).

use criterion::{criterion_group, criterion_main, Criterion};
use sciml_minidnn::layers::{Conv2d, Conv3d, Layer};
use sciml_minidnn::loss::mse;
use sciml_minidnn::models::cosmoflow_mini;
use sciml_minidnn::optim::{Optimizer, Sgd};
use sciml_minidnn::Tensor;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("minidnn");
    g.sample_size(10);

    let mut rng = Tensor::rng(1);
    let x2 = Tensor::kaiming(&[2, 4, 48, 64], 16, &mut rng);
    let mut conv2 = Conv2d::new(4, 8, 3, &mut rng);
    g.bench_function("conv2d_forward", |b| b.iter(|| conv2.forward(&x2)));

    let x3 = Tensor::kaiming(&[1, 4, 16, 16, 16], 16, &mut rng);
    let mut conv3 = Conv3d::new(4, 8, 3, &mut rng);
    g.bench_function("conv3d_forward", |b| b.iter(|| conv3.forward(&x3)));

    let mut net = cosmoflow_mini(16, 0);
    let batch = Tensor::kaiming(&[2, 4, 16, 16, 16], 16, &mut rng);
    let target = Tensor::zeros(&[2, 4]);
    let mut opt = Sgd::new(1e-3, 0.9);
    g.bench_function("cosmoflow_mini_train_step", |b| {
        b.iter(|| {
            let pred = net.forward(&batch);
            let (_, grad) = mse(&pred, &target);
            net.backward(&grad);
            opt.step(&mut net);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
