//! Telemetry-plane overhead benchmark: the identical pipeline workload
//! with the full observability plane on — enabled tracer emitting
//! fetch/decode/batch spans, queue-depth gauges, and a background
//! [`PipelineSampler`] snapshotting the registry — versus off (disabled
//! tracer, no sampler). Both variants still register metrics (counters
//! are always on); what's measured is the marginal cost of spans plus
//! the sampler thread. The acceptance bar is <2% throughput loss.
//!
//! Alongside the overhead snapshot, the instrumented run's final
//! attribution report lands as `results/BENCH_obs_attribution.json` —
//! the committed example of what `sciml fetch --attribution-out`
//! produces on a decode-heavy workload.

use criterion::{criterion_group, criterion_main, Criterion};
use sciml_bench::snapshot::{bench_out_dir, write_snapshot};
use sciml_codec::Op;
use sciml_core::api::{DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::CosmoFlowConfig;
use sciml_obs::{
    pipeline_stages, AttributionReport, BenchEntry, PipelineSampler, SamplerConfig, Telemetry,
};
use sciml_pipeline::decoder::CosmoPluginCpu;
use sciml_pipeline::source::VecSource;
use sciml_pipeline::{DecoderPlugin, Pipeline, PipelineConfig};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig {
        batch_size: 4,
        reader_threads: 1,
        decode_threads: 3,
        prefetch: 4,
        epochs: 8,
        seed: 3,
        drop_remainder: false,
        ..PipelineConfig::default()
    }
}

struct RunStats {
    samples_per_s: f64,
    report: Option<AttributionReport>,
}

/// One full pipeline drain. When `instrumented`, the tracer records
/// every stage span and a sampler thread snapshots the registry every
/// 50 ms for the whole run — the worst realistic observer cadence.
/// The sampler is spawned before launch so its baseline predates all
/// pipeline work, and its thread runs inside the timed region: its
/// cost is part of what this bench exists to measure.
fn run_pipeline(blobs: &[Vec<u8>], instrumented: bool) -> RunStats {
    let cfg = pipeline_cfg();
    let tel = if instrumented {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let sampler = instrumented.then(|| {
        PipelineSampler::spawn(
            Arc::clone(&tel.registry),
            Arc::clone(&tel.tracer),
            SamplerConfig {
                interval: Duration::from_millis(50),
                stages: pipeline_stages(cfg.reader_threads as u64, cfg.decode_threads as u64),
                live: false,
            },
        )
    });
    let plugin: Arc<dyn DecoderPlugin> = Arc::new(CosmoPluginCpu { op: Op::Log1p });
    let t0 = Instant::now();
    let mut p = Pipeline::launch_with(
        Arc::new(VecSource::new(blobs.to_vec())),
        plugin,
        cfg,
        tel.clone(),
    )
    .expect("launch");
    let mut samples = 0u64;
    while let Some(b) = p.next_batch().expect("batch") {
        samples += b.len() as u64;
    }
    let secs = t0.elapsed().as_secs_f64();
    RunStats {
        samples_per_s: samples as f64 / secs,
        report: sampler.map(PipelineSampler::stop),
    }
}

fn bench(c: &mut Criterion) {
    // Paper-scale samples (64³×4 voxels → 2 MiB FP16 tensors), so the
    // per-sample span cost is amortized over realistic decode work
    // rather than measured against trivially small samples.
    let mut cosmo_cfg = CosmoFlowConfig::test_small();
    cosmo_cfg.grid = 64;
    let blobs = DatasetBuilder::cosmoflow(cosmo_cfg).build(16, EncodedFormat::Custom);

    // Interleave a throwaway warmup of each variant, then best of three
    // alternating measured runs per variant — scheduler noise only ever
    // slows a run down.
    run_pipeline(&blobs, true);
    run_pipeline(&blobs, false);
    let (mut on, mut off) = (run_pipeline(&blobs, true), run_pipeline(&blobs, false));
    for _ in 0..2 {
        let i = run_pipeline(&blobs, true);
        if i.samples_per_s > on.samples_per_s {
            on = i;
        }
        let u = run_pipeline(&blobs, false);
        if u.samples_per_s > off.samples_per_s {
            off = u;
        }
    }

    let overhead_pct = (off.samples_per_s - on.samples_per_s) / off.samples_per_s * 100.0;
    let report = on.report.as_ref().expect("instrumented run has a report");
    let entries = vec![
        BenchEntry::new("obs_on_samples_per_s", on.samples_per_s, "samples/s"),
        BenchEntry::new("obs_off_samples_per_s", off.samples_per_s, "samples/s"),
        BenchEntry::new("obs_overhead_pct", overhead_pct, "%"),
        BenchEntry::new("obs_dropped_spans", report.dropped_spans as f64, "spans"),
        BenchEntry::new("obs_attribution_confidence", report.confidence, "ratio"),
    ];
    println!(
        "telemetry on {:.0} samples/s, off {:.0} samples/s, overhead {:.2}% \
         (bottleneck: {} at {:.2} confidence)",
        on.samples_per_s, off.samples_per_s, overhead_pct, report.bottleneck, report.confidence
    );
    match write_snapshot("obs_overhead", &entries) {
        Ok(path) => println!("overhead snapshot: {}", path.display()),
        Err(e) => eprintln!("overhead snapshot not written: {e}"),
    }
    let attribution = bench_out_dir().join("BENCH_obs_attribution.json");
    match std::fs::write(&attribution, report.to_json()) {
        Ok(()) => println!("attribution report: {}", attribution.display()),
        Err(e) => eprintln!("attribution report not written: {e}"),
    }

    // Criterion pair for local A/B runs.
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    g.bench_function("telemetry_on", |b| b.iter(|| run_pipeline(&blobs, true)));
    g.bench_function("telemetry_off", |b| b.iter(|| run_pipeline(&blobs, false)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
