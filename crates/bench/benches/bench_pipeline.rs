//! End-to-end loader benchmarks: the four pipeline variants measured for
//! real on this host (a miniature, measured analogue of Figs. 10–11).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sciml_codec::Op;
use sciml_core::api::{build_pipeline, DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::CosmoFlowConfig;
use sciml_gpusim::GpuSpec;
use sciml_pipeline::PipelineConfig;

fn bench(c: &mut Criterion) {
    let mut gen_cfg = CosmoFlowConfig::test_small();
    gen_cfg.grid = 24;
    let builder = DatasetBuilder::cosmoflow(gen_cfg);
    let n = 16usize;

    let datasets = [
        ("base", EncodedFormat::Base, None),
        ("gzip", EncodedFormat::Gzip, None),
        ("cpu-plugin", EncodedFormat::Custom, None),
        ("gpu-plugin", EncodedFormat::Custom, Some(GpuSpec::V100)),
    ];

    let mut g = c.benchmark_group("pipeline_epoch");
    g.sample_size(10);
    let sample_values = 24u64 * 24 * 24 * 4;
    g.throughput(Throughput::Elements(sample_values * n as u64));
    for (label, format, gpu) in datasets {
        let blobs = builder.build(n, format);
        g.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, _| {
            b.iter(|| {
                let pipeline = build_pipeline(
                    blobs.clone(),
                    builder.plugin(format, gpu, Op::Log1p),
                    PipelineConfig {
                        batch_size: 4,
                        epochs: 1,
                        ..Default::default()
                    },
                )
                .unwrap();
                let (batches, _) = pipeline.collect_all().unwrap();
                assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), n);
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
