//! Zero-copy pipeline benchmarks: pooled in-place decode versus the
//! per-sample-alloc baseline, for both workloads, measured in the same
//! process over the same dataset. The baseline wraps the real plugin so
//! only `decode` is visible — the pipeline then takes its default
//! decode-then-copy fallback with pooling disabled, which is exactly
//! what every sample paid before `decode_into` existed: one zeroed
//! tensor allocation, one decode, one memcpy into the batch. The
//! pooled path decodes straight into a recycled batch tensor.
//!
//! A second microbench isolates the cosmo chunk-table strategy change:
//! the dense value-range memo (a flat array indexed by `count - lo`)
//! plus the hoisted bounds-check-free gather, versus the per-chunk
//! `HashMap<u16, F16>` memo it replaced.

use criterion::{criterion_group, criterion_main, Criterion};
use sciml_bench::snapshot::write_snapshot;
use sciml_codec::cosmoflow as cf;
use sciml_codec::Op;
use sciml_core::api::{DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::{CosmoFlowConfig, N_REDSHIFTS};
use sciml_data::deepcam::DeepCamConfig;
use sciml_half::F16;
use sciml_obs::BenchEntry;
use sciml_pipeline::decoder::{CosmoPluginCpu, DecodedSample, DeepCamPluginCpu};
use sciml_pipeline::source::VecSource;
use sciml_pipeline::{DecoderPlugin, Pipeline, PipelineConfig};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Hides everything but the allocating `decode`, so the pipeline falls
/// back to the default decode-then-copy path: the per-sample-alloc
/// baseline.
struct AllocOnly<P>(P);

impl<P: DecoderPlugin> DecoderPlugin for AllocOnly<P> {
    fn name(&self) -> &'static str {
        "alloc-only-baseline"
    }

    fn decode(&self, bytes: &[u8]) -> sciml_pipeline::Result<DecodedSample> {
        self.0.decode(bytes)
    }
}

struct RunStats {
    samples_per_s: f64,
    /// Pool misses incurred after the pool was pre-warmed to capacity
    /// (steady state should be fully recycled: 0).
    steady_misses: u64,
    hit_rate: f64,
}

fn run_pipeline(blobs: &[Vec<u8>], plugin: Arc<dyn DecoderPlugin>, pooled: bool) -> RunStats {
    let mut p = Pipeline::launch(
        Arc::new(VecSource::new(blobs.to_vec())),
        plugin,
        // Several decode workers: per-sample allocation hurts most
        // under concurrency (allocator churn and page-fault
        // serialization across workers), which is precisely what
        // pooling removes.
        PipelineConfig {
            batch_size: 4,
            reader_threads: 1,
            decode_threads: 3,
            prefetch: 4,
            epochs: 12,
            seed: 3,
            drop_remainder: false,
            // Explicit headroom beyond peak in-flight demand, so the
            // steady state is structurally miss-free; 0 disables
            // pooling entirely (the baseline).
            pool_capacity: if pooled { Some(32) } else { Some(0) },
        },
    )
    .expect("launch");
    let pool = p.pool();
    if pooled {
        // Pre-warm both free lists to capacity so the measured run
        // starts from the steady state a long-lived training loop sits
        // in: population at peak in-flight demand, every checkout a
        // hit. (Tensors check out empty here; their first real use
        // grows them to batch size once, like any warmup.)
        let tensors: Vec<_> = (0..pool.capacity())
            .map(|_| pool.checkout_tensor(0))
            .collect();
        let bytes: Vec<_> = (0..pool.capacity())
            .map(|_| pool.checkout_bytes())
            .collect();
        drop(tensors);
        drop(bytes);
    }
    let warm_misses = pool.misses();
    let t0 = Instant::now();
    let mut samples = 0u64;
    while let Some(b) = p.next_batch().expect("batch") {
        samples += b.len() as u64;
        // Batch dropped here: its tensor recycles, as in a training loop.
    }
    let secs = t0.elapsed().as_secs_f64();
    let steady_misses = pool.misses() - warm_misses;
    let checkouts = pool.hits() + steady_misses;
    RunStats {
        samples_per_s: samples as f64 / secs,
        steady_misses,
        hit_rate: if checkouts > 0 {
            pool.hits() as f64 / checkouts as f64
        } else {
            0.0
        },
    }
}

/// The chunk-decode strategy this PR replaced: memoize the fused op per
/// count value in a per-chunk `HashMap<u16, F16>` while building the
/// row LUT. Kept here (and only here) as the comparison baseline.
fn decode_hashmap(enc: &cf::EncodedCosmo, op: Op) -> Vec<F16> {
    let voxels = enc.voxels();
    let mut out = vec![F16::ZERO; voxels * N_REDSHIFTS];
    let mut start = 0usize;
    for chunk in &enc.chunks {
        let mut memo: HashMap<u16, F16> = HashMap::new();
        let lut: Vec<[F16; N_REDSHIFTS]> = chunk
            .table
            .iter()
            .map(|g| {
                let mut row = [F16::ZERO; N_REDSHIFTS];
                for (z, &count) in g.iter().enumerate() {
                    row[z] = *memo
                        .entry(count)
                        .or_insert_with(|| F16::from_f32(op.apply(count as f32)));
                }
                row
            })
            .collect();
        let n = chunk.n_voxels as usize;
        for v in 0..n {
            let row = lut[chunk.key(v)];
            for (z, val) in row.iter().enumerate() {
                out[z * voxels + start + v] = *val;
            }
        }
        start += n;
    }
    out
}

fn bench(c: &mut Criterion) {
    // Paper-scale samples (64³×4 voxels → 2 MiB FP16 tensors): big
    // enough that per-sample allocation is a real zero-fill + memcpy
    // per sample rather than allocator free-list noise, as it would be
    // in training.
    let mut cosmo_cfg = CosmoFlowConfig::test_small();
    cosmo_cfg.grid = 64;
    let cosmo = DatasetBuilder::cosmoflow(cosmo_cfg).build(16, EncodedFormat::Custom);
    let deepcam =
        DatasetBuilder::deepcam(DeepCamConfig::test_small()).build(48, EncodedFormat::Custom);

    let mut entries: Vec<BenchEntry> = Vec::new();
    for (name, blobs, plugin, alloc_plugin) in [
        (
            "cosmo_plugin_cpu",
            &cosmo,
            Arc::new(CosmoPluginCpu { op: Op::Log1p }) as Arc<dyn DecoderPlugin>,
            Arc::new(AllocOnly(CosmoPluginCpu { op: Op::Log1p })) as Arc<dyn DecoderPlugin>,
        ),
        (
            "deepcam_plugin_cpu",
            &deepcam,
            Arc::new(DeepCamPluginCpu { op: Op::Identity }) as Arc<dyn DecoderPlugin>,
            Arc::new(AllocOnly(DeepCamPluginCpu { op: Op::Identity })) as Arc<dyn DecoderPlugin>,
        ),
    ] {
        // Interleave a throwaway warmup of each variant so neither
        // benefits from allocator / page-cache priming order, then take
        // the best of three alternating measured runs per variant —
        // scheduler noise only ever slows a run down.
        run_pipeline(blobs, Arc::clone(&plugin), true);
        run_pipeline(blobs, Arc::clone(&alloc_plugin), false);
        let (mut pooled, mut alloc) = (
            run_pipeline(blobs, Arc::clone(&plugin), true),
            run_pipeline(blobs, Arc::clone(&alloc_plugin), false),
        );
        for _ in 0..2 {
            let p = run_pipeline(blobs, Arc::clone(&plugin), true);
            if p.samples_per_s > pooled.samples_per_s {
                pooled = p;
            }
            let a = run_pipeline(blobs, Arc::clone(&alloc_plugin), false);
            if a.samples_per_s > alloc.samples_per_s {
                alloc = a;
            }
        }
        entries.push(BenchEntry::new(
            format!("{name}_pooled_samples_per_s"),
            pooled.samples_per_s,
            "samples/s",
        ));
        entries.push(BenchEntry::new(
            format!("{name}_alloc_samples_per_s"),
            alloc.samples_per_s,
            "samples/s",
        ));
        entries.push(BenchEntry::new(
            format!("{name}_pooled_speedup"),
            pooled.samples_per_s / alloc.samples_per_s,
            "x",
        ));
        entries.push(BenchEntry::new(
            format!("{name}_pool_steady_misses"),
            pooled.steady_misses as f64,
            "count",
        ));
        entries.push(BenchEntry::new(
            format!("{name}_pool_hit_rate"),
            pooled.hit_rate,
            "ratio",
        ));
    }

    // Flat sorted-key LUT vs HashMap memo, on one representative sample.
    let enc = cf::EncodedCosmo::from_bytes(&cosmo[0]).expect("parse");
    let want = cf::decode(&enc, Op::Log1p).expect("decode");
    assert_eq!(decode_hashmap(&enc, Op::Log1p), want, "baselines diverged");
    // Interleave the two variants so drift (frequency scaling, cache
    // state) hits both equally.
    let mut out = vec![F16::ZERO; want.len()];
    let iters = 100u32;
    let (mut flat_total, mut hashmap_total) = (0u128, 0u128);
    for _ in 0..iters {
        let t0 = Instant::now();
        cf::decode_into(std::hint::black_box(&enc), Op::Log1p, &mut out).expect("decode");
        flat_total += t0.elapsed().as_nanos();
        let t0 = Instant::now();
        std::hint::black_box(decode_hashmap(std::hint::black_box(&enc), Op::Log1p));
        hashmap_total += t0.elapsed().as_nanos();
    }
    let flat_ns = flat_total as f64 / iters as f64;
    let hashmap_ns = hashmap_total as f64 / iters as f64;
    entries.push(BenchEntry::new("lut_flat_ns", flat_ns, "ns"));
    entries.push(BenchEntry::new("lut_hashmap_ns", hashmap_ns, "ns"));
    entries.push(BenchEntry::new(
        "lut_flat_speedup",
        hashmap_ns / flat_ns,
        "x",
    ));

    match write_snapshot("pipeline_zero_copy", &entries) {
        Ok(path) => println!("zero-copy snapshot: {}", path.display()),
        Err(e) => eprintln!("zero-copy snapshot not written: {e}"),
    }

    // Criterion group over the cosmo pair, for local A/B runs.
    let mut g = c.benchmark_group("pipeline_alloc");
    g.sample_size(10);
    g.bench_function("cosmo_pooled", |b| {
        b.iter(|| run_pipeline(&cosmo, Arc::new(CosmoPluginCpu { op: Op::Log1p }), true))
    });
    g.bench_function("cosmo_per_sample_alloc", |b| {
        b.iter(|| {
            run_pipeline(
                &cosmo,
                Arc::new(AllocOnly(CosmoPluginCpu { op: Op::Log1p })),
                false,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
