//! Loopback serving benchmarks: what the disaggregated tier costs on
//! localhost TCP, with and without the server-side DRAM hot cache, at
//! different fetch batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sciml_bench::snapshot::{histogram_entries, write_snapshot};
use sciml_core::api::{DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::CosmoFlowConfig;
use sciml_obs::MetricsRegistry;
use sciml_pipeline::source::VecSource;
use sciml_pipeline::SampleSource;
use sciml_serve::{RemoteSource, ServeBuilder, ServerConfig};
use std::sync::Arc;

fn bench(c: &mut Criterion) {
    let mut gen_cfg = CosmoFlowConfig::test_small();
    gen_cfg.grid = 24;
    let n = 16usize;
    let blobs = DatasetBuilder::cosmoflow(gen_cfg).build(n, EncodedFormat::Custom);
    let sample_bytes: u64 = blobs.iter().map(|b| b.len() as u64).sum();

    let registry = MetricsRegistry::new();
    let server = ServeBuilder::new()
        .config(ServerConfig {
            cache_bytes: 1 << 30,
            ..ServerConfig::default()
        })
        .registry(Arc::clone(&registry))
        .dataset(
            "bench",
            Arc::new(VecSource::new(blobs.clone())) as Arc<dyn SampleSource>,
        )
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let remote = RemoteSource::connect(server.local_addr().to_string(), "bench").expect("connect");
    // Prime the hot cache so steady-state epochs measure the cached path.
    remote
        .fetch_batch(&(0..n as u64).collect::<Vec<_>>())
        .expect("prime");

    let mut g = c.benchmark_group("serve_loopback");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(sample_bytes));
    for batch in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("epoch_batched", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut got = 0usize;
                    for chunk in (0..n as u64).collect::<Vec<_>>().chunks(batch) {
                        got += remote.fetch_batch(chunk).expect("fetch").len();
                    }
                    assert_eq!(got, n);
                })
            },
        );
    }
    g.finish();

    // Local baseline for the same access pattern, to read the network
    // tier's overhead directly off the two numbers.
    let local = VecSource::new(blobs);
    let mut g = c.benchmark_group("serve_local_baseline");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(sample_bytes));
    g.bench_function("epoch", |b| {
        b.iter(|| {
            for i in 0..n {
                local.fetch(i).expect("fetch");
            }
        })
    });
    g.finish();

    drop(remote);
    server.shutdown();

    // Server-side latency distribution across everything the bench sent
    // — the tail numbers the cumulative-mean counters used to hide.
    if let Some(latency) = registry.snapshot().histogram("serve.request_ns") {
        match write_snapshot(
            "serve_loopback_latency",
            &histogram_entries("request", latency),
        ) {
            Ok(path) => println!("latency snapshot: {}", path.display()),
            Err(e) => eprintln!("latency snapshot not written: {e}"),
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
