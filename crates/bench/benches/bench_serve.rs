//! Loopback serving benchmarks: what the disaggregated tier costs on
//! localhost TCP, with and without the server-side DRAM hot cache, at
//! different fetch batch sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use sciml_bench::snapshot::{histogram_entries, write_snapshot};
use sciml_core::api::{DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::CosmoFlowConfig;
use sciml_obs::{BenchEntry, MetricsRegistry};
use sciml_pipeline::source::VecSource;
use sciml_pipeline::SampleSource;
use sciml_serve::protocol::{self, Message};
use sciml_serve::{RemoteSource, ServeBuilder, ServerConfig};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

fn bench(c: &mut Criterion) {
    let mut gen_cfg = CosmoFlowConfig::test_small();
    gen_cfg.grid = 24;
    let n = 16usize;
    let blobs = DatasetBuilder::cosmoflow(gen_cfg).build(n, EncodedFormat::Custom);
    let sample_bytes: u64 = blobs.iter().map(|b| b.len() as u64).sum();

    let registry = MetricsRegistry::new();
    let server = ServeBuilder::new()
        .config(ServerConfig {
            cache_bytes: 1 << 30,
            ..ServerConfig::default()
        })
        .registry(Arc::clone(&registry))
        .dataset(
            "bench",
            Arc::new(VecSource::new(blobs.clone())) as Arc<dyn SampleSource>,
        )
        .bind("127.0.0.1:0")
        .expect("bind loopback");
    let remote = RemoteSource::connect(server.local_addr().to_string(), "bench").expect("connect");
    // Prime the hot cache so steady-state epochs measure the cached path.
    remote
        .fetch_batch(&(0..n as u64).collect::<Vec<_>>())
        .expect("prime");

    let mut g = c.benchmark_group("serve_loopback");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(sample_bytes));
    for batch in [1usize, 4, 16] {
        g.bench_with_input(
            BenchmarkId::new("epoch_batched", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    let mut got = 0usize;
                    for chunk in (0..n as u64).collect::<Vec<_>>().chunks(batch) {
                        got += remote.fetch_batch(chunk).expect("fetch").len();
                    }
                    assert_eq!(got, n);
                })
            },
        );
    }
    g.finish();

    // Local baseline for the same access pattern, to read the network
    // tier's overhead directly off the two numbers.
    let local = VecSource::new(blobs);
    let mut g = c.benchmark_group("serve_local_baseline");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(sample_bytes));
    g.bench_function("epoch", |b| {
        b.iter(|| {
            for i in 0..n {
                local.fetch(i).expect("fetch");
            }
        })
    });
    g.finish();

    drop(remote);
    server.shutdown();

    // Server-side latency distribution across everything the bench sent
    // — the tail numbers the cumulative-mean counters used to hide.
    if let Some(latency) = registry.snapshot().histogram("serve.request_ns") {
        match write_snapshot(
            "serve_loopback_latency",
            &histogram_entries("request", latency),
        ) {
            Ok(path) => println!("latency snapshot: {}", path.display()),
            Err(e) => eprintln!("latency snapshot not written: {e}"),
        }
    }

    engine_ab_at_high_concurrency();
}

/// Client-observed fetch latencies with `conns` connections held open
/// simultaneously (a barrier gates the fetch phase on every socket
/// being negotiated), `fetches` single-sample requests per connection.
fn concurrent_fetch_latency(addr: SocketAddr, conns: usize, fetches: usize, n: u64) -> Vec<u64> {
    let barrier = Arc::new(Barrier::new(conns));
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Vec<u64> {
                let mut stream = TcpStream::connect(addr).expect("connect");
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("read timeout");
                protocol::write_message(
                    &mut stream,
                    &Message::Hello {
                        version: protocol::PROTOCOL_VERSION,
                    },
                )
                .expect("hello");
                match protocol::read_message(&mut stream).expect("hello ack") {
                    Message::HelloAck { .. } => {}
                    other => panic!("unexpected hello reply: {other:?}"),
                }
                barrier.wait();
                let mut lat = Vec::with_capacity(fetches);
                for k in 0..fetches {
                    let idx = (c as u64 + k as u64) % n;
                    let t = Instant::now();
                    protocol::write_message(
                        &mut stream,
                        &Message::FetchSamples {
                            name: "bench".into(),
                            indices: vec![idx],
                        },
                    )
                    .expect("fetch");
                    match protocol::read_message(&mut stream).expect("fetch reply") {
                        Message::Samples(p) => assert_eq!(p.len(), 1),
                        other => panic!("unexpected fetch reply: {other:?}"),
                    }
                    lat.push(t.elapsed().as_nanos() as u64);
                }
                lat
            })
        })
        .collect();
    let mut all = Vec::with_capacity(conns * fetches);
    for w in workers {
        all.extend(w.join().expect("soak client"));
    }
    all.sort_unstable();
    all
}

fn pct(sorted: &[u64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let i = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[i.min(sorted.len() - 1)] as f64
}

/// Reactor vs thread-per-connection A/B at 1024 concurrent loopback
/// connections. The legacy engine gets one worker thread per
/// connection (its concurrency model demands it — that thread count
/// *is* the cost being measured against the reactor's fixed pool);
/// client-observed and server-side tails for both engines land in
/// `BENCH_serve_reactor.json`.
fn engine_ab_at_high_concurrency() {
    let conns = 1024usize;
    let fetches = 4usize;
    let mut gen_cfg = CosmoFlowConfig::test_small();
    gen_cfg.grid = 24;
    let n = 16usize;
    let blobs = DatasetBuilder::cosmoflow(gen_cfg).build(n, EncodedFormat::Custom);

    let mut entries = vec![BenchEntry::new("connections", conns as f64, "conns")];
    for (label, legacy) in [("reactor", false), ("legacy_threads", true)] {
        let registry = MetricsRegistry::new();
        let server = ServeBuilder::new()
            .config(ServerConfig {
                // The legacy engine parks one thread per held-open
                // connection; the reactor serves them all from its
                // default worker pool.
                workers: if legacy {
                    conns
                } else {
                    ServerConfig::default().workers
                },
                max_connections: conns + 64,
                cache_bytes: 1 << 30,
                read_timeout: Duration::from_secs(120),
                legacy_threads: legacy,
                ..ServerConfig::default()
            })
            .registry(Arc::clone(&registry))
            .dataset(
                "bench",
                Arc::new(VecSource::new(blobs.clone())) as Arc<dyn SampleSource>,
            )
            .bind("127.0.0.1:0")
            .expect("bind loopback");
        let t0 = Instant::now();
        let lat = concurrent_fetch_latency(server.local_addr(), conns, fetches, n as u64);
        let elapsed = t0.elapsed();
        server.shutdown();
        assert_eq!(lat.len(), conns * fetches);
        println!(
            "{label}: {conns} conns x {fetches} fetches in {:.2} s — client p50 {:.0} ns / p99 {:.0} ns",
            elapsed.as_secs_f64(),
            pct(&lat, 0.50),
            pct(&lat, 0.99),
        );
        entries.push(BenchEntry::new(
            format!("{label}_p50_ns"),
            pct(&lat, 0.50),
            "ns",
        ));
        entries.push(BenchEntry::new(
            format!("{label}_p95_ns"),
            pct(&lat, 0.95),
            "ns",
        ));
        entries.push(BenchEntry::new(
            format!("{label}_p99_ns"),
            pct(&lat, 0.99),
            "ns",
        ));
        entries.push(BenchEntry::new(
            format!("{label}_wall_ns"),
            elapsed.as_nanos() as f64,
            "ns",
        ));
        if let Some(h) = registry.snapshot().histogram("serve.request_ns") {
            entries.push(BenchEntry::new(
                format!("{label}_server_request_p99_ns"),
                h.percentile(0.99) as f64,
                "ns",
            ));
        }
    }
    match write_snapshot("serve_reactor", &entries) {
        Ok(path) => println!("engine A/B snapshot: {}", path.display()),
        Err(e) => eprintln!("engine A/B snapshot not written: {e}"),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
