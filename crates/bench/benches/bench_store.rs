//! Packed-store benchmarks: per-sample fetch latency of the per-file
//! `DirSource` layout versus the packed `.sshard` layout, over the same
//! dataset on the same disk. The packed layout pays one `open` per
//! shard instead of one per sample — the metadata cost the paper's
//! staging experiments set out to avoid — but unlike the raw per-file
//! read it also CRC-checks every sample it serves. On a warm page
//! cache (the only thing a local microbench can measure) that
//! integrity check dominates, so the snapshot records the standalone
//! CRC cost per sample alongside both fetch distributions to keep the
//! layout and integrity components separable.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use sciml_bench::snapshot::{histogram_entries, write_snapshot};
use sciml_core::api::{DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::CosmoFlowConfig;
use sciml_obs::{BenchEntry, Histogram};
use sciml_pipeline::source::DirSource;
use sciml_pipeline::SampleSource;
use sciml_store::{pack_store, PackConfig, ShardSource};
use std::time::Instant;

fn bench(c: &mut Criterion) {
    let mut gen_cfg = CosmoFlowConfig::test_small();
    gen_cfg.grid = 24;
    let n = 32usize;
    let blobs = DatasetBuilder::cosmoflow(gen_cfg).build(n, EncodedFormat::Custom);
    let sample_bytes: u64 = blobs.iter().map(|b| b.len() as u64).sum();

    let root = std::env::temp_dir().join(format!("sciml_bench_store_{}", std::process::id()));
    let dir_path = root.join("per_file");
    let store_path = root.join("packed");
    std::fs::create_dir_all(&dir_path).expect("create bench dirs");
    for (i, b) in blobs.iter().enumerate() {
        std::fs::write(dir_path.join(format!("sample_{i:06}.bin")), b).expect("write sample");
    }
    let dir = DirSource::open(&dir_path, n);
    pack_store(
        &dir,
        &store_path,
        PackConfig {
            // Several shards even for this small set, so the bench
            // exercises the manifest lookup too.
            target_shard_bytes: sample_bytes / 4,
            ..PackConfig::default()
        },
    )
    .expect("pack store");
    let packed = ShardSource::open(&store_path).expect("open store");

    let mut g = c.benchmark_group("store_fetch");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(sample_bytes));
    g.bench_function("dir_epoch", |b| {
        b.iter(|| {
            for i in 0..n {
                dir.fetch(i).expect("dir fetch");
            }
        })
    });
    g.bench_function("packed_epoch", |b| {
        b.iter(|| {
            for i in 0..n {
                packed.fetch(i).expect("packed fetch");
            }
        })
    });
    g.finish();

    // Per-fetch latency distributions for the snapshot: a fresh source
    // per pass so the packed path's first-touch shard opens are in the
    // numbers (the "cold fetch" the issue asks to compare).
    let dir_hist = Histogram::new();
    let packed_hist = Histogram::new();
    for _ in 0..5 {
        let dir = DirSource::open(&dir_path, n);
        let packed = ShardSource::open(&store_path).expect("open store");
        for i in 0..n {
            let t0 = Instant::now();
            dir.fetch(i).expect("dir fetch");
            dir_hist.record(t0.elapsed().as_nanos() as u64);
            let t0 = Instant::now();
            packed.fetch(i).expect("packed fetch");
            packed_hist.record(t0.elapsed().as_nanos() as u64);
        }
    }
    let (d, p) = (dir_hist.snapshot(), packed_hist.snapshot());
    let mut entries = histogram_entries("dir_fetch", &d);
    entries.extend(histogram_entries("packed_fetch", &p));
    if p.mean() > 0.0 {
        entries.push(BenchEntry::new(
            "dir_over_packed_mean",
            d.mean() / p.mean(),
            "x",
        ));
    }
    // The integrity component of the packed path, on its own: CRC-32
    // over one representative sample.
    let t0 = Instant::now();
    let crc_iters = 200u32;
    for _ in 0..crc_iters {
        std::hint::black_box(sciml_compress::crc32::crc32(std::hint::black_box(
            &blobs[0],
        )));
    }
    entries.push(BenchEntry::new(
        "crc32_per_sample_ns",
        t0.elapsed().as_nanos() as f64 / crc_iters as f64,
        "ns",
    ));
    match write_snapshot("store_pack_vs_dir", &entries) {
        Ok(path) => println!("store snapshot: {}", path.display()),
        Err(e) => eprintln!("store snapshot not written: {e}"),
    }

    std::fs::remove_dir_all(&root).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
