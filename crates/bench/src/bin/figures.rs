//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! figures -- <target> [--full]
//!
//! targets: table1 fig4 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
//!          errors ratios all
//! ```
//!
//! `--full` uses paper-scale sample sizes (128³ CosmoFlow grids,
//! 1152×768×16 DeepCAM images) where the default uses reduced sizes for
//! quick runs. Throughput figures (8–12) come from the platform model
//! and are size-independent.

use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::ops::OpCounter;
use sciml_codec::{ErrorStats, Op};
use sciml_core::convergence::{cosmoflow_convergence, deepcam_convergence, ConvergenceConfig};
use sciml_data::cosmoflow::{sample_stats, CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_data::serialize;
use sciml_half::slice::widen;
use sciml_platform::figures as pfig;
use sciml_platform::{scaling, Format, PlatformSpec, WorkloadProfile};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let target = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let t0 = std::time::Instant::now();
    run_target(target, full);
    // Machine-readable run record next to the text output, so CI can
    // track figure-regeneration cost across commits.
    let label = format!("figures_{target}{}", if full { "_full" } else { "" });
    match sciml_bench::snapshot::write_snapshot(
        &label,
        &sciml_bench::snapshot::duration_entries("wall", t0.elapsed()),
    ) {
        Ok(path) => println!("\nrun snapshot: {}", path.display()),
        Err(e) => eprintln!("run snapshot not written: {e}"),
    }
}

fn run_target(target: &str, full: bool) {
    match target {
        "table1" => table1(),
        "fig4" => fig4(),
        "fig5" => fig5(full),
        "fig6" => fig6(full),
        "fig7" => fig7(full),
        "fig8" => fig8(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "errors" => errors(full),
        "ratios" => ratios(full),
        "scaling" => scaling_sweep(),
        "all" => {
            table1();
            fig4();
            fig5(full);
            fig6(full);
            fig7(full);
            fig8();
            fig9();
            fig10();
            fig11();
            fig12();
            errors(full);
            ratios(full);
            scaling_sweep();
        }
        other => {
            eprintln!("unknown target: {other}");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

fn table1() {
    header("Table I: System architecture for evaluated systems");
    print!("{}", pfig::table1());
}

/// Fig. 4: the differential encoding mechanism, illustrated on one line.
fn fig4() {
    header("Fig 4: DeepCAM differential encoding mechanism");
    let cfg = DeepCamConfig {
        width: 96,
        height: 1,
        channels: 1,
        cyclones: 1,
        rivers: 0,
        noise: 2.5e-3,
        seed: 4,
    };
    let s = ClimateGenerator::new(cfg).generate(0);
    let (enc, stats) = dc::encode(&s, &dc::EncoderConfig::default());
    println!("line of {} f32 values ({} bytes raw)", s.width, s.width * 4);
    println!(
        "encoded payload: {} bytes (ratio {:.2}x)",
        enc.payload.len(),
        (s.width * 4) as f64 / enc.payload.len() as f64
    );
    println!(
        "segments: {}  escape literals: {}  zero-delta codes: {}",
        stats.segments, stats.literals, stats.zero_codes
    );
    println!("code layout: [sign:1][exp_off:3][mantissa:4], escape=0xFF, zero=0x00");
    let out = dc::decode(&enc, Op::Identity).expect("decode");
    let mut es = ErrorStats::new(1.0);
    es.record_slices(&widen(&out), &s.data);
    println!(
        "reconstruction: max rel err {:.4}, mean abs err {:.6}",
        es.max_rel_error,
        es.mean_abs_error()
    );
}

/// Fig. 5: CosmoFlow sample statistics (power law, unique values/groups).
fn fig5(full: bool) {
    header("Fig 5: CosmoFlow sample content statistics");
    let grid = if full { 128 } else { 64 };
    let cfg = CosmoFlowConfig {
        grid,
        ..CosmoFlowConfig::default()
    };
    let g = UniverseGenerator::new(cfg);
    let n_samples = if full { 16 } else { 8 };

    // (a) value frequency distribution of one sample (power-law shape).
    let s0 = g.generate(0);
    let st0 = sample_stats(&s0);
    println!(
        "(a) value-frequency distribution, sample 0 (top 15 of {}):",
        st0.unique_values
    );
    println!("{:>8} {:>12}", "value", "frequency");
    for (v, f) in st0.value_frequencies.iter().take(15) {
        println!("{v:>8} {f:>12}");
    }
    let (top_f, mid_f) = (
        st0.value_frequencies[0].1 as f64,
        st0.value_frequencies[st0.value_frequencies.len() / 2].1 as f64,
    );
    println!(
        "head/median frequency ratio: {:.0} (heavy tail)",
        top_f / mid_f
    );

    // (b) unique values across samples.
    println!("\n(b) unique values per sample:");
    let mut group_rows = Vec::new();
    for i in 0..n_samples {
        let s = g.generate(i);
        let st = sample_stats(&s);
        println!("  sample {i:>2}: {:>6} unique values", st.unique_values);
        group_rows.push((i, st.unique_values, st.unique_groups));
    }

    // (c) unique groups vs the permutation bound.
    println!("\n(c) unique 4-redshift groups vs permutation bound:");
    println!(
        "{:>7} {:>14} {:>14} {:>16}",
        "sample", "unique values", "unique groups", "perm bound"
    );
    for (i, uv, ug) in group_rows {
        println!("{i:>7} {uv:>14} {ug:>14} {:>16.3e}", (uv as f64).powi(4));
    }
    println!("(groups index with 16-bit keys when <= 65536)");
}

/// Fig. 6: DeepCAM loss, base vs decoded samples.
fn fig6(full: bool) {
    header("Fig 6: DeepCAM training loss, base vs decoded (lossy codec)");
    let cfg = if full {
        ConvergenceConfig {
            n_samples: 96,
            size: 24,
            epochs: 10,
            batch: 2,
            lr: 2e-3,
            seed: 1,
        }
    } else {
        ConvergenceConfig::paper_scaled()
    };
    let run = deepcam_convergence(&cfg, 1);
    println!(
        "{:>6} {:>12} {:>12} {:>12} {:>12}",
        "epoch", "base loss", "decoded loss", "base val", "decoded val"
    );
    for e in 0..run.base.epoch_losses.len() {
        println!(
            "{e:>6} {:>12.5} {:>12.5} {:>12.5} {:>12.5}",
            run.base.epoch_losses[e],
            run.decoded.epoch_losses[e],
            run.base.val_losses[e],
            run.decoded.val_losses[e]
        );
    }
    println!(
        "max per-epoch gap: {:.5} ({:.2}% of initial loss)",
        run.max_epoch_gap(),
        100.0 * run.max_epoch_gap() / run.base.epoch_losses[0]
    );
}

/// Fig. 7: CosmoFlow loss across 16 repetitions, base vs decoded.
fn fig7(full: bool) {
    header("Fig 7: CosmoFlow training loss across repetitions");
    let reps = if full { 16 } else { 8 };
    let cfg = if full {
        ConvergenceConfig {
            n_samples: 64,
            size: 16,
            epochs: 10,
            batch: 2,
            lr: 1.5e-3,
            seed: 1,
        }
    } else {
        ConvergenceConfig::paper_scaled()
    };
    let mut base_runs = Vec::new();
    let mut dec_runs = Vec::new();
    for seed in 0..reps {
        let run = cosmoflow_convergence(&cfg, seed as u64);
        base_runs.push(run.base.epoch_losses);
        dec_runs.push(run.decoded.epoch_losses);
    }
    let summarize = |runs: &[Vec<f32>], e: usize| {
        let vals: Vec<f32> = runs.iter().map(|r| r[e]).collect();
        let mean = vals.iter().sum::<f32>() / vals.len() as f32;
        let min = vals.iter().cloned().fold(f32::MAX, f32::min);
        let max = vals.iter().cloned().fold(f32::MIN, f32::max);
        (mean, min, max)
    };
    println!(
        "{:>6} {:>30} {:>30}",
        "epoch", "base mean [min,max]", "decoded mean [min,max]"
    );
    for e in 0..cfg.epochs {
        let (bm, bl, bh) = summarize(&base_runs, e);
        let (dm, dl, dh) = summarize(&dec_runs, e);
        println!("{e:>6} {bm:>12.5} [{bl:.5},{bh:.5}] {dm:>12.5} [{dl:.5},{dh:.5}]");
    }
    let (bm, _, _) = summarize(&base_runs, cfg.epochs - 1);
    let (dm, _, _) = summarize(&dec_runs, cfg.epochs - 1);
    println!("final-epoch mean: base {bm:.5}, decoded {dm:.5}");
}

fn print_throughput(rows: &[pfig::ThroughputRow]) {
    println!(
        "{:<10} {:<6} {:<9} {:>5} {:<11} {:>12} {:<10}",
        "platform", "set", "staging", "batch", "variant", "samples/s", "tier"
    );
    for r in rows {
        println!(
            "{:<10} {:<6} {:<9} {:>5} {:<11} {:>12.1} {:<10}",
            r.platform,
            r.dataset,
            if r.staged { "staged" } else { "unstaged" },
            r.batch,
            r.format.label(),
            r.node_throughput,
            r.tier
        );
    }
}

fn speedup_summary(rows: &[pfig::ThroughputRow], base: Format, plugin: Format) {
    for platform in ["Summit", "Cori-V100", "Cori-A100"] {
        let mut best = 0.0f64;
        for r in rows
            .iter()
            .filter(|r| r.platform == platform && r.format == plugin)
        {
            if let Some(b) = rows.iter().find(|b| {
                b.platform == r.platform
                    && b.dataset == r.dataset
                    && b.staged == r.staged
                    && b.batch == r.batch
                    && b.format == base
            }) {
                best = best.max(r.node_throughput / b.node_throughput);
            }
        }
        println!(
            "  max {}/{} speedup on {platform}: {best:.2}x",
            plugin.label(),
            base.label()
        );
    }
}

fn fig8() {
    header("Fig 8: DeepCAM node throughput (samples/s)");
    let rows = pfig::fig8();
    print_throughput(&rows);
    speedup_summary(&rows, Format::Base, Format::PluginCpu);
    speedup_summary(&rows, Format::Base, Format::PluginGpu);
}

fn print_breakdown(rows: &[pfig::BreakdownRow]) {
    println!(
        "{:<10} {:<11} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10} {:>7}",
        "platform",
        "variant",
        "read ms",
        "host ms",
        "h2d ms",
        "gpudec ms",
        "step ms",
        "allred ms",
        "bound"
    );
    for r in rows {
        let b = &r.breakdown;
        println!(
            "{:<10} {:<11} {:>9.2} {:>9.2} {:>9.2} {:>10.3} {:>9.2} {:>10.2} {:>7}",
            r.platform,
            r.format.label(),
            b.read_s * 1e3,
            b.host_s * 1e3,
            b.h2d_s * 1e3,
            b.gpu_decode_s * 1e3,
            b.step_s * 1e3,
            b.allreduce_s * 1e3,
            if b.input_bound() { "input" } else { "gpu" }
        );
    }
}

fn fig9() {
    header("Fig 9: DeepCAM time breakdown (small set, batch 4)");
    print_breakdown(&pfig::fig9());
}

fn fig10() {
    header("Fig 10: CosmoFlow node throughput, small set (128 samples/GPU)");
    let rows = pfig::fig10();
    print_throughput(&rows);
    speedup_summary(&rows, Format::Base, Format::PluginGpu);
    speedup_summary(&rows, Format::Gzip, Format::Base);
}

fn fig11() {
    header("Fig 11: CosmoFlow node throughput, large set (2048 samples/GPU)");
    let rows = pfig::fig11();
    print_throughput(&rows);
    speedup_summary(&rows, Format::Base, Format::PluginGpu);
}

fn fig12() {
    header("Fig 12: CosmoFlow time breakdown (small set, batch 4)");
    print_breakdown(&pfig::fig12());
}

/// Extension: multi-node scaling sweep (beyond the paper's single-node
/// figures; the mechanism §IX-A describes — per-node shard size depends
/// on node count — becomes a caching cliff at scale).
fn scaling_sweep() {
    header("Extension: multi-node scaling (CosmoFlow full dataset, Cori-V100)");
    let nodes = [1u32, 2, 4, 8, 16, 32, 64, 128, 256];
    println!(
        "{:>6} {:>14} {:>12} {:>14} {:>12} {:>10}",
        "nodes", "samples/node", "variant", "global s/s", "efficiency", "tier"
    );
    for format in [Format::Base, Format::PluginGpu] {
        let pts = scaling::scale(
            &PlatformSpec::cori_v100(),
            &WorkloadProfile::cosmoflow(),
            format,
            512 * 1024,
            true,
            4,
            scaling::Interconnect::EDR,
            &nodes,
        );
        for p in pts {
            println!(
                "{:>6} {:>14} {:>12} {:>14.0} {:>12.2} {:>10}",
                p.nodes,
                p.samples_per_node,
                format.label(),
                p.global_throughput,
                p.efficiency,
                p.tier
            );
        }
    }
}

/// §V-A error statistics of the lossy DeepCAM codec.
fn errors(full: bool) {
    header("DeepCAM lossy-codec error statistics (paper: ~3% above 10% error)");
    let cfg = if full {
        DeepCamConfig::default()
    } else {
        DeepCamConfig {
            width: 384,
            height: 256,
            channels: 8,
            ..DeepCamConfig::default()
        }
    };
    let g = ClimateGenerator::new(cfg);
    let mut stats = ErrorStats::new(1.0);
    let n = if full { 4 } else { 8 };
    for i in 0..n {
        let s = g.generate(i);
        let (enc, _) = dc::encode(&s, &dc::EncoderConfig::default());
        let out = dc::decode(&enc, Op::Identity).expect("decode");
        stats.record_slices(&widen(&out), &s.data);
    }
    println!("values compared: {}", stats.total);
    println!(
        "fraction with rel err > 10%: {:.3}%",
        100.0 * stats.frac_above_10pct()
    );
    println!(
        "of those, near-zero references: {:.1}%",
        100.0 * stats.small_value_share()
    );
    println!(
        "error histogram buckets {:?}:",
        sciml_codec::error_stats::BUCKETS
    );
    println!("{:?}", stats.buckets);
}

/// §V-B compression ratios measured on the synthetic datasets, plus the
/// operator-fusion work reduction.
fn ratios(full: bool) {
    header("Compression ratios & fused-operator work reduction");
    let grid = if full { 128 } else { 64 };
    let g = UniverseGenerator::new(CosmoFlowConfig {
        grid,
        ..CosmoFlowConfig::default()
    });
    let s = g.generate(0);
    let raw = serialize::cosmo_to_payload(&s);
    let gz = sciml_compress::gzip_compress(&raw, sciml_compress::Level::Default);
    let enc = cf::encode(&s);
    println!("CosmoFlow sample (grid {grid}):");
    println!("  raw f32 payload: {:>12} bytes", raw.len());
    println!(
        "  gzip:            {:>12} bytes (ratio {:.2}x)   [paper: ~5x]",
        gz.len(),
        raw.len() as f64 / gz.len() as f64
    );
    println!(
        "  custom encoding: {:>12} bytes (ratio {:.2}x)   [paper: ~4x]",
        enc.encoded_bytes(),
        raw.len() as f64 / enc.encoded_bytes() as f64
    );
    println!(
        "  unique groups: {} across {} chunks",
        enc.total_groups(),
        enc.chunks.len()
    );
    let fused = OpCounter::new();
    cf::decode_with_counter(&enc, Op::Log1p, &fused).expect("decode");
    let base = OpCounter::new();
    cf::baseline_preprocess_with_counter(&s, Op::Log1p, &base);
    println!(
        "  log1p applications: baseline {} vs fused {} ({:.0}x reduction)",
        base.count(),
        fused.count(),
        base.count() as f64 / fused.count() as f64
    );

    let cam_cfg = if full {
        DeepCamConfig::default()
    } else {
        DeepCamConfig {
            width: 384,
            height: 256,
            channels: 8,
            ..DeepCamConfig::default()
        }
    };
    let cam = ClimateGenerator::new(cam_cfg).generate(0);
    let (enc, st) = dc::encode(&cam, &dc::EncoderConfig::default());
    println!(
        "\nDeepCAM sample ({}x{}x{}):",
        cam.channels, cam.height, cam.width
    );
    println!("  raw f32: {:>12} bytes", cam.raw_f32_bytes());
    println!(
        "  encoded: {:>12} bytes (ratio {:.2}x)",
        enc.encoded_bytes(),
        enc.compression_ratio()
    );
    println!(
        "  lines: {} constant, {} delta, {} raw; {} segments, {} literals",
        st.constant_lines, st.delta_lines, st.raw_lines, st.segments, st.literals
    );
}
