//! `sciml` — command-line tool for the preprocessing-pipeline codecs.
//!
//! ```text
//! sciml gen cosmo   --out DIR --n N [--grid G] [--seed S] [--format base|gzip|custom]
//! sciml gen deepcam --out DIR --n N [--width W] [--height H] [--channels C] [--format ...]
//! sciml inspect FILE...            # detect format by magic, print summary
//! sciml verify FILE...             # parse + decode + integrity / error report
//! sciml transcode FILE --out FILE  # baseline payload -> custom encoding
//! sciml bench-decode FILE [--iters K]
//! sciml serve (--dir DIR --n N | --store DIR) [--addr HOST:PORT] [--name NAME] [--cache-mb M]
//!             [--max-conns N] [--legacy-threads] [--cluster-nodes A,B,C [--replication R]]
//!             [--metrics-out F] [--metrics-addr HOST:PORT] [--trace-out FILE]
//! sciml fetch --addr HOST:PORT [--name NAME] [--indices I,J,K | --all] [--stats] [--shutdown]
//!             [--decode cosmo|deepcam [--batch B] [--epochs E] [--pool-capacity N]]
//!             [--metrics-out FILE] [--trace-out FILE] [--metrics-text FILE|-]
//!             [--watch SECS] [--watch-iters N] [--attribution-out FILE]
//! sciml pack --dir DIR --n N --out DIR [--shard-mb M] [--encoding raw|gzip|pack|auto]
//! sciml stage (--addr HOST:PORT [--name D] | --addrs A,B,C [--name D] | --dir DIR --n N)
//!             --out DIR [--per-shard K] [--workers W] [--encoding raw|gzip|pack|auto]
//! sciml cluster-plan (--nodes A,B,C --n N [--per-shard K] [--replication R] | --addr HOST:PORT [--name D])
//! sciml soak --addr HOST:PORT [--name D] [--conns N] [--fetches K]
//! sciml verify-store DIR           # CRC-check every shard + sample of a packed store
//! sciml validate-json FILE...      # check emitted metrics/trace files parse as JSON
//! sciml trace-merge --out OUT IN...   # merge Chrome traces onto one timeline
//! sciml scrape --addr HOST:PORT [--require fam1,fam2] [--out FILE]
//! sciml lint [--path DIR] [--json] [--require r=N]  # run the in-repo static analyzer
//! ```

use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::{ErrorStats, Op};
use sciml_core::api::{DatasetBuilder, EncodedFormat};
use sciml_data::cosmoflow::CosmoFlowConfig;
use sciml_data::deepcam::DeepCamConfig;
use sciml_data::serialize;
use sciml_half::slice::widen;
use sciml_obs::Telemetry;
use sciml_pipeline::decoder::{CosmoPluginCpu, DeepCamPluginCpu};
use sciml_pipeline::source::DirSource;
use sciml_pipeline::{DecoderPlugin, Pipeline, PipelineConfig, SampleSource};
use sciml_serve::{
    ClientConfig, ClusterConfig, ClusterSource, RemoteSource, ServeBuilder, ServerConfig,
};
use sciml_store::manifest::plan_by_count;
use sciml_store::{
    pack_store, ClusterPlan, EncodingChoice, EncodingCounts, PackConfig, ShardReader, ShardSource,
    Stager, StagerConfig,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("sciml: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("gen") => gen(&args[1..]),
        Some("inspect") => for_each_file(&args[1..], inspect),
        Some("verify") => for_each_file(&args[1..], verify),
        Some("transcode") => transcode(&args[1..]),
        Some("bench-decode") => bench_decode(&args[1..]),
        Some("serve") => serve(&args[1..]),
        Some("fetch") => fetch(&args[1..]),
        Some("pack") => pack(&args[1..]),
        Some("stage") => stage(&args[1..]),
        Some("verify-store") => verify_store(&args[1..]),
        Some("cluster-plan") => cluster_plan(&args[1..]),
        Some("soak") => soak(&args[1..]),
        Some("validate-json") => for_each_file(&args[1..], validate_json),
        Some("trace-merge") => trace_merge(&args[1..]),
        Some("scrape") => scrape(&args[1..]),
        Some("cpu-features") => cpu_features(&args[1..]),
        Some("lint") => lint(&args[1..]),
        Some("help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try `sciml help`)")),
    }
}

fn print_usage() {
    println!(
        "sciml — dataset & codec tool for the preprocessing-pipeline reproduction\n\n\
         commands:\n  \
         gen cosmo|deepcam --out DIR --n N [options]   generate an encoded dataset\n  \
         inspect FILE...                               identify and summarize files\n  \
         verify FILE...                                decode + integrity report\n  \
         transcode FILE --out FILE                     baseline payload -> custom encoding\n  \
         bench-decode FILE [--iters K]                 time repeated decodes\n  \
         serve (--dir DIR --n N | --store DIR)         serve an encoded dataset over TCP\n  \
         fetch --addr A [--name D] [--indices I,J]     fetch samples / stats from a server\n  \
         ..... --decode cosmo|deepcam [--pool-capacity N]  run a pooled decode pipeline over it\n  \
         pack --dir DIR --n N --out DIR                pack per-file samples into .sshard shards\n  \
         stage (--addr A | --addrs A,B,C | --dir DIR --n N) --out DIR  stage a dataset into a local packed copy\n  \
         verify-store DIR                              CRC-check every shard of a packed store\n  \
         cluster-plan (--nodes A,B,C --n N | --addr A) print consistent-hash shard placement + balance\n  \
         soak --addr A [--conns N] [--fetches K]       hold N concurrent connections, fetch, report tails\n  \
         validate-json FILE...                         check metrics/trace JSON well-formedness\n  \
         trace-merge --out OUT IN...                   merge Chrome traces onto one timeline\n  \
         scrape --addr A [--require f1,f2] [--out F]   scrape + validate a metrics endpoint\n  \
         cpu-features [--list]                         SIMD tier detection + per-kernel dispatch plan\n  \
         lint [--path DIR] [--json] [--require r=N]    static-analysis gate (panics, effects, unsafe)\n\n\
         telemetry flags (serve / fetch):\n  \
         --metrics-out FILE    write a metrics snapshot (JSONL) on exit\n  \
         --metrics-addr A      expose Prometheus-text metrics on A (serve)\n  \
         --metrics-text FILE   dump Prometheus-text metrics, `-` = stdout (fetch)\n  \
         --trace-out FILE      write a Chrome trace-event JSON file\n  \
         --watch SECS          live bottleneck line every SECS (fetch)\n  \
         --attribution-out F   write the bottleneck-attribution report (fetch)"
    );
}

/// Pulls `--flag value` out of an argument list.
fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_parse<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match flag(args, name) {
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for {name}: {v}")),
        None => Ok(default),
    }
}

fn positional_files(args: &[String]) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut skip = false;
    for (i, a) in args.iter().enumerate() {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            // All our flags take a value.
            skip = args.get(i + 1).is_some();
            continue;
        }
        out.push(PathBuf::from(a));
    }
    out
}

fn for_each_file(args: &[String], f: fn(&Path) -> Result<(), String>) -> Result<(), String> {
    let files = positional_files(args);
    if files.is_empty() {
        return Err("no files given".into());
    }
    for file in files {
        f(&file)?;
    }
    Ok(())
}

// -------------------------------------------------------------------

fn gen(args: &[String]) -> Result<(), String> {
    let workload = args.first().map(String::as_str);
    let out = flag(args, "--out").ok_or("--out DIR required")?;
    let n: usize = flag_parse(args, "--n", 8)?;
    let seed: u64 = flag_parse(args, "--seed", 0x5C1_3ACE)?;
    let format = match flag(args, "--format").as_deref() {
        None | Some("custom") => EncodedFormat::Custom,
        Some("base") => EncodedFormat::Base,
        Some("gzip") => EncodedFormat::Gzip,
        Some(other) => return Err(format!("unknown format {other}")),
    };

    let builder = match workload {
        Some("cosmo") => {
            let grid: usize = flag_parse(args, "--grid", 32)?;
            DatasetBuilder::cosmoflow(CosmoFlowConfig {
                grid,
                seed,
                ..CosmoFlowConfig::default()
            })
        }
        Some("deepcam") => {
            let width: usize = flag_parse(args, "--width", 384)?;
            let height: usize = flag_parse(args, "--height", 256)?;
            let channels: usize = flag_parse(args, "--channels", 8)?;
            DatasetBuilder::deepcam(DeepCamConfig {
                width,
                height,
                channels,
                seed,
                ..DeepCamConfig::default()
            })
        }
        _ => return Err("gen needs a workload: cosmo | deepcam".into()),
    };

    std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;
    let blobs = builder.build(n, format);
    let mut total = 0usize;
    for (i, b) in blobs.iter().enumerate() {
        let path = Path::new(&out).join(format!("sample_{i:06}.bin"));
        std::fs::write(&path, b).map_err(|e| format!("write {path:?}: {e}"))?;
        total += b.len();
    }
    println!(
        "wrote {n} samples ({total} bytes, {:.1} KB avg) to {out}",
        total as f64 / n as f64 / 1e3
    );
    Ok(())
}

// -------------------------------------------------------------------

/// File kind detected from magic bytes.
enum Kind {
    CosmoCustom,
    DeepCamCustom,
    CosmoBase,
    H5Lite,
    Gzip,
    Unknown,
}

fn detect(bytes: &[u8]) -> Kind {
    match bytes.get(0..4) {
        Some(b"CFLX") => Kind::CosmoCustom,
        Some(b"DCMX") => Kind::DeepCamCustom,
        Some(b"CFSM") => Kind::CosmoBase,
        Some(b"H5LT") => Kind::H5Lite,
        Some([0x1F, 0x8B, ..]) => Kind::Gzip,
        _ => Kind::Unknown,
    }
}

fn inspect(path: &Path) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path:?}: {e}"))?;
    print!("{}: ", path.display());
    match detect(&bytes) {
        Kind::CosmoCustom => {
            let enc = cf::EncodedCosmo::from_bytes(&bytes).map_err(|e| e.to_string())?;
            println!(
                "CosmoFlow custom encoding — grid {}, {} chunk(s), {} groups, {} bytes ({:.2}x vs f32), label {:?}",
                enc.grid,
                enc.chunks.len(),
                enc.total_groups(),
                enc.encoded_bytes(),
                enc.compression_ratio(),
                enc.label
            );
        }
        Kind::DeepCamCustom => {
            let enc = dc::EncodedDeepCam::from_bytes(&bytes).map_err(|e| e.to_string())?;
            let modes = enc.lines.iter().fold([0usize; 3], |mut acc, l| {
                match l.mode {
                    dc::LineMode::Constant => acc[0] += 1,
                    dc::LineMode::RawF32 => acc[1] += 1,
                    dc::LineMode::Delta => acc[2] += 1,
                }
                acc
            });
            println!(
                "DeepCAM custom encoding — {}x{}x{}, lines {} const / {} raw / {} delta, {} bytes ({:.2}x)",
                enc.channels,
                enc.height,
                enc.width,
                modes[0],
                modes[1],
                modes[2],
                enc.encoded_bytes(),
                enc.compression_ratio()
            );
        }
        Kind::CosmoBase => {
            let s = serialize::cosmo_from_payload(&bytes).map_err(|e| e.to_string())?;
            println!(
                "CosmoFlow baseline payload — grid {}, {} values, label {:?}",
                s.grid,
                s.counts.len(),
                s.label.as_array()
            );
        }
        Kind::H5Lite => {
            let ds = sciml_data::h5lite::read(&bytes).map_err(|e| e.to_string())?;
            let names: Vec<String> = ds
                .iter()
                .map(|d| format!("{} {:?} {:?}", d.name, d.dtype, d.shape))
                .collect();
            println!(
                "h5lite container — {} dataset(s): {}",
                ds.len(),
                names.join(", ")
            );
        }
        Kind::Gzip => {
            let inner = sciml_compress::gzip_decompress(&bytes).map_err(|e| e.to_string())?;
            println!(
                "gzip member — {} bytes compressed, {} bytes inflated ({:.2}x)",
                bytes.len(),
                inner.len(),
                inner.len() as f64 / bytes.len() as f64
            );
        }
        Kind::Unknown => println!("unknown format ({} bytes)", bytes.len()),
    }
    Ok(())
}

fn verify(path: &Path) -> Result<(), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path:?}: {e}"))?;
    match detect(&bytes) {
        Kind::CosmoCustom => {
            let enc = cf::EncodedCosmo::from_bytes(&bytes).map_err(|e| e.to_string())?;
            let counts = cf::decode_counts(&enc).map_err(|e| e.to_string())?;
            let decoded = cf::decode(&enc, Op::Log1p).map_err(|e| e.to_string())?;
            println!(
                "{}: OK — {} counts reconstructed losslessly, {} FP16 values decoded",
                path.display(),
                counts.len(),
                decoded.len()
            );
        }
        Kind::DeepCamCustom => {
            let enc = dc::EncodedDeepCam::from_bytes(&bytes).map_err(|e| e.to_string())?;
            let decoded = dc::decode_parallel(&enc, Op::Identity).map_err(|e| e.to_string())?;
            let finite = decoded.iter().filter(|h| h.is_finite()).count();
            println!(
                "{}: OK — {} FP16 values decoded, {} finite, mask {} bytes",
                path.display(),
                decoded.len(),
                finite,
                enc.mask.len()
            );
        }
        Kind::CosmoBase => {
            let s = serialize::cosmo_from_payload(&bytes).map_err(|e| e.to_string())?;
            println!(
                "{}: OK — baseline payload, {} counts",
                path.display(),
                s.counts.len()
            );
        }
        Kind::H5Lite => {
            let s = serialize::deepcam_from_h5(&bytes).map_err(|e| e.to_string())?;
            println!(
                "{}: OK — DeepCAM h5lite, {} f32 values + {} mask bytes",
                path.display(),
                s.data.len(),
                s.mask.len()
            );
        }
        Kind::Gzip => {
            let inner = sciml_compress::gzip_decompress(&bytes).map_err(|e| e.to_string())?;
            println!(
                "{}: OK — gzip CRC verified ({} bytes)",
                path.display(),
                inner.len()
            );
        }
        Kind::Unknown => return Err(format!("{}: unknown format", path.display())),
    }
    Ok(())
}

fn transcode(args: &[String]) -> Result<(), String> {
    let files = positional_files(args);
    let input = files.first().ok_or("transcode needs an input file")?;
    let out = flag(args, "--out").ok_or("--out FILE required")?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input:?}: {e}"))?;
    let encoded = match detect(&bytes) {
        Kind::CosmoBase => {
            let s = serialize::cosmo_from_payload(&bytes).map_err(|e| e.to_string())?;
            cf::encode(&s).to_bytes()
        }
        Kind::H5Lite => {
            let s = serialize::deepcam_from_h5(&bytes).map_err(|e| e.to_string())?;
            dc::encode(&s, &dc::EncoderConfig::default()).0.to_bytes()
        }
        Kind::Gzip => {
            let inner = sciml_compress::gzip_decompress(&bytes).map_err(|e| e.to_string())?;
            let s = serialize::cosmo_from_payload(&inner).map_err(|e| e.to_string())?;
            cf::encode(&s).to_bytes()
        }
        _ => return Err("transcode expects a baseline payload (CFSM / H5LT / gzip)".into()),
    };
    std::fs::write(&out, &encoded).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "{} ({} bytes) -> {out} ({} bytes, {:.2}x)",
        input.display(),
        bytes.len(),
        encoded.len(),
        bytes.len() as f64 / encoded.len() as f64
    );
    Ok(())
}

fn bench_decode(args: &[String]) -> Result<(), String> {
    let files = positional_files(args);
    let input = files.first().ok_or("bench-decode needs an input file")?;
    let iters: usize = flag_parse(args, "--iters", 20)?;
    let bytes = std::fs::read(input).map_err(|e| format!("{input:?}: {e}"))?;
    let (label, values, run): (&str, usize, Box<dyn Fn()>) = match detect(&bytes) {
        Kind::CosmoCustom => {
            let enc = cf::EncodedCosmo::from_bytes(&bytes).map_err(|e| e.to_string())?;
            let n = enc.voxels() * 4;
            (
                "cosmoflow fused log1p decode",
                n,
                Box::new(move || {
                    cf::decode_parallel(&enc, Op::Log1p).expect("decode");
                }),
            )
        }
        Kind::DeepCamCustom => {
            let enc = dc::EncodedDeepCam::from_bytes(&bytes).map_err(|e| e.to_string())?;
            let n = enc.n_values();
            (
                "deepcam line-parallel decode",
                n,
                Box::new(move || {
                    dc::decode_parallel(&enc, Op::Identity).expect("decode");
                }),
            )
        }
        _ => return Err("bench-decode expects a custom-encoded file".into()),
    };
    // Warmup.
    run();
    let t0 = Instant::now();
    for _ in 0..iters {
        run();
    }
    let dt = t0.elapsed().as_secs_f64() / iters as f64;
    println!(
        "{label}: {:.3} ms/decode, {:.0} Mvalues/s ({} iters)",
        dt * 1e3,
        values as f64 / dt / 1e6,
        iters
    );
    Ok(())
}

// -------------------------------------------------------------------

fn serve(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".into());
    let name = flag(args, "--name").unwrap_or_else(|| "default".into());
    let cache_mb: u64 = flag_parse(args, "--cache-mb", 256)?;
    let workers: usize = flag_parse(args, "--workers", 4)?;
    let max_conns: usize =
        flag_parse(args, "--max-conns", ServerConfig::default().max_connections)?;
    let legacy_threads = args.iter().any(|a| a == "--legacy-threads");

    let metrics_out = flag(args, "--metrics-out");
    let metrics_addr = flag(args, "--metrics-addr");
    let trace_out = flag(args, "--trace-out");
    // The tracer costs a per-span record when enabled, so it is on only
    // when the trace is actually going somewhere.
    let telemetry = if trace_out.is_some() {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let registry = Arc::clone(&telemetry.registry);
    let mut builder = ServeBuilder::new()
        .config(ServerConfig {
            workers,
            cache_bytes: cache_mb << 20,
            max_connections: max_conns,
            legacy_threads,
            ..ServerConfig::default()
        })
        .telemetry(&telemetry);
    let cluster_desc = if let Some(list) = flag(args, "--cluster-nodes") {
        let nodes: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        if nodes.is_empty() {
            return Err("--cluster-nodes needs at least one host:port".into());
        }
        let replication: u16 = flag_parse(args, "--replication", 2)?;
        let desc = format!(", cluster of {} (replication {replication})", nodes.len());
        builder = builder.cluster(ClusterConfig { nodes, replication });
        desc
    } else {
        String::new()
    };

    let desc = if let Some(store_dir) = flag(args, "--store") {
        // Opening with telemetry registers the store.decode.* counters
        // in the shared registry, which the server lifts into v5 stats
        // replies and the scrape endpoint exposes.
        let store = ShardSource::open_with_telemetry(&store_dir, &telemetry)
            .map_err(|e| format!("open store {store_dir}: {e}"))?;
        let n = store.len();
        let shards = store.manifest().shards.len();
        builder = builder.dataset_store(&name, Arc::new(store));
        format!("{n} samples in {shards} shards from {store_dir}")
    } else {
        let dir = flag(args, "--dir").ok_or("--dir DIR or --store DIR required")?;
        let n: usize = flag_parse(args, "--n", 0)?;
        if n == 0 {
            return Err("--n N (number of samples in DIR) required".into());
        }
        let source = DirSource::open(&dir, n);
        // Fail early on an unreadable dataset rather than at first fetch.
        source
            .fetch(0)
            .map_err(|e| format!("cannot read sample 0 from {dir}: {e}"))?;
        builder = builder.dataset(&name, Arc::new(source) as Arc<dyn SampleSource>);
        format!("{n} samples from {dir}")
    };

    let handle = builder.bind(addr).map_err(|e| format!("bind: {e}"))?;
    let engine = if legacy_threads {
        "legacy thread-per-connection"
    } else {
        "reactor"
    };
    println!(
        "serving '{name}' ({desc}) on {} — {engine} engine, {workers} workers, \
         {max_conns} max connections, {cache_mb} MiB hot cache{cluster_desc}",
        handle.local_addr()
    );
    let scrape = match metrics_addr {
        Some(a) => {
            let (bound, h) = sciml_serve::spawn_scrape_listener(a, telemetry.clone())
                .map_err(|e| format!("bind metrics endpoint: {e}"))?;
            println!("metrics exposition on http://{bound}/metrics");
            Some(h)
        }
        None => None,
    };
    println!(
        "stop with: sciml fetch --addr {} --shutdown",
        handle.local_addr()
    );
    handle.join();
    if let Some(scrape) = scrape {
        scrape.shutdown();
    }
    if let Some(out) = metrics_out {
        sciml_obs::write_metrics_file(&registry.snapshot(), Path::new(&out))
            .map_err(|e| format!("write {out}: {e}"))?;
        println!("metrics snapshot written to {out}");
    }
    if let Some(out) = trace_out {
        telemetry
            .write_trace(Path::new(&out))
            .map_err(|e| format!("write {out}: {e}"))?;
        println!("server trace written to {out}");
    }
    println!("server stopped");
    Ok(())
}

fn fetch(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").ok_or("--addr HOST:PORT required")?;

    // Shutdown needs no dataset, so don't demand a valid --name for it.
    if args.iter().any(|a| a == "--shutdown") {
        let stats = RemoteSource::shutdown_at(&addr).map_err(|e| e.to_string())?;
        println!(
            "server shut down after {} requests, {} samples, {} bytes",
            stats.requests, stats.samples_served, stats.bytes_sent
        );
        return Ok(());
    }

    let name = flag(args, "--name").unwrap_or_else(|| "default".into());
    let metrics_out = flag(args, "--metrics-out");
    let metrics_text = flag(args, "--metrics-text");
    let trace_out = flag(args, "--trace-out");
    let attribution_out = flag(args, "--attribution-out");
    let watch: f64 = flag_parse(args, "--watch", 0.0)?;
    let telemetry = if trace_out.is_some() {
        Telemetry::new()
    } else {
        Telemetry::disabled()
    };
    let src = Arc::new(
        RemoteSource::connect_with_registry(
            &addr,
            &name,
            ClientConfig::default(),
            Arc::clone(&telemetry.registry),
        )
        .map_err(|e| e.to_string())?,
    );
    let fetch_ns = telemetry.registry.histogram("client.fetch_ns");

    let indices: Vec<u64> = if args.iter().any(|a| a == "--all") {
        (0..src.len() as u64).collect()
    } else if let Some(list) = flag(args, "--indices") {
        list.split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad index: {s}")))
            .collect::<Result<_, _>>()?
    } else {
        Vec::new()
    };

    println!("'{name}' on {addr}: {} samples", src.len());
    if !indices.is_empty() {
        let t0 = Instant::now();
        let samples = {
            let _span = telemetry.tracer.span("client", "fetch_batch");
            fetch_ns
                .time(|| src.fetch_batch(&indices))
                .map_err(|e| e.to_string())?
        };
        let dt = t0.elapsed();
        let bytes: usize = samples.iter().map(Vec::len).sum();
        println!(
            "fetched {} samples ({bytes} bytes) in {:.2} ms — {:.1} MiB/s",
            samples.len(),
            dt.as_secs_f64() * 1e3,
            bytes as f64 / dt.as_secs_f64() / (1024.0 * 1024.0)
        );
        if let Some(out) = flag(args, "--out") {
            std::fs::create_dir_all(&out).map_err(|e| format!("create {out}: {e}"))?;
            for (idx, sample) in indices.iter().zip(&samples) {
                let path = Path::new(&out).join(format!("sample_{idx:06}.bin"));
                std::fs::write(&path, sample).map_err(|e| format!("write {path:?}: {e}"))?;
            }
            println!("wrote {} files to {out}", samples.len());
        }
    }
    // Run a pooled decode pipeline straight off the remote source: the
    // zero-copy path end to end, with the pool hit rate as the receipt.
    if let Some(workload) = flag(args, "--decode") {
        let plugin: Arc<dyn DecoderPlugin> = match workload.as_str() {
            "cosmo" => Arc::new(CosmoPluginCpu { op: Op::Log1p }),
            "deepcam" => Arc::new(DeepCamPluginCpu { op: Op::Identity }),
            other => return Err(format!("--decode must be cosmo|deepcam, got `{other}`")),
        };
        let cfg = PipelineConfig {
            batch_size: flag_parse(args, "--batch", 4)?,
            epochs: flag_parse(args, "--epochs", 1)?,
            pool_capacity: flag(args, "--pool-capacity")
                .map(|v| {
                    v.parse()
                        .map_err(|_| format!("invalid value for --pool-capacity: {v}"))
                })
                .transpose()?,
            ..Default::default()
        };
        let mut p = Pipeline::launch_with(
            Arc::clone(&src) as Arc<dyn SampleSource>,
            plugin,
            cfg.clone(),
            telemetry.clone(),
        )
        .map_err(|e| e.to_string())?;
        // Background bottleneck attribution over the pipeline's own
        // registry: `--watch SECS` prints a live line per tick;
        // `--attribution-out` captures the final report either way.
        let sampler = if watch > 0.0 || attribution_out.is_some() {
            Some(sciml_obs::PipelineSampler::spawn(
                Arc::clone(&telemetry.registry),
                Arc::clone(&telemetry.tracer),
                sciml_obs::SamplerConfig {
                    interval: std::time::Duration::from_secs_f64(watch.max(0.25)),
                    stages: sciml_obs::pipeline_stages(
                        cfg.reader_threads as u64,
                        cfg.decode_threads as u64,
                    ),
                    live: watch > 0.0,
                },
            ))
        } else {
            None
        };
        let pool = p.pool();
        let t0 = Instant::now();
        let (mut batches, mut samples) = (0u64, 0u64);
        while let Some(b) = p.next_batch().map_err(|e| e.to_string())? {
            batches += 1;
            samples += b.len() as u64; // batch dropped here → buffer recycles
        }
        let dt = t0.elapsed().as_secs_f64();
        if let Some(sampler) = sampler {
            let report = sampler.stop();
            println!("{}", report.live_line());
            if let Some(out) = &attribution_out {
                std::fs::write(out, report.to_json()).map_err(|e| format!("write {out}: {e}"))?;
                println!("attribution report written to {out}");
            }
        }
        println!(
            "decoded {samples} samples in {batches} batches over {:.2} ms — {:.0} samples/s (pool capacity {})",
            dt * 1e3,
            samples as f64 / dt,
            pool.capacity(),
        );
        let checkouts = pool.hits() + pool.misses();
        if checkouts > 0 {
            println!(
                "  pool: {:.1}% hit rate ({} hits / {} misses), {} bytes resident",
                100.0 * pool.hits() as f64 / checkouts as f64,
                pool.hits(),
                pool.misses(),
                pool.resident_bytes(),
            );
        }
    }
    if args.iter().any(|a| a == "--stats") {
        let s = src.server_stats().map_err(|e| e.to_string())?;
        if s.latency.is_empty() {
            // v1 server: only the cumulative sum is on the wire.
            let mean_us = if s.requests > 0 {
                s.request_ns as f64 / s.requests as f64 / 1e3
            } else {
                0.0
            };
            println!(
                "server stats: {} requests (mean {mean_us:.1} µs)",
                s.requests
            );
        } else {
            println!(
                "server stats: {} requests — latency p50 {:.1} µs / p95 {:.1} µs / p99 {:.1} µs / max {:.1} µs",
                s.requests,
                s.latency.percentile(0.50) as f64 / 1e3,
                s.latency.percentile(0.95) as f64 / 1e3,
                s.latency.percentile(0.99) as f64 / 1e3,
                s.latency.max as f64 / 1e3,
            );
        }
        println!(
            "  {} samples, {} bytes sent, hot cache {} hits / {} misses / {} evictions, {} rejected connections",
            s.samples_served,
            s.bytes_sent,
            s.cache_hits,
            s.cache_misses,
            s.cache_evictions,
            s.rejected_connections
        );
        let lookups = s.cache_hits + s.cache_misses;
        if lookups > 0 {
            println!(
                "  cache effectiveness: {:.1}% hit rate over {lookups} lookups",
                100.0 * s.cache_hits as f64 / lookups as f64
            );
        }
        // Per-entry payload-encoding decode counters (v5 servers; older
        // replies predate the field and report all zeros).
        let decoded = s.decoded_raw + s.decoded_gzip + s.decoded_pack;
        if decoded > 0 {
            println!(
                "  store decodes: {} raw / {} gzip / {} pack",
                s.decoded_raw, s.decoded_gzip, s.decoded_pack
            );
        }
        // Client-side SIMD decode-kernel dispatches (the pooled decode
        // pipeline runs in this process, not on the server).
        let kernel_counts = sciml_simd::dispatch_counts();
        if kernel_counts.iter().any(|&(_, _, n)| n > 0) {
            let parts: Vec<String> = kernel_counts
                .iter()
                .filter(|&&(_, _, n)| n > 0)
                .map(|(k, l, n)| format!("{}:{} {n}", k.name(), l.name()))
                .collect();
            println!(
                "  decode kernels (tier {}): {}",
                sciml_simd::active_level().name(),
                parts.join(" / ")
            );
        }
        // `--stats --watch SECS`: keep polling and print one compact
        // line per tick showing request/sample movement.
        if watch > 0.0 {
            let iters: u64 = flag_parse(args, "--watch-iters", 5)?;
            let mut prev = s;
            for _ in 0..iters {
                std::thread::sleep(std::time::Duration::from_secs_f64(watch));
                let cur = src.server_stats().map_err(|e| e.to_string())?;
                let lookups = (cur.cache_hits + cur.cache_misses)
                    .saturating_sub(prev.cache_hits + prev.cache_misses);
                let hit_rate = if lookups > 0 {
                    100.0 * cur.cache_hits.saturating_sub(prev.cache_hits) as f64 / lookups as f64
                } else {
                    0.0
                };
                println!(
                    "[obs] +{} req +{} samples +{} bytes | cache {hit_rate:.0}% | p95 {:.1} µs",
                    cur.requests.saturating_sub(prev.requests),
                    cur.samples_served.saturating_sub(prev.samples_served),
                    cur.bytes_sent.saturating_sub(prev.bytes_sent),
                    cur.latency.percentile(0.95) as f64 / 1e3,
                );
                prev = cur;
            }
        }
    }
    if metrics_out.is_some() || metrics_text.is_some() {
        // Lift the SIMD dispatch atomics into `codec.simd.*` gauges so
        // both export formats carry the kernel counters.
        sciml_codec::telemetry::publish_simd_dispatch(&telemetry.registry);
    }
    if let Some(out) = metrics_out {
        telemetry
            .write_metrics(Path::new(&out))
            .map_err(|e| format!("write {out}: {e}"))?;
        println!("client metrics written to {out}");
    }
    if let Some(out) = metrics_text {
        telemetry.publish_trace_stats();
        let text = sciml_obs::prometheus_text(&telemetry.registry.snapshot());
        if out == "-" {
            print!("{text}");
        } else {
            std::fs::write(&out, text).map_err(|e| format!("write {out}: {e}"))?;
            println!("Prometheus-text metrics written to {out}");
        }
    }
    if let Some(out) = trace_out {
        telemetry
            .write_trace(Path::new(&out))
            .map_err(|e| format!("write {out}: {e}"))?;
        println!("trace written to {out}");
    }
    Ok(())
}

// -------------------------------------------------------------------

/// Merges Chrome trace-event files (e.g. a client trace and a server
/// trace of the same run) onto one timeline, aligned by each tracer's
/// wall-clock epoch, one pid lane per input.
fn trace_merge(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("--out FILE required")?;
    let files = positional_files(args);
    if files.is_empty() {
        return Err("trace-merge needs at least one input trace".into());
    }
    let mut inputs = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path:?}: {e}"))?;
        let label = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        inputs.push((label, text));
    }
    let merged = sciml_obs::merge_chrome_traces(&inputs).map_err(|e| e.to_string())?;
    std::fs::write(&out, merged).map_err(|e| format!("write {out}: {e}"))?;
    println!("merged {} trace(s) into {out}", files.len());
    Ok(())
}

/// Reports the detected SIMD tier, the `SCIML_SIMD` override state, and
/// the kernel path every decode workload will take on this host.
/// `--list` prints just the supported tier names, one per line — the
/// form the CI `simd-matrix` stage iterates.
fn cpu_features(args: &[String]) -> Result<(), String> {
    use sciml_platform::cpu;
    if args.iter().any(|a| a == "--list") {
        for l in cpu::supported_levels() {
            println!("{}", l.name());
        }
        return Ok(());
    }
    println!("detected tier:   {}", cpu::detected_level().name());
    println!(
        "supported tiers: {}",
        cpu::supported_levels()
            .iter()
            .map(|l| l.name())
            .collect::<Vec<_>>()
            .join(", ")
    );
    match cpu::env_request() {
        None => println!("{}:      unset", cpu::SIMD_ENV),
        Some(raw) => match cpu::env_level() {
            Some(lvl) => println!("{}={raw} -> {}", cpu::SIMD_ENV, lvl.name()),
            None => println!(
                "{}={raw} -> unrecognized value, detection wins",
                cpu::SIMD_ENV
            ),
        },
    }
    println!("active tier:     {}", cpu::active_level().name());
    println!("kernel paths:");
    for p in cpu::kernel_plan() {
        println!(
            "  {:<13} {:<22} {:<7} {}",
            p.kernel.name(),
            p.stage,
            p.level.name(),
            p.strategy
        );
    }
    Ok(())
}

/// Scrapes a metrics endpoint once, validates the exposition parses,
/// and optionally checks that required metric families are present —
/// the CI self-check for `sciml serve --metrics-addr`.
fn scrape(args: &[String]) -> Result<(), String> {
    let addr = flag(args, "--addr").ok_or("--addr HOST:PORT required")?;
    let body = sciml_serve::scrape_once(&addr).map_err(|e| format!("scrape {addr}: {e}"))?;
    let parsed = sciml_obs::parse_prometheus(&body)
        .map_err(|e| format!("{addr}: invalid Prometheus exposition: {e}"))?;
    let families = parsed.types.len();
    let samples = parsed.samples.len();
    if let Some(required) = flag(args, "--require") {
        for fam in required.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            if parsed.kind(fam).is_none() {
                return Err(format!(
                    "{addr}: required metric family `{fam}` missing from scrape"
                ));
            }
        }
    }
    println!("{addr}: OK — {families} metric families, {samples} samples");
    if let Some(out) = flag(args, "--out") {
        std::fs::write(&out, &body).map_err(|e| format!("write {out}: {e}"))?;
        println!("exposition written to {out}");
    }
    Ok(())
}

// -------------------------------------------------------------------

fn pack(args: &[String]) -> Result<(), String> {
    let dir = flag(args, "--dir").ok_or("--dir DIR required")?;
    let n: usize = flag_parse(args, "--n", 0)?;
    if n == 0 {
        return Err("--n N (number of samples in DIR) required".into());
    }
    let out = flag(args, "--out").ok_or("--out DIR required")?;
    let shard_mb: u64 = flag_parse(args, "--shard-mb", 64)?;
    let encoding = encoding_flag(args)?;

    let source = DirSource::open(&dir, n);
    let t0 = Instant::now();
    let manifest = pack_store(
        &source,
        Path::new(&out),
        PackConfig {
            target_shard_bytes: shard_mb << 20,
            encoding,
            ..PackConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    println!(
        "packed {} samples into {} shard(s), {} bytes ({encoding}) in {:.2} s -> {out}",
        manifest.total_samples(),
        manifest.shards.len(),
        manifest.total_bytes(),
        t0.elapsed().as_secs_f64()
    );
    Ok(())
}

/// Parses the payload-encoding choice: `--encoding raw|gzip|pack|auto`,
/// with `--gzip` kept as a backward-compatible alias for
/// `--encoding gzip`.
fn encoding_flag(args: &[String]) -> Result<EncodingChoice, String> {
    if let Some(name) = flag(args, "--encoding") {
        name.parse()
            .map_err(|_| format!("--encoding {name}: expected raw, gzip, pack, or auto"))
    } else if args.iter().any(|a| a == "--gzip") {
        Ok(EncodingChoice::Gzip)
    } else {
        Ok(EncodingChoice::Raw)
    }
}

fn stage(args: &[String]) -> Result<(), String> {
    let out = flag(args, "--out").ok_or("--out DIR required")?;
    let workers: usize = flag_parse(args, "--workers", 2)?;
    let per_shard: u64 = flag_parse(args, "--per-shard", 0)?;
    // No flag = None: mirror each plan's own encoding (a v4 server
    // reports its store's real per-shard choice).
    let encoding = if flag(args, "--encoding").is_some() || args.iter().any(|a| a == "--gzip") {
        Some(encoding_flag(args)?)
    } else {
        None
    };

    let (backing, plans): (Arc<dyn SampleSource>, Vec<sciml_store::ShardPlan>) =
        if let Some(list) = flag(args, "--addrs") {
            // Cluster staging: dial the first reachable seed, learn the
            // placement from its ClusterManifest reply, and stage through
            // a replica-failover source — a node dying mid-stage costs
            // retries, not the run.
            let name = flag(args, "--name").unwrap_or_else(|| "default".into());
            let seeds: Vec<&str> = list
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect();
            let mut src = None;
            let mut last_err = String::from("--addrs list is empty");
            for seed in &seeds {
                match ClusterSource::connect(seed.to_string(), &name) {
                    Ok(s) => {
                        src = Some(s);
                        break;
                    }
                    Err(e) => last_err = format!("{seed}: {e}"),
                }
            }
            let src = src.ok_or(format!("no cluster seed reachable ({last_err})"))?;
            let plan = src.plan();
            let plans: Vec<sciml_store::ShardPlan> = plan.shards.iter().map(|a| a.plan).collect();
            println!(
            "staging '{name}' from a {}-node cluster (replication {}): {} samples in {} shard(s)",
            plan.nodes.len(),
            plan.replication,
            src.len(),
            plans.len()
        );
            (Arc::new(src), plans)
        } else if let Some(addr) = flag(args, "--addr") {
            let name = flag(args, "--name").unwrap_or_else(|| "default".into());
            let src = RemoteSource::connect(&addr, &name).map_err(|e| e.to_string())?;
            // Ask the server for its shard partitioning so staging fetches
            // line up with the store layout (or a synthesized plan).
            let plans = src.shard_manifest(per_shard).map_err(|e| e.to_string())?;
            println!(
                "staging '{name}' from {addr}: {} samples in {} shard(s)",
                src.len(),
                plans.len()
            );
            (Arc::new(src), plans)
        } else {
            let dir = flag(args, "--dir")
                .ok_or("--addr HOST:PORT, --addrs A,B,C, or --dir DIR required")?;
            let n: usize = flag_parse(args, "--n", 0)?;
            if n == 0 {
                return Err("--n N (number of samples in DIR) required".into());
            }
            let src = DirSource::open(&dir, n);
            src.fetch(0)
                .map_err(|e| format!("cannot read sample 0 from {dir}: {e}"))?;
            let per = if per_shard == 0 { 64 } else { per_shard };
            println!("staging {n} samples from {dir} in shards of {per}");
            (Arc::new(src), plan_by_count(n as u64, per))
        };

    let stager = Stager::new(
        backing,
        plans,
        &out,
        StagerConfig {
            workers,
            encoding,
            ..StagerConfig::default()
        },
    )
    .map_err(|e| e.to_string())?;
    let resumed = stager.progress().staged_shards;
    if resumed > 0 {
        println!("resuming: {resumed} shard(s) already staged in {out}");
    }
    let t0 = Instant::now();
    stager.spawn_workers();
    let p = stager.join().map_err(|e| e.to_string())?;
    println!(
        "staged {}/{} shard(s) ({} bytes) in {:.2} s -> {out}",
        p.staged_shards,
        p.total_shards,
        p.staged_bytes,
        t0.elapsed().as_secs_f64()
    );
    if p.failed_shards > 0 {
        return Err(format!(
            "{} shard(s) failed; re-run the same command to retry them",
            p.failed_shards
        ));
    }
    Ok(())
}

fn verify_store(args: &[String]) -> Result<(), String> {
    let dirs = positional_files(args);
    let dir = dirs.first().ok_or("verify-store needs a store directory")?;
    let store = ShardSource::open(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let t0 = Instant::now();
    let samples = store
        .verify()
        .map_err(|e| format!("{}: FAILED — {e}", dir.display()))?;
    // Tally each entry's payload encoding straight from the shard
    // footers, so mixed raw/gzip/pack stores report what is actually
    // on disk (the manifest only records the pack-time policy).
    let mut counts = EncodingCounts::default();
    for meta in &store.manifest().shards {
        let reader =
            ShardReader::open(dir.join(&meta.file)).map_err(|e| format!("{}: {e}", meta.file))?;
        counts.merge(reader.encoding_counts());
    }
    println!(
        "{}: OK — {} shard(s), {samples} samples, {} bytes, every CRC verified in {:.2} s",
        dir.display(),
        store.manifest().shards.len(),
        store.manifest().total_bytes(),
        t0.elapsed().as_secs_f64()
    );
    println!("  payload encodings: {counts}");
    Ok(())
}

// -------------------------------------------------------------------

/// Prints the consistent-hash placement a cluster computes — either
/// offline from a node list (`--nodes A,B,C --n N`), to preview how a
/// dataset will spread before any server starts, or live from a running
/// member (`--addr`), to see the placement clients actually route by.
fn cluster_plan(args: &[String]) -> Result<(), String> {
    let plan: ClusterPlan = if let Some(addr) = flag(args, "--addr") {
        let name = flag(args, "--name").unwrap_or_else(|| "default".into());
        let src = RemoteSource::connect(&addr, &name).map_err(|e| e.to_string())?;
        src.cluster_topology().map_err(|e| e.to_string())?
    } else if let Some(list) = flag(args, "--nodes") {
        let nodes: Vec<String> = list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        let n: u64 = flag_parse(args, "--n", 0)?;
        if n == 0 {
            return Err("--n N (number of samples to place) required with --nodes".into());
        }
        let per_shard: u64 = flag_parse(args, "--per-shard", 64)?;
        let replication: u16 = flag_parse(args, "--replication", 2)?;
        ClusterPlan::assign(&plan_by_count(n, per_shard), &nodes, replication)
    } else {
        return Err("cluster-plan needs --nodes A,B,C --n N or --addr HOST:PORT".into());
    };
    plan.validate()
        .map_err(|e| format!("invalid cluster plan: {e}"))?;

    println!(
        "{} node(s), replication {}, {} shard(s):",
        plan.nodes.len(),
        plan.replication,
        plan.shards.len()
    );
    const MAX_LISTED: usize = 64;
    for a in plan.shards.iter().take(MAX_LISTED) {
        let replicas: Vec<&str> = a
            .replicas
            .iter()
            .filter_map(|&r| plan.nodes.get(r as usize).map(String::as_str))
            .collect();
        println!(
            "  shard {:>4}  [{:>8}, {:>8})  {}",
            a.plan.id,
            a.plan.first,
            a.plan.first + a.plan.count,
            replicas.join(" -> ")
        );
    }
    if plan.shards.len() > MAX_LISTED {
        println!("  ... ({} more shards)", plan.shards.len() - MAX_LISTED);
    }
    println!("per-node load:");
    for (node, load) in plan.nodes.iter().zip(plan.balance()) {
        println!(
            "  {node}  {} primaries / {} replicas / {} bytes",
            load.primaries, load.shards, load.bytes
        );
    }
    Ok(())
}

/// Holds `--conns` loopback connections open against one server *at the
/// same time* (a barrier gates the fetch phase on every socket being
/// admitted), then runs `--fetches` single-sample requests per
/// connection and reports the latency tail. The CI soak stage runs this
/// at 512+ connections against the reactor engine.
fn soak(args: &[String]) -> Result<(), String> {
    use sciml_serve::protocol as proto;

    let addr = flag(args, "--addr").ok_or("--addr HOST:PORT required")?;
    let name = flag(args, "--name").unwrap_or_else(|| "default".into());
    let conns: usize = flag_parse(args, "--conns", 512)?;
    let fetches: u64 = flag_parse(args, "--fetches", 4)?;
    if conns == 0 {
        return Err("--conns must be at least 1".into());
    }

    // One scout request up front: dataset length for index wrapping,
    // and a fail-fast on a bad address or name.
    let len = {
        let scout = RemoteSource::connect(&addr, &name).map_err(|e| e.to_string())?;
        scout.len() as u64
    };
    if len == 0 {
        return Err(format!("dataset '{name}' on {addr} is empty"));
    }

    let barrier = Arc::new(std::sync::Barrier::new(conns));
    let t0 = Instant::now();
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let addr = addr.clone();
            let name = name.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || -> Result<Vec<u64>, String> {
                let mut stream = std::net::TcpStream::connect(&addr)
                    .map_err(|e| format!("conn {c}: connect: {e}"))?;
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(Some(std::time::Duration::from_secs(60)))
                    .ok();
                proto::write_message(
                    &mut stream,
                    &proto::Message::Hello {
                        version: proto::PROTOCOL_VERSION,
                    },
                )
                .map_err(|e| format!("conn {c}: hello: {e}"))?;
                match proto::read_message(&mut stream) {
                    Ok(proto::Message::HelloAck { .. }) => {}
                    Ok(other) => {
                        return Err(format!("conn {c}: unexpected hello reply: {other:?}"))
                    }
                    Err(e) => return Err(format!("conn {c}: hello reply: {e}")),
                }
                // Every socket is admitted and negotiated before any
                // fetch starts: the server really holds `conns` live
                // connections at once.
                barrier.wait();
                let mut lat_ns = Vec::with_capacity(fetches as usize);
                for k in 0..fetches {
                    let idx = (c as u64 + k * 31) % len;
                    let t = Instant::now();
                    proto::write_message(
                        &mut stream,
                        &proto::Message::FetchSamples {
                            name: name.clone(),
                            indices: vec![idx],
                        },
                    )
                    .map_err(|e| format!("conn {c}: fetch {idx}: {e}"))?;
                    match proto::read_message(&mut stream) {
                        Ok(proto::Message::Samples(p)) if p.len() == 1 => {}
                        Ok(other) => {
                            return Err(format!("conn {c}: unexpected fetch reply: {other:?}"))
                        }
                        Err(e) => return Err(format!("conn {c}: fetch reply: {e}")),
                    }
                    lat_ns.push(t.elapsed().as_nanos() as u64);
                }
                Ok(lat_ns)
            })
        })
        .collect();

    let mut lat_ns = Vec::with_capacity(conns * fetches as usize);
    let mut failures = Vec::new();
    for w in workers {
        match w.join() {
            Ok(Ok(lat)) => lat_ns.extend(lat),
            Ok(Err(e)) => failures.push(e),
            Err(_) => failures.push("soak worker panicked".into()),
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    lat_ns.sort_unstable();
    let pct = |p: f64| -> f64 {
        if lat_ns.is_empty() {
            return 0.0;
        }
        let i = ((lat_ns.len() - 1) as f64 * p).round() as usize;
        lat_ns[i.min(lat_ns.len() - 1)] as f64 / 1e3
    };
    println!(
        "soak: {conns} concurrent connections x {fetches} fetches against {addr} in {dt:.2} s",
    );
    if !lat_ns.is_empty() {
        println!(
            "  fetch latency: p50 {:.1} µs / p95 {:.1} µs / p99 {:.1} µs / max {:.1} µs",
            pct(0.50),
            pct(0.95),
            pct(0.99),
            pct(1.0)
        );
    }
    if failures.is_empty() {
        println!("  all connections negotiated, fetched, and closed cleanly");
        Ok(())
    } else {
        for f in failures.iter().take(5) {
            eprintln!("  FAIL: {f}");
        }
        Err(format!(
            "{} of {conns} soak connections failed",
            failures.len()
        ))
    }
}

// -------------------------------------------------------------------

/// Runs the in-repo static analyzer (`sciml-analyze`) over the repo at
/// `--path` (default `.`) and prints the per-crate, per-rule violation
/// table, or machine-readable JSON (`sciml.lint.report.v1`) with
/// `--json`. Exits nonzero on any non-baselined violation, stale
/// baseline entry, or exceeded `--require <rule>=<max>` bound,
/// mirroring the CI `lint` stage.
fn lint(args: &[String]) -> Result<(), String> {
    let repo_root = PathBuf::from(flag(args, "--path").unwrap_or_else(|| ".".into()));
    let config_path = flag(args, "--config")
        .map(PathBuf::from)
        .unwrap_or_else(|| repo_root.join("lint.toml"));
    let json = args.iter().any(|a| a == "--json");
    // `--require no_panics=0,no_panics_transitive=0` gates on *total*
    // per-rule counts (baselined included), like `scrape --require`.
    let mut require: Vec<(String, usize)> = Vec::new();
    if let Some(value) = flag(args, "--require") {
        for part in value.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let (rule, max) = part
                .split_once('=')
                .ok_or_else(|| format!("--require expects <rule>=<max>, got `{part}`"))?;
            let rule = rule.trim();
            if !sciml_analyze::RULE_NAMES.contains(&rule) {
                return Err(format!("--require: unknown rule `{rule}`"));
            }
            let max: usize = max
                .trim()
                .parse()
                .map_err(|_| format!("--require: `{part}` needs an integer bound"))?;
            require.push((rule.to_string(), max));
        }
    }

    let cfg = sciml_analyze::Config::load(&config_path).map_err(|e| e.to_string())?;
    let crates_dir = repo_root.join("crates");
    let scan_roots: Vec<PathBuf> = if crates_dir.is_dir() {
        let shims_dir = repo_root.join("shims");
        if shims_dir.is_dir() {
            vec![crates_dir, shims_dir]
        } else {
            vec![crates_dir]
        }
    } else {
        vec![repo_root.clone()]
    };
    let outcome = sciml_analyze::lint_tree(&scan_roots, &repo_root, &cfg)
        .map_err(|e| format!("scanning {}: {e}", repo_root.display()))?;

    let report = sciml_analyze::Report::new(&outcome);
    if json {
        println!("{}", report.json());
    } else {
        print!("{}", report.table());
        let failures = report.failures();
        if !failures.is_empty() {
            print!("\n{failures}");
        }
    }
    let mut require_failures = Vec::new();
    for (rule, max) in &require {
        let total: usize = outcome
            .counts
            .iter()
            .filter(|((_, r), _)| r == rule)
            .map(|(_, &c)| c)
            .sum();
        if total > *max {
            require_failures.push(format!(
                "--require {rule}={max} failed: {total} total violation(s)"
            ));
        }
    }
    for f in &require_failures {
        eprintln!("sciml lint: {f}");
    }
    if outcome.is_green() && require_failures.is_empty() {
        Ok(())
    } else {
        Err("lint violations found (see above; `sciml-lint --update-baseline` regenerates the grandfather baseline)".into())
    }
}

// -------------------------------------------------------------------

/// Parses a file with the std-only JSON parser, accepting either a
/// single JSON document or JSONL (one document per line).
fn validate_json(path: &Path) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path:?}: {e}"))?;
    match sciml_obs::json::parse(&text) {
        Ok(_) => {
            println!("{}: OK (single JSON document)", path.display());
            return Ok(());
        }
        Err(_) => {
            let mut docs = 0usize;
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                sciml_obs::json::parse(line)
                    .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
                docs += 1;
            }
            if docs == 0 {
                return Err(format!("{}: empty file", path.display()));
            }
            println!("{}: OK ({docs} JSONL document(s))", path.display());
        }
    }
    Ok(())
}

/// Extra diagnostics used by `verify` on lossy DeepCAM files when the
/// matching baseline file sits next to them (`<name>.h5` convention).
#[allow(dead_code)]
fn error_report(encoded: &dc::EncodedDeepCam, reference: &[f32]) -> String {
    let decoded = dc::decode(encoded, Op::Identity).expect("decode");
    let mut stats = ErrorStats::new(1.0);
    stats.record_slices(&widen(&decoded), reference);
    format!(
        ">10% err: {:.3}% (near-zero share {:.0}%)",
        100.0 * stats.frac_above_10pct(),
        100.0 * stats.small_value_share()
    )
}
