//! Shared helpers for the criterion benches.

pub mod snapshot;

use sciml_data::cosmoflow::{CosmoFlowConfig, CosmoSample, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig, DeepCamSample};

/// A mid-size CosmoFlow sample (grid 48) — large enough for stable
/// timings, small enough that encode fits a bench iteration.
pub fn bench_cosmo_sample() -> CosmoSample {
    UniverseGenerator::new(CosmoFlowConfig {
        grid: 48,
        ..CosmoFlowConfig::default()
    })
    .generate(0)
}

/// A mid-size DeepCAM sample (8 × 256 × 384).
pub fn bench_deepcam_sample() -> DeepCamSample {
    ClimateGenerator::new(DeepCamConfig {
        width: 384,
        height: 256,
        channels: 8,
        ..DeepCamConfig::default()
    })
    .generate(0)
}

/// A mid-size DeepCAM sample with the synthetic sensor noise turned
/// down to simulation-output levels. The real DeepCAM fields are CAM5
/// model output — smooth, not sensor data — so the generator's default
/// noise floor overstates the entropy of the differential code stream;
/// this variant is the workload for second-stage compression benches.
pub fn bench_deepcam_sample_smooth() -> DeepCamSample {
    ClimateGenerator::new(DeepCamConfig {
        width: 384,
        height: 256,
        channels: 8,
        noise: 5.0e-4,
        ..DeepCamConfig::default()
    })
    .generate(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_samples_have_expected_shapes() {
        assert_eq!(bench_cosmo_sample().voxels(), 48 * 48 * 48);
        let d = bench_deepcam_sample();
        assert_eq!(d.data.len(), 8 * 256 * 384);
    }
}
