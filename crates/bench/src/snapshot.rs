//! Machine-readable perf snapshots for the bench/figures harness.
//!
//! Every run lands a `BENCH_<label>.json` file in the snapshot
//! directory (`$SCIML_BENCH_OUT_DIR`, defaulting to `results/`), via
//! the `sciml-obs` exporter — the same shape the criterion shim emits,
//! so CI can diff bench output across commits regardless of which
//! harness produced it.

use sciml_obs::{BenchEntry, HistogramSnapshot};
use std::path::PathBuf;
use std::time::Duration;

/// Environment variable naming the snapshot directory.
pub const BENCH_OUT_ENV: &str = "SCIML_BENCH_OUT_DIR";

/// Snapshot directory: `$SCIML_BENCH_OUT_DIR` or the workspace-root
/// `results/` (anchored at compile time — `cargo bench` and `cargo run`
/// start in different working directories).
pub fn bench_out_dir() -> PathBuf {
    std::env::var(BENCH_OUT_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|_| {
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join("results")
        })
}

/// Writes `BENCH_<label>.json` into [`bench_out_dir`].
pub fn write_snapshot(label: &str, entries: &[BenchEntry]) -> std::io::Result<PathBuf> {
    sciml_obs::write_bench_snapshot(&bench_out_dir(), label, entries)
}

/// Entries summarizing one wall-clock duration under `prefix`.
pub fn duration_entries(prefix: &str, elapsed: Duration) -> Vec<BenchEntry> {
    vec![BenchEntry::new(
        format!("{prefix}_ns"),
        elapsed.as_nanos() as f64,
        "ns",
    )]
}

/// Entries summarizing a latency histogram: count, mean, and tails.
pub fn histogram_entries(prefix: &str, h: &HistogramSnapshot) -> Vec<BenchEntry> {
    vec![
        BenchEntry::new(format!("{prefix}_count"), h.count as f64, "ops"),
        BenchEntry::new(format!("{prefix}_mean_ns"), h.mean(), "ns"),
        BenchEntry::new(format!("{prefix}_p50_ns"), h.percentile(0.50) as f64, "ns"),
        BenchEntry::new(format!("{prefix}_p95_ns"), h.percentile(0.95) as f64, "ns"),
        BenchEntry::new(format!("{prefix}_p99_ns"), h.percentile(0.99) as f64, "ns"),
        BenchEntry::new(format!("{prefix}_max_ns"), h.max as f64, "ns"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_obs::Histogram;

    #[test]
    fn histogram_entries_cover_tails() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 10_000] {
            h.record(v);
        }
        let entries = histogram_entries("req", &h.snapshot());
        let names: Vec<&str> = entries.iter().map(|e| e.metric.as_str()).collect();
        assert!(names.contains(&"req_p99_ns"));
        assert!(names.contains(&"req_count"));
        assert_eq!(entries[0].value, 4.0);
    }
}
