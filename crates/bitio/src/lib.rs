//! Shared LSB-first bit I/O.
//!
//! Both compression stacks in the workspace pack bits starting from the
//! least-significant bit of each byte: DEFLATE (`sciml-compress`)
//! mandates it, and the chunked numeric compressor (`sciml-pack`)
//! adopts the same convention so the two can share one bit reader and
//! writer instead of carrying near-duplicate implementations.
//!
//! Huffman codes are written most-significant-code-bit first, which in
//! this representation means the code must be bit-reversed before
//! writing; [`BitWriter::write_bits`] writes raw little-endian fields
//! and [`BitWriter::write_code`] handles the reversal.

#![deny(missing_docs)]

use std::fmt;

/// Failures of the bit reader: the only thing that can go wrong at this
/// layer is running off the end of the stream. Callers map this into
/// their own error vocabulary (`sciml_compress::Error::UnexpectedEof`,
/// `sciml_pack::PackError::Truncated`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitIoError {
    /// Stream ended before the requested bits were available.
    UnexpectedEof,
}

impl fmt::Display for BitIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitIoError::UnexpectedEof => write!(f, "unexpected end of bit stream"),
        }
    }
}

impl std::error::Error for BitIoError {}

/// Accumulating LSB-first bit writer backed by a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    out: Vec<u8>,
    bit_buf: u64,
    bit_count: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the low `count` bits of `bits`, LSB first.
    ///
    /// # Panics
    /// Panics if `count > 32` or if `bits` has bits set above `count`.
    #[inline]
    pub fn write_bits(&mut self, bits: u32, count: u32) {
        debug_assert!(count <= 32);
        debug_assert!(count == 32 || bits < (1u32 << count), "{bits} !< 2^{count}");
        self.bit_buf |= (bits as u64) << self.bit_count;
        self.bit_count += count;
        while self.bit_count >= 8 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf >>= 8;
            self.bit_count -= 8;
        }
    }

    /// Writes a Huffman code of `len` bits: DEFLATE stores codes with the
    /// first (most significant) code bit first, so the canonical code is
    /// bit-reversed into the LSB-first stream.
    #[inline]
    pub fn write_code(&mut self, code: u16, len: u32) {
        debug_assert!(len <= 16 && len > 0);
        let rev = (code as u32).reverse_bits() >> (32 - len);
        self.write_bits(rev, len);
    }

    /// Pads to the next byte boundary with zero bits.
    pub fn align_to_byte(&mut self) {
        if self.bit_count > 0 {
            self.out.push((self.bit_buf & 0xFF) as u8);
            self.bit_buf = 0;
            self.bit_count = 0;
        }
    }

    /// Appends raw bytes; the stream must be byte-aligned.
    ///
    /// # Panics
    /// Panics if not at a byte boundary.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        assert_eq!(self.bit_count, 0, "write_bytes requires byte alignment");
        self.out.extend_from_slice(bytes);
    }

    /// Number of complete bytes written so far.
    pub fn byte_len(&self) -> usize {
        self.out.len()
    }

    /// Total bits written (complete bytes plus pending).
    pub fn bit_len(&self) -> usize {
        self.out.len() * 8 + self.bit_count as usize
    }

    /// Flushes any partial byte and returns the buffer.
    pub fn finish(mut self) -> Vec<u8> {
        self.align_to_byte();
        self.out
    }
}

/// LSB-first bit reader over a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    data: &'a [u8],
    /// Next byte index to refill from.
    pos: usize,
    bit_buf: u64,
    bit_count: u32,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self {
            data,
            pos: 0,
            bit_buf: 0,
            bit_count: 0,
        }
    }

    #[inline]
    fn refill(&mut self) {
        while self.bit_count <= 56 && self.pos < self.data.len() {
            self.bit_buf |= (self.data[self.pos] as u64) << self.bit_count;
            self.pos += 1;
            self.bit_count += 8;
        }
    }

    /// Reads `count` (<= 32) bits LSB-first.
    #[inline]
    pub fn read_bits(&mut self, count: u32) -> Result<u32, BitIoError> {
        debug_assert!(count <= 32);
        if self.bit_count < count {
            self.refill();
            if self.bit_count < count {
                return Err(BitIoError::UnexpectedEof);
            }
        }
        let mask = if count == 32 {
            u64::MAX >> 32
        } else {
            (1u64 << count) - 1
        };
        let v = (self.bit_buf & mask) as u32;
        self.bit_buf >>= count;
        self.bit_count -= count;
        Ok(v)
    }

    /// Reads a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<u32, BitIoError> {
        self.read_bits(1)
    }

    /// Peeks up to `count` bits without consuming; missing tail bits (past
    /// end of stream) read as zero, matching the canonical-decoder usage
    /// where the final code may be shorter than the peek window.
    #[inline]
    pub fn peek_bits(&mut self, count: u32) -> u32 {
        debug_assert!(count <= 32);
        self.refill();
        let mask = if count == 32 {
            u64::MAX >> 32
        } else {
            (1u64 << count) - 1
        };
        (self.bit_buf & mask) as u32
    }

    /// Consumes `count` bits previously peeked.
    #[inline]
    pub fn consume(&mut self, count: u32) -> Result<(), BitIoError> {
        if self.bit_count < count {
            return Err(BitIoError::UnexpectedEof);
        }
        self.bit_buf >>= count;
        self.bit_count -= count;
        Ok(())
    }

    /// Number of bits still available.
    pub fn bits_remaining(&self) -> usize {
        (self.data.len() - self.pos) * 8 + self.bit_count as usize
    }

    /// Discards buffered bits up to the next byte boundary.
    pub fn align_to_byte(&mut self) {
        let drop = self.bit_count % 8;
        self.bit_buf >>= drop;
        self.bit_count -= drop;
    }

    /// Reads `n` whole bytes (stream must be byte-aligned).
    pub fn read_bytes(&mut self, n: usize) -> Result<Vec<u8>, BitIoError> {
        debug_assert_eq!(self.bit_count % 8, 0, "read_bytes requires alignment");
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.read_bits(8)? as u8);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        w.write_bits(0b11110000, 8);
        w.write_bits(0x12345, 20);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bits(8).unwrap(), 0b11110000);
        assert_eq!(r.read_bits(20).unwrap(), 0x12345);
    }

    #[test]
    fn code_is_bit_reversed() {
        let mut w = BitWriter::new();
        // Code 0b110 (len 3) must appear as first-bit-first: 1,1,0
        // => LSB-first byte 0b...011.
        w.write_code(0b110, 3);
        let bytes = w.finish();
        assert_eq!(bytes[0] & 0b111, 0b011);
    }

    #[test]
    fn align_and_bytes() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1);
        w.align_to_byte();
        w.write_bytes(&[0xAB, 0xCD]);
        let bytes = w.finish();
        assert_eq!(bytes, vec![0x01, 0xAB, 0xCD]);

        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit().unwrap(), 1);
        r.align_to_byte();
        assert_eq!(r.read_bytes(2).unwrap(), vec![0xAB, 0xCD]);
    }

    #[test]
    fn eof_is_detected() {
        let mut r = BitReader::new(&[0xFF]);
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
        assert_eq!(r.read_bits(1), Err(BitIoError::UnexpectedEof));
    }

    #[test]
    fn peek_does_not_consume() {
        let mut r = BitReader::new(&[0b1010_1010]);
        assert_eq!(r.peek_bits(4), 0b1010);
        assert_eq!(r.peek_bits(4), 0b1010);
        r.consume(2).unwrap();
        assert_eq!(r.read_bits(2).unwrap(), 0b10);
    }

    #[test]
    fn peek_past_end_pads_with_zeros() {
        let mut r = BitReader::new(&[0b1]);
        assert_eq!(r.peek_bits(16), 1);
    }

    #[test]
    fn bits_remaining_tracks() {
        let mut r = BitReader::new(&[0, 0, 0]);
        assert_eq!(r.bits_remaining(), 24);
        r.read_bits(5).unwrap();
        assert_eq!(r.bits_remaining(), 19);
    }

    #[test]
    fn error_display() {
        assert!(BitIoError::UnexpectedEof.to_string().contains("end"));
    }
}
