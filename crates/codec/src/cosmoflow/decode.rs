//! CosmoFlow decoder: fused-operator table expansion.
//!
//! The decode applies the preprocessing operator to each chunk's table
//! entries (thousands of values), then expands the full channel-major
//! tensor with a pure gather. The gather writes all four channel slots
//! of a voxel from one table row — fusing the storage→training-layout
//! transpose into the decompression, as §X describes.

use super::EncodedCosmo;
use crate::ops::{Op, OpCounter};
use crate::CodecError;
use rayon::prelude::*;
use sciml_data::cosmoflow::N_REDSHIFTS;
use sciml_half::F16;

/// Decodes with the fused operator into channel-major FP16.
pub fn decode(enc: &EncodedCosmo, op: Op) -> Result<Vec<F16>, CodecError> {
    decode_impl(enc, op, None, false)
}

/// Decode with rayon parallelism across chunks (one task per chunk, the
/// unit the paper's localized tables create).
pub fn decode_parallel(enc: &EncodedCosmo, op: Op) -> Result<Vec<F16>, CodecError> {
    decode_impl(enc, op, None, true)
}

/// Decode while counting operator applications (to verify the fusion
/// work reduction against [`super::baseline_preprocess_with_counter`]).
pub fn decode_with_counter(
    enc: &EncodedCosmo,
    op: Op,
    counter: &OpCounter,
) -> Result<Vec<F16>, CodecError> {
    decode_impl(enc, op, Some(counter), false)
}

fn decode_impl(
    enc: &EncodedCosmo,
    op: Op,
    counter: Option<&OpCounter>,
    parallel: bool,
) -> Result<Vec<F16>, CodecError> {
    let voxels = enc.voxels();
    let covered: u64 = enc.chunks.iter().map(|c| c.n_voxels as u64).sum();
    if covered != voxels as u64 {
        return Err(CodecError::Inconsistent("chunks do not cover grid"));
    }
    let mut out = vec![F16::ZERO; voxels * N_REDSHIFTS];

    // Chunk start offsets in the flat voxel range.
    let mut starts = Vec::with_capacity(enc.chunks.len());
    let mut acc = 0usize;
    for c in &enc.chunks {
        starts.push(acc);
        acc += c.n_voxels as usize;
    }

    // Split the output into per-channel slices so chunk tasks can write
    // disjoint column ranges without aliasing.
    let mut channels: Vec<&mut [F16]> = out.chunks_mut(voxels).collect();

    let decode_chunk = |chunk: &super::CosmoChunk,
                        start: usize,
                        chans: &mut [&mut [F16]]|
     -> Result<(), CodecError> {
        // Fused op on the *unique count values* of this chunk (§V-B:
        // "complex preprocessing operations … are applied to the unique
        // set of values within the sample" — hundreds of applications
        // instead of millions), then group rows are assembled by value
        // lookup.
        let mut value_lut: std::collections::HashMap<u16, F16> = std::collections::HashMap::new();
        let mut lut: Vec<[F16; N_REDSHIFTS]> = Vec::with_capacity(chunk.table.len());
        for g in &chunk.table {
            let mut row = [F16::ZERO; N_REDSHIFTS];
            for (z, &count) in g.iter().enumerate() {
                row[z] = *value_lut.entry(count).or_insert_with(|| {
                    let x = count as f32;
                    let y = match counter {
                        Some(c) => c.apply(op, x),
                        None => op.apply(x),
                    };
                    F16::from_f32(y)
                });
            }
            lut.push(row);
        }
        let n = chunk.n_voxels as usize;
        if chunk.keys.len() != n * chunk.key_width.bytes() {
            return Err(CodecError::Corrupt("key payload size"));
        }
        for v in 0..n {
            let k = chunk.key(v);
            let row = lut
                .get(k)
                .ok_or(CodecError::Corrupt("key out of table range"))?;
            for (z, chan) in chans.iter_mut().enumerate() {
                chan[start + v] = row[z];
            }
        }
        Ok(())
    };

    if parallel && enc.chunks.len() > 1 {
        // Parallelize across chunks: each task owns a disjoint column
        // range of all four channels. Split the channel slices by chunk.
        let mut per_chunk: Vec<Vec<&mut [F16]>> =
            (0..enc.chunks.len()).map(|_| Vec::new()).collect();
        for chan in channels.drain(..) {
            let mut rest = chan;
            for (ci, c) in enc.chunks.iter().enumerate() {
                let (head, tail) = rest.split_at_mut(c.n_voxels as usize);
                per_chunk[ci].push(head);
                rest = tail;
            }
        }
        enc.chunks
            .par_iter()
            .zip(per_chunk.par_iter_mut())
            .try_for_each(|(chunk, chans)| {
                // Start is 0 within the pre-split slices.
                decode_chunk(chunk, 0, chans)
            })?;
    } else {
        for (chunk, &start) in enc.chunks.iter().zip(&starts) {
            decode_chunk(chunk, start, &mut channels)?;
        }
    }
    Ok(out)
}

/// Losslessly reconstructs the original u16 counts (channel-major).
pub fn decode_counts(enc: &EncodedCosmo) -> Result<Vec<u16>, CodecError> {
    let voxels = enc.voxels();
    let covered: u64 = enc.chunks.iter().map(|c| c.n_voxels as u64).sum();
    if covered != voxels as u64 {
        return Err(CodecError::Inconsistent("chunks do not cover grid"));
    }
    let mut out = vec![0u16; voxels * N_REDSHIFTS];
    let mut start = 0usize;
    for chunk in &enc.chunks {
        let n = chunk.n_voxels as usize;
        if chunk.keys.len() != n * chunk.key_width.bytes() {
            return Err(CodecError::Corrupt("key payload size"));
        }
        for v in 0..n {
            let k = chunk.key(v);
            let g = chunk
                .table
                .get(k)
                .ok_or(CodecError::Corrupt("key out of table range"))?;
            for z in 0..N_REDSHIFTS {
                out[z * voxels + start + v] = g[z];
            }
        }
        start += n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosmoflow::{baseline_preprocess, baseline_preprocess_with_counter, encode};
    use sciml_data::cosmoflow::{CosmoFlowConfig, CosmoSample, UniverseGenerator};

    fn small() -> CosmoSample {
        UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0)
    }

    #[test]
    fn lossless_count_roundtrip() {
        let s = small();
        let e = encode(&s);
        assert_eq!(decode_counts(&e).unwrap(), s.counts);
    }

    #[test]
    fn fused_decode_equals_baseline_exactly() {
        // Same f32 inputs, same op, same final cast — the fused path must
        // be bit-identical to per-voxel preprocessing (this is the
        // "convergence-identical" premise for CosmoFlow).
        let s = small();
        let e = encode(&s);
        for op in [
            Op::Identity,
            Op::Log1p,
            Op::Normalize {
                scale: 0.2,
                offset: 1.0,
            },
            Op::Log1pNormalize {
                scale: 0.5,
                offset: 2.0,
            },
        ] {
            let fused = decode(&e, op).unwrap();
            let base = baseline_preprocess(&s, op);
            assert_eq!(fused, base, "{op:?}");
        }
    }

    #[test]
    fn parallel_decode_matches_sequential() {
        let s = small();
        let e = encode(&s);
        assert_eq!(
            decode(&e, Op::Log1p).unwrap(),
            decode_parallel(&e, Op::Log1p).unwrap()
        );
    }

    #[test]
    fn fusion_reduces_op_applications_by_orders_of_magnitude() {
        let s = small();
        let e = encode(&s);
        let fused_counter = OpCounter::new();
        decode_with_counter(&e, Op::Log1p, &fused_counter).unwrap();
        let base_counter = OpCounter::new();
        baseline_preprocess_with_counter(&s, Op::Log1p, &base_counter);
        assert_eq!(base_counter.count(), s.counts.len() as u64);
        // The fused path applies the op once per unique count value per
        // chunk, never more than once per group entry.
        let unique_values: u64 = e
            .chunks
            .iter()
            .map(|c| {
                let mut vals: Vec<u16> = c.table.iter().flatten().copied().collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len() as u64
            })
            .sum();
        assert_eq!(fused_counter.count(), unique_values);
        assert!(fused_counter.count() <= (e.total_groups() * N_REDSHIFTS) as u64);
        // Work reduction: ≥5× on the 32³ test grid; at the paper's 128³
        // the voxel count grows 64× while unique groups grow far slower,
        // giving the three-orders-of-magnitude reduction (checked by the
        // Fig-5 figures binary at full scale).
        assert!(
            base_counter.count() > 5 * fused_counter.count(),
            "base {} vs fused {}",
            base_counter.count(),
            fused_counter.count()
        );
    }

    #[test]
    fn decode_output_is_channel_major() {
        let s = small();
        let e = encode(&s);
        let out = decode(&e, Op::Identity).unwrap();
        let n = s.voxels();
        for v in [0usize, 17, n - 1] {
            let g = s.group(v);
            for z in 0..N_REDSHIFTS {
                assert_eq!(out[z * n + v].to_f32(), g[z] as f32, "v={v} z={z}");
            }
        }
    }

    #[test]
    fn corrupted_keys_rejected() {
        let s = small();
        let mut e = encode(&s);
        // Point a key beyond the table.
        let c = &mut e.chunks[0];
        let bad = (c.table.len() as u16).to_le_bytes();
        match c.key_width {
            super::super::KeyWidth::U8 => {
                if c.table.len() < 256 {
                    c.keys[0] = c.table.len() as u8;
                } else {
                    return; // cannot express an out-of-range u8 key
                }
            }
            super::super::KeyWidth::U16 => {
                c.keys[0] = bad[0];
                c.keys[1] = bad[1];
            }
        }
        assert!(decode(&e, Op::Identity).is_err());
        assert!(decode_counts(&e).is_err());
    }

    #[test]
    fn coverage_mismatch_rejected() {
        let s = small();
        let mut e = encode(&s);
        e.chunks[0].n_voxels -= 1;
        let new_len = e.chunks[0].keys.len() - e.chunks[0].key_width.bytes();
        e.chunks[0].keys.truncate(new_len);
        assert!(matches!(
            decode(&e, Op::Identity),
            Err(CodecError::Inconsistent(_))
        ));
    }

    #[test]
    fn log1p_at_fp16_is_tight_for_u16_counts() {
        // §V-B / §VIII-A: the CosmoFlow decode path is called non-lossy.
        // Verify log1p of every u16 count rounds to FP16 within 2^-11
        // relative error.
        for c in (0..=u16::MAX).step_by(37) {
            let exact = (c as f32).ln_1p();
            let h = F16::from_f32(exact).to_f32();
            let rel = if exact == 0.0 {
                (h - exact).abs()
            } else {
                ((h - exact) / exact).abs()
            };
            assert!(rel <= 2f32.powi(-11), "count {c}: {exact} vs {h}");
        }
    }
}
