//! CosmoFlow decoder: fused-operator table expansion.
//!
//! The decode applies the preprocessing operator to each chunk's table
//! entries (thousands of values), then expands the full channel-major
//! tensor with a pure gather. The gather writes all four channel slots
//! of a voxel from one table row — fusing the storage→training-layout
//! transpose into the decompression, as §X describes.

use super::{EncodedCosmo, KeyWidth};
use crate::ops::{Op, OpCounter};
use crate::CodecError;
use rayon::prelude::*;
use sciml_data::cosmoflow::N_REDSHIFTS;
use sciml_half::F16;

/// Decodes with the fused operator into channel-major FP16.
pub fn decode(enc: &EncodedCosmo, op: Op) -> Result<Vec<F16>, CodecError> {
    let mut out = vec![F16::ZERO; enc.voxels() * N_REDSHIFTS];
    decode_impl(enc, op, None, false, &mut out)?;
    Ok(out)
}

/// [`decode`] into a caller-provided slice, which must be exactly
/// `voxels × N_REDSHIFTS` long (a typed error otherwise, never a
/// panic). Every slot is written; callers may pass recycled buffers.
pub fn decode_into(enc: &EncodedCosmo, op: Op, out: &mut [F16]) -> Result<(), CodecError> {
    decode_impl(enc, op, None, false, out)
}

/// Decode with rayon parallelism across chunks (one task per chunk, the
/// unit the paper's localized tables create).
pub fn decode_parallel(enc: &EncodedCosmo, op: Op) -> Result<Vec<F16>, CodecError> {
    let mut out = vec![F16::ZERO; enc.voxels() * N_REDSHIFTS];
    decode_impl(enc, op, None, true, &mut out)?;
    Ok(out)
}

/// [`decode_parallel`] into a caller-provided slice (same length
/// contract as [`decode_into`]).
pub fn decode_parallel_into(enc: &EncodedCosmo, op: Op, out: &mut [F16]) -> Result<(), CodecError> {
    decode_impl(enc, op, None, true, out)
}

/// Decode while counting operator applications (to verify the fusion
/// work reduction against [`super::baseline_preprocess_with_counter`]).
pub fn decode_with_counter(
    enc: &EncodedCosmo,
    op: Op,
    counter: &OpCounter,
) -> Result<Vec<F16>, CodecError> {
    let mut out = vec![F16::ZERO; enc.voxels() * N_REDSHIFTS];
    decode_impl(enc, op, Some(counter), false, &mut out)?;
    Ok(out)
}

fn decode_impl(
    enc: &EncodedCosmo,
    op: Op,
    counter: Option<&OpCounter>,
    parallel: bool,
    out: &mut [F16],
) -> Result<(), CodecError> {
    let voxels = enc.voxels();
    let covered: u64 = enc.chunks.iter().map(|c| c.n_voxels as u64).sum();
    if covered != voxels as u64 {
        return Err(CodecError::Inconsistent("chunks do not cover grid"));
    }
    if out.len() != voxels * N_REDSHIFTS {
        return Err(CodecError::Inconsistent("output slice length mismatch"));
    }

    // Split the output into per-channel slices so chunk tasks can write
    // disjoint column ranges without aliasing.
    let mut channels: Vec<&mut [F16]> = out.chunks_mut(voxels).collect();

    let decode_chunk = |chunk: &super::CosmoChunk,
                        start: usize,
                        chans: &mut [&mut [F16]]|
     -> Result<(), CodecError> {
        // Fused op on the *unique count values* of this chunk (§V-B:
        // "complex preprocessing operations … are applied to the unique
        // set of values within the sample" — hundreds of applications
        // instead of millions). The memo is a flat LUT indexed directly
        // by count value over the chunk's [lo, hi] range — no hashing,
        // no searching — with a sorted-run sweep as the fallback when
        // the value range is too wide to materialize.
        let apply = |count: u16| -> F16 {
            let x = count as f32;
            let y = match counter {
                Some(c) => c.apply(op, x),
                None => op.apply(x),
            };
            F16::from_f32(y)
        };
        // lint:allow(no_alloc_hot_loop): per-chunk unique-value LUT (§V-B); bounded by table size, amortized over millions of voxels
        let mut lut: Vec<[F16; N_REDSHIFTS]> = vec![[F16::ZERO; N_REDSHIFTS]; chunk.table.len()];
        let (mut lo, mut hi) = (u16::MAX, u16::MIN);
        for g in &chunk.table {
            for &c in g {
                lo = lo.min(c);
                hi = hi.max(c);
            }
        }
        // Localized chunks have tight count ranges; 2^15 entries (96 KiB
        // of scratch) is far beyond any real chunk but still cheap.
        const DENSE_RANGE_MAX: usize = 1 << 15;
        if chunk.table.is_empty() {
            // Nothing to map; an empty table with voxels is caught by
            // the key-range check below.
        } else if ((hi - lo) as usize) < DENSE_RANGE_MAX {
            let range = (hi - lo) as usize + 1;
            // lint:allow(no_alloc_hot_loop): per-chunk dense memo, capped at 2^15 entries
            let mut memo = vec![F16::ZERO; range];
            // lint:allow(no_alloc_hot_loop): per-chunk dense memo, capped at 2^15 entries
            let mut seen = vec![false; range];
            for (gi, g) in chunk.table.iter().enumerate() {
                for (z, &c) in g.iter().enumerate() {
                    let o = (c - lo) as usize;
                    if !seen[o] {
                        seen[o] = true;
                        memo[o] = apply(c);
                    }
                    lut[gi][z] = memo[o];
                }
            }
        } else {
            // Wide-range fallback: sort (value, slot) pairs and sweep
            // equal-value runs, applying the op once per run.
            // lint:allow(no_alloc_hot_loop): wide-range fallback, once per chunk and bounded by table size
            let mut entries: Vec<(u16, u32)> = Vec::with_capacity(chunk.table.len() * N_REDSHIFTS);
            for (gi, g) in chunk.table.iter().enumerate() {
                for (z, &count) in g.iter().enumerate() {
                    entries.push((count, (gi * N_REDSHIFTS + z) as u32));
                }
            }
            entries.sort_unstable();
            let mut i = 0;
            while i < entries.len() {
                let count = entries[i].0;
                let h = apply(count);
                while i < entries.len() && entries[i].0 == count {
                    let slot = entries[i].1 as usize;
                    lut[slot / N_REDSHIFTS][slot % N_REDSHIFTS] = h;
                    i += 1;
                }
            }
        }
        let n = chunk.n_voxels as usize;
        if chunk.keys.len() != n * chunk.key_width.bytes() {
            return Err(CodecError::Corrupt("key payload size"));
        }
        // Validate every key up front with a vectorizable max-scan, so
        // the gather below needs no per-voxel fallible branch.
        let max_key = match chunk.key_width {
            KeyWidth::U8 => chunk.keys.iter().copied().max().map(usize::from),
            KeyWidth::U16 => chunk
                .keys
                .chunks_exact(2)
                .map(|b| u16::from_le_bytes([b[0], b[1]]) as usize)
                .max(),
        };
        if max_key.is_some_and(|m| m >= lut.len()) {
            return Err(CodecError::Corrupt("key out of table range"));
        }
        // Single-pass gather: one key decode per voxel, one LUT row
        // copy, four channel writes — dispatched across the runtime
        // SIMD tiers (scalar keeps the zipped bounds-check-free loop;
        // the vector paths transpose rows to planar in registers). The
        // up-front max-key validation above is the safety contract the
        // unchecked vector indexing relies on.
        if let [c0, c1, c2, c3] = chans {
            super::gather::gather_into(
                chunk.key_width,
                &chunk.keys,
                &lut,
                &mut c0[start..start + n],
                &mut c1[start..start + n],
                &mut c2[start..start + n],
                &mut c3[start..start + n],
            );
        } else {
            for v in 0..n {
                let row = &lut[chunk.key(v)];
                for (z, chan) in chans.iter_mut().enumerate() {
                    chan[start + v] = row[z];
                }
            }
        }
        Ok(())
    };

    if parallel && enc.chunks.len() > 1 {
        // Parallelize across chunks: each task owns a disjoint column
        // range of all four channels. Split the channel slices by chunk.
        let mut per_chunk: Vec<Vec<&mut [F16]>> = (0..enc.chunks.len())
            .map(|_| Vec::new()) // lint:allow(no_alloc_hot_loop): per-decode slice scaffolding for the parallel split
            .collect();
        for chan in channels.drain(..) {
            let mut rest = chan;
            for (ci, c) in enc.chunks.iter().enumerate() {
                let (head, tail) = rest.split_at_mut(c.n_voxels as usize);
                per_chunk[ci].push(head);
                rest = tail;
            }
        }
        enc.chunks
            .par_iter()
            .zip(per_chunk.par_iter_mut())
            .try_for_each(|(chunk, chans)| {
                // Start is 0 within the pre-split slices.
                decode_chunk(chunk, 0, chans)
            })?;
    } else {
        // Chunk start offsets only matter on this path; the parallel
        // branch pre-splits the channels instead.
        let mut start = 0usize;
        for chunk in &enc.chunks {
            decode_chunk(chunk, start, &mut channels)?;
            start += chunk.n_voxels as usize;
        }
    }
    Ok(())
}

/// Losslessly reconstructs the original u16 counts (channel-major).
pub fn decode_counts(enc: &EncodedCosmo) -> Result<Vec<u16>, CodecError> {
    let voxels = enc.voxels();
    let covered: u64 = enc.chunks.iter().map(|c| c.n_voxels as u64).sum();
    if covered != voxels as u64 {
        return Err(CodecError::Inconsistent("chunks do not cover grid"));
    }
    let mut out = vec![0u16; voxels * N_REDSHIFTS];
    let mut start = 0usize;
    for chunk in &enc.chunks {
        let n = chunk.n_voxels as usize;
        if chunk.keys.len() != n * chunk.key_width.bytes() {
            return Err(CodecError::Corrupt("key payload size"));
        }
        for v in 0..n {
            let k = chunk.key(v);
            let g = chunk
                .table
                .get(k)
                .ok_or(CodecError::Corrupt("key out of table range"))?;
            for z in 0..N_REDSHIFTS {
                out[z * voxels + start + v] = g[z];
            }
        }
        start += n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosmoflow::{baseline_preprocess, baseline_preprocess_with_counter, encode};
    use sciml_data::cosmoflow::{CosmoFlowConfig, CosmoSample, UniverseGenerator};

    fn small() -> CosmoSample {
        UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0)
    }

    #[test]
    fn lossless_count_roundtrip() {
        let s = small();
        let e = encode(&s);
        assert_eq!(decode_counts(&e).unwrap(), s.counts);
    }

    #[test]
    fn fused_decode_equals_baseline_exactly() {
        // Same f32 inputs, same op, same final cast — the fused path must
        // be bit-identical to per-voxel preprocessing (this is the
        // "convergence-identical" premise for CosmoFlow).
        let s = small();
        let e = encode(&s);
        for op in [
            Op::Identity,
            Op::Log1p,
            Op::Normalize {
                scale: 0.2,
                offset: 1.0,
            },
            Op::Log1pNormalize {
                scale: 0.5,
                offset: 2.0,
            },
        ] {
            let fused = decode(&e, op).unwrap();
            let base = baseline_preprocess(&s, op);
            assert_eq!(fused, base, "{op:?}");
        }
    }

    #[test]
    fn decode_into_matches_decode_and_checks_length() {
        let s = small();
        let e = encode(&s);
        let want = decode(&e, Op::Log1p).unwrap();
        // Reused, dirty buffer of the right size: every slot rewritten.
        let mut out = vec![F16::ONE; want.len()];
        decode_into(&e, Op::Log1p, &mut out).unwrap();
        assert_eq!(out, want);
        decode_parallel_into(&e, Op::Log1p, &mut out).unwrap();
        assert_eq!(out, want);
        // Short and oversized slices: typed error, no panic, no write.
        for bad in [want.len() - 1, want.len() + 1, 0] {
            let mut wrong = vec![F16::ZERO; bad];
            assert!(matches!(
                decode_into(&e, Op::Log1p, &mut wrong),
                Err(CodecError::Inconsistent(_))
            ));
        }
    }

    #[test]
    fn parallel_decode_matches_sequential() {
        let s = small();
        let e = encode(&s);
        assert_eq!(
            decode(&e, Op::Log1p).unwrap(),
            decode_parallel(&e, Op::Log1p).unwrap()
        );
    }

    #[test]
    fn fusion_reduces_op_applications_by_orders_of_magnitude() {
        let s = small();
        let e = encode(&s);
        let fused_counter = OpCounter::new();
        decode_with_counter(&e, Op::Log1p, &fused_counter).unwrap();
        let base_counter = OpCounter::new();
        baseline_preprocess_with_counter(&s, Op::Log1p, &base_counter);
        assert_eq!(base_counter.count(), s.counts.len() as u64);
        // The fused path applies the op once per unique count value per
        // chunk, never more than once per group entry.
        let unique_values: u64 = e
            .chunks
            .iter()
            .map(|c| {
                let mut vals: Vec<u16> = c.table.iter().flatten().copied().collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len() as u64
            })
            .sum();
        assert_eq!(fused_counter.count(), unique_values);
        assert!(fused_counter.count() <= (e.total_groups() * N_REDSHIFTS) as u64);
        // Work reduction: ≥5× on the 32³ test grid; at the paper's 128³
        // the voxel count grows 64× while unique groups grow far slower,
        // giving the three-orders-of-magnitude reduction (checked by the
        // Fig-5 figures binary at full scale).
        assert!(
            base_counter.count() > 5 * fused_counter.count(),
            "base {} vs fused {}",
            base_counter.count(),
            fused_counter.count()
        );
    }

    #[test]
    fn decode_output_is_channel_major() {
        let s = small();
        let e = encode(&s);
        let out = decode(&e, Op::Identity).unwrap();
        let n = s.voxels();
        for v in [0usize, 17, n - 1] {
            let g = s.group(v);
            for z in 0..N_REDSHIFTS {
                assert_eq!(out[z * n + v].to_f32(), g[z] as f32, "v={v} z={z}");
            }
        }
    }

    #[test]
    fn corrupted_keys_rejected() {
        let s = small();
        let mut e = encode(&s);
        // Point a key beyond the table.
        let c = &mut e.chunks[0];
        let bad = (c.table.len() as u16).to_le_bytes();
        match c.key_width {
            super::super::KeyWidth::U8 => {
                if c.table.len() < 256 {
                    c.keys[0] = c.table.len() as u8;
                } else {
                    return; // cannot express an out-of-range u8 key
                }
            }
            super::super::KeyWidth::U16 => {
                c.keys[0] = bad[0];
                c.keys[1] = bad[1];
            }
        }
        assert!(decode(&e, Op::Identity).is_err());
        assert!(decode_counts(&e).is_err());
    }

    #[test]
    fn coverage_mismatch_rejected() {
        let s = small();
        let mut e = encode(&s);
        e.chunks[0].n_voxels -= 1;
        let new_len = e.chunks[0].keys.len() - e.chunks[0].key_width.bytes();
        e.chunks[0].keys.truncate(new_len);
        assert!(matches!(
            decode(&e, Op::Identity),
            Err(CodecError::Inconsistent(_))
        ));
    }

    #[test]
    fn log1p_at_fp16_is_tight_for_u16_counts() {
        // §V-B / §VIII-A: the CosmoFlow decode path is called non-lossy.
        // Verify log1p of every u16 count rounds to FP16 within 2^-11
        // relative error.
        for c in (0..=u16::MAX).step_by(37) {
            let exact = (c as f32).ln_1p();
            let h = F16::from_f32(exact).to_f32();
            let rel = if exact == 0.0 {
                (h - exact).abs()
            } else {
                ((h - exact) / exact).abs()
            };
            assert!(rel <= 2f32.powi(-11), "count {c}: {exact} vs {h}");
        }
    }
}
