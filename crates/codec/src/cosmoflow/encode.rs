//! CosmoFlow encoder: per-sample (or per-chunk) localized lookup tables.

use super::{CosmoChunk, EncodedCosmo, KeyWidth};
use crate::ops::{Op, OpCounter};
use sciml_data::cosmoflow::{CosmoSample, N_REDSHIFTS};
use sciml_half::F16;
use std::collections::HashMap;

/// Maximum groups a single chunk's table may hold (16-bit key space).
const MAX_GROUPS: usize = 65536;

/// Encodes a sample into keyed lookup tables.
///
/// Voxels are walked in flat order; whenever the running table would
/// exceed the 16-bit key space a chunk is closed and a fresh table
/// started — the paper's "multiple lookup tables" scheme for large
/// decompositions. Tables are sorted for deterministic output.
pub fn encode(sample: &CosmoSample) -> EncodedCosmo {
    let voxels = sample.voxels();
    let mut chunks = Vec::new();
    let mut start = 0usize;
    while start < voxels {
        let (chunk, consumed) = encode_chunk(sample, start, voxels - start);
        chunks.push(chunk);
        start += consumed;
    }
    EncodedCosmo {
        grid: sample.grid as u32,
        label: sample.label.as_array(),
        chunks,
    }
}

/// Builds one chunk starting at flat voxel `start`, covering at most
/// `remaining` voxels. Returns the chunk and how many voxels it covers.
fn encode_chunk(sample: &CosmoSample, start: usize, remaining: usize) -> (CosmoChunk, usize) {
    // Pass 1: scan forward collecting unique groups until the table is
    // full.
    let mut first_seen: HashMap<[u16; N_REDSHIFTS], u32> = HashMap::new();
    let mut consumed = 0usize;
    while consumed < remaining {
        let g = sample.group(start + consumed);
        if !first_seen.contains_key(&g) {
            if first_seen.len() == MAX_GROUPS {
                break;
            }
            first_seen.insert(g, 0);
        }
        consumed += 1;
    }

    // Deterministic table: lexicographic group order.
    let mut table: Vec<[u16; N_REDSHIFTS]> = first_seen.keys().copied().collect();
    table.sort_unstable();
    for (i, g) in table.iter().enumerate() {
        if let Some(slot) = first_seen.get_mut(g) {
            *slot = i as u32;
        }
    }

    let key_width = if table.len() <= 256 {
        KeyWidth::U8
    } else {
        KeyWidth::U16
    };

    // Pass 2: emit keys.
    let mut keys = Vec::with_capacity(consumed * key_width.bytes());
    for v in 0..consumed {
        let idx = first_seen[&sample.group(start + v)];
        match key_width {
            KeyWidth::U8 => keys.push(idx as u8),
            KeyWidth::U16 => keys.extend_from_slice(&(idx as u16).to_le_bytes()),
        }
    }

    (
        CosmoChunk {
            n_voxels: consumed as u32,
            key_width,
            table,
            keys,
        },
        consumed,
    )
}

/// The baseline preprocessing path: widen every count to f32, apply the
/// operator **per voxel value**, cast to FP16. Output layout is
/// channel-major, identical to the fused decoder's.
pub fn baseline_preprocess(sample: &CosmoSample, op: Op) -> Vec<F16> {
    sample
        .counts
        .iter()
        .map(|&c| F16::from_f32(op.apply(c as f32)))
        .collect()
}

/// [`baseline_preprocess`] into a caller-provided slice, which must be
/// exactly `sample.counts.len()` long (a typed error otherwise, never a
/// panic). Every slot is written; callers may pass recycled buffers.
pub fn baseline_preprocess_into(
    sample: &CosmoSample,
    op: Op,
    out: &mut [F16],
) -> Result<(), crate::CodecError> {
    if out.len() != sample.counts.len() {
        return Err(crate::CodecError::Inconsistent(
            "output slice length mismatch",
        ));
    }
    for (o, &c) in out.iter_mut().zip(&sample.counts) {
        *o = F16::from_f32(op.apply(c as f32));
    }
    Ok(())
}

/// Baseline preprocessing with operator-invocation counting (used to
/// demonstrate the unique-value fusion advantage).
pub fn baseline_preprocess_with_counter(
    sample: &CosmoSample,
    op: Op,
    counter: &OpCounter,
) -> Vec<F16> {
    sample
        .counts
        .iter()
        .map(|&c| F16::from_f32(counter.apply(op, c as f32)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_data::cosmoflow::{sample_stats, CosmoFlowConfig, UniverseGenerator};

    fn small() -> CosmoSample {
        UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0)
    }

    #[test]
    fn single_chunk_for_small_samples() {
        let s = small();
        let e = encode(&s);
        assert_eq!(e.chunks.len(), 1);
        assert_eq!(e.chunks[0].n_voxels as usize, s.voxels());
    }

    #[test]
    fn table_matches_unique_group_count() {
        let s = small();
        let e = encode(&s);
        let stats = sample_stats(&s);
        assert_eq!(e.total_groups(), stats.unique_groups);
    }

    #[test]
    fn table_is_sorted_and_deduplicated() {
        let s = small();
        let e = encode(&s);
        let t = &e.chunks[0].table;
        assert!(t.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn key_width_follows_table_size() {
        let s = small();
        let e = encode(&s);
        let c = &e.chunks[0];
        if c.table.len() <= 256 {
            assert_eq!(c.key_width, KeyWidth::U8);
        } else {
            assert_eq!(c.key_width, KeyWidth::U16);
        }
    }

    #[test]
    fn compresses_relative_to_f32_baseline() {
        let s = small();
        let e = encode(&s);
        // Keys are at most 2B vs 16B of f32 per voxel-group: even with
        // table overhead the ratio must exceed 4.
        assert!(e.compression_ratio() > 4.0, "{}", e.compression_ratio());
    }

    #[test]
    fn chunking_kicks_in_when_groups_exceed_key_space() {
        // Craft a sample with > 65536 unique groups: strictly increasing
        // tuples.
        let grid = 48; // 110592 voxels
        let voxels = grid * grid * grid;
        let mut counts = vec![0u16; voxels * N_REDSHIFTS];
        for v in 0..voxels {
            let x = (v % 60000) as u16;
            counts[v] = x;
            counts[voxels + v] = x.wrapping_add((v / 60000) as u16);
            counts[2 * voxels + v] = x / 3;
            counts[3 * voxels + v] = (v / 7) as u16;
        }
        let s = CosmoSample {
            grid,
            counts,
            label: sciml_data::cosmoflow::CosmoParams::MEANS,
        };
        let e = encode(&s);
        assert!(e.chunks.len() > 1, "{} chunks", e.chunks.len());
        let covered: u32 = e.chunks.iter().map(|c| c.n_voxels).sum();
        assert_eq!(covered as usize, voxels);
        for c in &e.chunks {
            assert!(c.table.len() <= MAX_GROUPS);
        }
        // Lossless even in the chunked regime.
        let back = super::super::decode_counts(&e).unwrap();
        assert_eq!(back, s.counts);
    }

    #[test]
    fn baseline_counts_every_application() {
        let s = small();
        let counter = OpCounter::new();
        let out = baseline_preprocess_with_counter(&s, Op::Log1p, &counter);
        assert_eq!(out.len(), s.counts.len());
        assert_eq!(counter.count(), s.counts.len() as u64);
    }
}
