//! Runtime-dispatched LUT gather for the CosmoFlow decode hot loop.
//!
//! After the fused operator has been applied to the chunk's unique
//! values, decode is a pure gather: per voxel, read one key, copy one
//! 4×u16 LUT row into the four channel-major output planes. The gather
//! is pure data movement (no arithmetic), so every vector path is
//! trivially bit-exact; what the intrinsics buy is doing the
//! interleaved→planar transpose in registers instead of four scattered
//! u16 stores per voxel.
//!
//! Caller contract (upheld by `decode_impl`, which validates the max
//! key against the LUT length before dispatching): every key indexes
//! inside `lut`, and all four destination slices have exactly one slot
//! per key. The kernels rely on this to skip per-voxel bounds checks.

use sciml_data::cosmoflow::N_REDSHIFTS;
use sciml_half::F16;
use sciml_simd::{arch_level, record, Kernel, SimdLevel};

use super::KeyWidth;

// The vector kernels treat a LUT row as one 8-byte unit; a channel
// count change must revisit them.
const _: () = assert!(N_REDSHIFTS == 4 && std::mem::size_of::<[F16; N_REDSHIFTS]>() == 8);

/// Gathers LUT rows for one chunk into per-channel output slices,
/// dispatching on the active SIMD tier.
///
/// # Panics
/// Debug-asserts the caller contract (key count matches destination
/// lengths); release builds rely on `decode_impl`'s validation.
#[allow(clippy::too_many_arguments)]
pub(super) fn gather_into(
    key_width: KeyWidth,
    keys: &[u8],
    lut: &[[F16; N_REDSHIFTS]],
    d0: &mut [F16],
    d1: &mut [F16],
    d2: &mut [F16],
    d3: &mut [F16],
) {
    let n = keys.len() / key_width.bytes();
    debug_assert_eq!(d0.len(), n);
    debug_assert_eq!(d1.len(), n);
    debug_assert_eq!(d2.len(), n);
    debug_assert_eq!(d3.len(), n);
    let lvl = arch_level();
    record(Kernel::CosmoGather, lvl);
    match (lvl, key_width) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only active when the probe (or a clamped
        // override) verified avx2 support; keys were validated < lut.len().
        (SimdLevel::Avx2, KeyWidth::U8) => unsafe {
            x86::gather_u8_avx2(keys, lut, d0, d1, d2, d3)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above; u16 keys were validated < lut.len().
        (SimdLevel::Avx2, KeyWidth::U16) => unsafe {
            x86::gather_u16_avx2(keys, lut, d0, d1, d2, d3)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Sse42 implies sse2..sse4.2 were detected; keys validated.
        (SimdLevel::Sse42, KeyWidth::U8) => unsafe {
            x86::gather_u8_sse(keys, lut, d0, d1, d2, d3)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above; u16 keys were validated < lut.len().
        (SimdLevel::Sse42, KeyWidth::U16) => unsafe {
            x86::gather_u16_sse(keys, lut, d0, d1, d2, d3)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64; keys validated < lut.len().
        (SimdLevel::Neon, KeyWidth::U8) => unsafe {
            neon::gather_u8_neon(keys, lut, d0, d1, d2, d3)
        },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: as above; u16 keys were validated < lut.len().
        (SimdLevel::Neon, KeyWidth::U16) => unsafe {
            neon::gather_u16_neon(keys, lut, d0, d1, d2, d3)
        },
        (_, KeyWidth::U8) => gather_u8_scalar(keys, lut, d0, d1, d2, d3),
        (_, KeyWidth::U16) => gather_u16_scalar(keys, lut, d0, d1, d2, d3),
    }
}

/// Canonical scalar gather (the pre-dispatch hot loop, unchanged): the
/// zipped per-channel subslices let the compiler drop all bounds checks
/// from the loop body.
fn gather_u8_scalar(
    keys: &[u8],
    lut: &[[F16; N_REDSHIFTS]],
    d0: &mut [F16],
    d1: &mut [F16],
    d2: &mut [F16],
    d3: &mut [F16],
) {
    for ((((&k, d0), d1), d2), d3) in keys
        .iter()
        .zip(d0.iter_mut())
        .zip(d1.iter_mut())
        .zip(d2.iter_mut())
        .zip(d3.iter_mut())
    {
        let row = &lut[k as usize];
        *d0 = row[0];
        *d1 = row[1];
        *d2 = row[2];
        *d3 = row[3];
    }
}

fn gather_u16_scalar(
    keys: &[u8],
    lut: &[[F16; N_REDSHIFTS]],
    d0: &mut [F16],
    d1: &mut [F16],
    d2: &mut [F16],
    d3: &mut [F16],
) {
    for ((((kb, d0), d1), d2), d3) in keys
        .chunks_exact(2)
        .zip(d0.iter_mut())
        .zip(d1.iter_mut())
        .zip(d2.iter_mut())
        .zip(d3.iter_mut())
    {
        let row = &lut[u16::from_le_bytes([kb[0], kb[1]]) as usize];
        *d0 = row[0];
        *d1 = row[1];
        *d2 = row[2];
        *d3 = row[3];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{gather_u16_scalar, gather_u8_scalar, N_REDSHIFTS};
    use core::arch::x86_64::*;
    use sciml_half::F16;

    // AVX2 processes 8 voxels per iteration. Each LUT row is one u64
    // (4×u16); two rows share a 128-bit lane, so the interleaved→planar
    // transpose is three in-register shuffles:
    //
    //   g       = [row(k0) row(k1) | row(k2) row(k3)]   (per 256-bit reg)
    //   shuffle_epi8 pairs channels within a lane:
    //           [ (r0c0 r1c0) (r0c1 r1c1) | (r0c2 r1c2) ... ]
    //   permutevar8x32 with [0,4,1,5,2,6,3,7] interleaves the lanes:
    //           [ A0 B0 A1 B1 | A2 B2 A3 B3 ]  (A = rows 0-1, B = rows 2-3)
    //   unpacklo/hi_epi64 across the two key quads then yields one
    //   128-bit half per channel, stored with a single 16-byte write.

    /// shuffle_epi8 mask: per 128-bit lane, bytes
    /// [0,1,8,9, 2,3,10,11, 4,5,12,13, 6,7,14,15] — pairs channel z of
    /// the lane's two rows into one u32.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn pair_mask() -> __m256i {
        _mm256_setr_epi8(
            0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15, //
            0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15,
        )
    }

    /// Transposes 8 LUT rows (two registers of 4 rows) into four 8×u16
    /// channel vectors and stores them.
    ///
    /// # Safety
    /// `d0..d3 + i` must each be valid for an unaligned 16-byte write.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store_transposed8(
        g0: __m256i,
        g1: __m256i,
        i: usize,
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let interleave = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        let mask = pair_mask();
        let p0 = _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(g0, mask), interleave);
        let p1 = _mm256_permutevar8x32_epi32(_mm256_shuffle_epi8(g1, mask), interleave);
        // q_lo = [chan0(rows0-7) | chan2(rows0-7)], q_hi = [chan1 | chan3].
        let q_lo = _mm256_unpacklo_epi64(p0, p1);
        let q_hi = _mm256_unpackhi_epi64(p0, p1);
        // SAFETY: caller guarantees 16 writable bytes at each pointer.
        unsafe {
            _mm_storeu_si128(
                d0.as_mut_ptr().add(i).cast::<__m128i>(),
                _mm256_castsi256_si128(q_lo),
            );
            _mm_storeu_si128(
                d1.as_mut_ptr().add(i).cast::<__m128i>(),
                _mm256_castsi256_si128(q_hi),
            );
            _mm_storeu_si128(
                d2.as_mut_ptr().add(i).cast::<__m128i>(),
                _mm256_extracti128_si256::<1>(q_lo),
            );
            _mm_storeu_si128(
                d3.as_mut_ptr().add(i).cast::<__m128i>(),
                _mm256_extracti128_si256::<1>(q_hi),
            );
        }
    }

    /// Loads 4 LUT rows by index into one 256-bit register.
    ///
    /// # Safety
    /// All indices must be `< lut.len()`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load_rows4(lut: &[[F16; N_REDSHIFTS]], k: [usize; 4]) -> __m256i {
        let base = lut.as_ptr().cast::<i64>();
        // SAFETY: each index is in bounds (caller contract), and a LUT
        // row is exactly 8 bytes, so `base + k` reads one whole row.
        unsafe {
            _mm256_set_epi64x(
                base.add(k[3]).read_unaligned(),
                base.add(k[2]).read_unaligned(),
                base.add(k[1]).read_unaligned(),
                base.add(k[0]).read_unaligned(),
            )
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_u8_avx2(
        keys: &[u8],
        lut: &[[F16; N_REDSHIFTS]],
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let n = keys.len();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n so the 8 key reads are in bounds; the
            // destination slices are n long so the 16-byte stores fit;
            // keys were validated < lut.len() by the caller.
            unsafe {
                let k = keys.get_unchecked(i..i + 8);
                let g0 = load_rows4(
                    lut,
                    [k[0] as usize, k[1] as usize, k[2] as usize, k[3] as usize],
                );
                let g1 = load_rows4(
                    lut,
                    [k[4] as usize, k[5] as usize, k[6] as usize, k[7] as usize],
                );
                store_transposed8(g0, g1, i, d0, d1, d2, d3);
            }
            i += 8;
        }
        gather_u8_scalar(
            &keys[i..],
            lut,
            &mut d0[i..],
            &mut d1[i..],
            &mut d2[i..],
            &mut d3[i..],
        );
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather_u16_avx2(
        keys: &[u8],
        lut: &[[F16; N_REDSHIFTS]],
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let n = keys.len() / 2;
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n so the 16 key bytes are in bounds; the
            // destination slices are n long; keys validated < lut.len().
            unsafe {
                let kb = keys.get_unchecked(i * 2..i * 2 + 16);
                let key = |j: usize| u16::from_le_bytes([kb[j * 2], kb[j * 2 + 1]]) as usize;
                let g0 = load_rows4(lut, [key(0), key(1), key(2), key(3)]);
                let g1 = load_rows4(lut, [key(4), key(5), key(6), key(7)]);
                store_transposed8(g0, g1, i, d0, d1, d2, d3);
            }
            i += 8;
        }
        gather_u16_scalar(
            &keys[i * 2..],
            lut,
            &mut d0[i..],
            &mut d1[i..],
            &mut d2[i..],
            &mut d3[i..],
        );
    }

    // SSE tier: 4 voxels per iteration; the same pairing shuffle, then
    // unpacklo/hi_epi32 splits channel pairs across two registers and
    // each channel is stored with one 8-byte write.

    /// # Safety
    /// All indices `< lut.len()`; `d0..d3 + i` valid for 8-byte writes.
    #[inline]
    #[target_feature(enable = "sse4.2")]
    unsafe fn gather4_sse(
        lut: &[[F16; N_REDSHIFTS]],
        k: [usize; 4],
        i: usize,
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let base = lut.as_ptr().cast::<i64>();
        // SAFETY: indices in bounds (caller contract); rows are 8 bytes.
        unsafe {
            let x01 = _mm_set_epi64x(
                base.add(k[1]).read_unaligned(),
                base.add(k[0]).read_unaligned(),
            );
            let x23 = _mm_set_epi64x(
                base.add(k[3]).read_unaligned(),
                base.add(k[2]).read_unaligned(),
            );
            let mask = _mm_setr_epi8(0, 1, 8, 9, 2, 3, 10, 11, 4, 5, 12, 13, 6, 7, 14, 15);
            let a = _mm_shuffle_epi8(x01, mask); // [A0 A1 A2 A3] (rows 0-1 pairs)
            let b = _mm_shuffle_epi8(x23, mask); // [B0 B1 B2 B3] (rows 2-3 pairs)
            let lo = _mm_unpacklo_epi32(a, b); // [chan0(4×u16) chan1(4×u16)]
            let hi = _mm_unpackhi_epi32(a, b); // [chan2 chan3]
            _mm_storel_epi64(d0.as_mut_ptr().add(i).cast::<__m128i>(), lo);
            _mm_storel_epi64(
                d1.as_mut_ptr().add(i).cast::<__m128i>(),
                _mm_srli_si128::<8>(lo),
            );
            _mm_storel_epi64(d2.as_mut_ptr().add(i).cast::<__m128i>(), hi);
            _mm_storel_epi64(
                d3.as_mut_ptr().add(i).cast::<__m128i>(),
                _mm_srli_si128::<8>(hi),
            );
        }
    }

    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn gather_u8_sse(
        keys: &[u8],
        lut: &[[F16; N_REDSHIFTS]],
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let n = keys.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n bounds the key reads and the 8-byte
            // stores; keys were validated < lut.len() by the caller.
            unsafe {
                let k = keys.get_unchecked(i..i + 4);
                gather4_sse(
                    lut,
                    [k[0] as usize, k[1] as usize, k[2] as usize, k[3] as usize],
                    i,
                    d0,
                    d1,
                    d2,
                    d3,
                );
            }
            i += 4;
        }
        gather_u8_scalar(
            &keys[i..],
            lut,
            &mut d0[i..],
            &mut d1[i..],
            &mut d2[i..],
            &mut d3[i..],
        );
    }

    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn gather_u16_sse(
        keys: &[u8],
        lut: &[[F16; N_REDSHIFTS]],
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let n = keys.len() / 2;
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n bounds the 8 key bytes and the 8-byte
            // stores; keys were validated < lut.len() by the caller.
            unsafe {
                let kb = keys.get_unchecked(i * 2..i * 2 + 8);
                let key = |j: usize| u16::from_le_bytes([kb[j * 2], kb[j * 2 + 1]]) as usize;
                gather4_sse(lut, [key(0), key(1), key(2), key(3)], i, d0, d1, d2, d3);
            }
            i += 4;
        }
        gather_u16_scalar(
            &keys[i * 2..],
            lut,
            &mut d0[i..],
            &mut d1[i..],
            &mut d2[i..],
            &mut d3[i..],
        );
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{gather_u16_scalar, gather_u8_scalar, N_REDSHIFTS};
    use core::arch::aarch64::*;
    use sciml_half::F16;

    // NEON: copy 4 rows into a contiguous 16×u16 scratch, then vld4
    // de-interleaves by channel in one instruction and each channel is
    // stored with one 8-byte write.

    /// # Safety
    /// All indices `< lut.len()`; `d0..d3 + i` valid for 8-byte writes.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn gather4_neon(
        lut: &[[F16; N_REDSHIFTS]],
        k: [usize; 4],
        i: usize,
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let mut scratch = [0u16; 16];
        for (j, &idx) in k.iter().enumerate() {
            // SAFETY: idx < lut.len() (caller contract).
            let row = unsafe { lut.get_unchecked(idx) };
            for z in 0..N_REDSHIFTS {
                scratch[j * N_REDSHIFTS + z] = row[z].0;
            }
        }
        // SAFETY: scratch holds 16 u16s; destinations valid for 4-lane
        // stores at offset i (caller contract).
        unsafe {
            let t = vld4_u16(scratch.as_ptr());
            vst1_u16(d0.as_mut_ptr().add(i).cast::<u16>(), t.0);
            vst1_u16(d1.as_mut_ptr().add(i).cast::<u16>(), t.1);
            vst1_u16(d2.as_mut_ptr().add(i).cast::<u16>(), t.2);
            vst1_u16(d3.as_mut_ptr().add(i).cast::<u16>(), t.3);
        }
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gather_u8_neon(
        keys: &[u8],
        lut: &[[F16; N_REDSHIFTS]],
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let n = keys.len();
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n bounds the reads/stores; keys were
            // validated < lut.len() by the caller.
            unsafe {
                let k = keys.get_unchecked(i..i + 4);
                gather4_neon(
                    lut,
                    [k[0] as usize, k[1] as usize, k[2] as usize, k[3] as usize],
                    i,
                    d0,
                    d1,
                    d2,
                    d3,
                );
            }
            i += 4;
        }
        gather_u8_scalar(
            &keys[i..],
            lut,
            &mut d0[i..],
            &mut d1[i..],
            &mut d2[i..],
            &mut d3[i..],
        );
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn gather_u16_neon(
        keys: &[u8],
        lut: &[[F16; N_REDSHIFTS]],
        d0: &mut [F16],
        d1: &mut [F16],
        d2: &mut [F16],
        d3: &mut [F16],
    ) {
        let n = keys.len() / 2;
        let mut i = 0usize;
        while i + 4 <= n {
            // SAFETY: i + 4 <= n bounds the reads/stores; keys were
            // validated < lut.len() by the caller.
            unsafe {
                let kb = keys.get_unchecked(i * 2..i * 2 + 8);
                let key = |j: usize| u16::from_le_bytes([kb[j * 2], kb[j * 2 + 1]]) as usize;
                gather4_neon(lut, [key(0), key(1), key(2), key(3)], i, d0, d1, d2, d3);
            }
            i += 4;
        }
        gather_u16_scalar(
            &keys[i * 2..],
            lut,
            &mut d0[i..],
            &mut d1[i..],
            &mut d2[i..],
            &mut d3[i..],
        );
    }
}
