//! CosmoFlow lookup-table codec (paper §V-B, Fig. 5).
//!
//! A sample's four redshift channels are coupled: the 4-tuple of counts
//! at a voxel takes only tens of thousands of distinct values ("36944
//! unique groups … out of a potential 1.2×10¹¹ possibilities"). Each
//! voxel therefore stores a 1- or 2-byte **key** into a per-sample table
//! of 8-byte groups (4 × u16 counts).
//!
//! Two further paper mechanisms are implemented exactly:
//!
//! * **Operator fusion / reordering** — `log(1+count)` is applied to the
//!   table's unique entries once, *before* expansion, so a 128³ sample
//!   needs thousands of `log` evaluations instead of 8.4 million
//!   ("applying the log operator before decompression is advantageous").
//! * **Multiple lookup tables** — voxels are chunked so each chunk's
//!   table fits the 16-bit key space ("for larger than 128³
//!   decompositions, multiple lookup tables are required"). Chunks also
//!   give the GPU independent decode tasks.
//!
//! The encoding is lossless on counts; the decoder emits FP16 after the
//! fused op (exact for `log1p` of u16 counts at FP16's 11-bit mantissa
//! relative precision, which is why the paper calls this path non-lossy).

mod decode;
mod encode;
mod gather;

pub use decode::{
    decode, decode_counts, decode_into, decode_parallel, decode_parallel_into, decode_with_counter,
};
pub use encode::{
    baseline_preprocess, baseline_preprocess_into, baseline_preprocess_with_counter, encode,
};

use crate::CodecError;
use sciml_data::cosmoflow::N_REDSHIFTS;

/// Key width of a chunk's voxel indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyWidth {
    /// 1-byte keys (≤ 256 groups).
    U8,
    /// 2-byte keys (≤ 65536 groups).
    U16,
}

impl KeyWidth {
    /// Bytes per key.
    pub fn bytes(self) -> usize {
        match self {
            KeyWidth::U8 => 1,
            KeyWidth::U16 => 2,
        }
    }

    fn code(self) -> u8 {
        match self {
            KeyWidth::U8 => 1,
            KeyWidth::U16 => 2,
        }
    }

    fn from_code(c: u8) -> Result<Self, CodecError> {
        match c {
            1 => Ok(KeyWidth::U8),
            2 => Ok(KeyWidth::U16),
            _ => Err(CodecError::Corrupt("bad key width")),
        }
    }
}

/// One chunk: a localized lookup table plus the keys of its voxel range.
#[derive(Debug, Clone, PartialEq)]
pub struct CosmoChunk {
    /// Voxels covered by this chunk (flat, contiguous range).
    pub n_voxels: u32,
    /// Key width chosen from the table size.
    pub key_width: KeyWidth,
    /// Unique groups, lexicographically sorted for determinism.
    pub table: Vec<[u16; N_REDSHIFTS]>,
    /// Keys, `n_voxels * key_width.bytes()` little-endian bytes.
    pub keys: Vec<u8>,
}

impl CosmoChunk {
    /// Reads key number `i`.
    #[inline]
    pub fn key(&self, i: usize) -> usize {
        match self.key_width {
            KeyWidth::U8 => self.keys[i] as usize,
            KeyWidth::U16 => u16::from_le_bytes([self.keys[2 * i], self.keys[2 * i + 1]]) as usize,
        }
    }

    /// Encoded size of the chunk in bytes (header + table + keys).
    pub fn encoded_bytes(&self) -> usize {
        9 + self.table.len() * 2 * N_REDSHIFTS + self.keys.len()
    }
}

/// An encoded CosmoFlow sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedCosmo {
    /// Grid edge length.
    pub grid: u32,
    /// Regression label (Ωm, σ8, n_s, h) — carried losslessly.
    pub label: [f32; 4],
    /// Chunks covering the flat voxel range in order.
    pub chunks: Vec<CosmoChunk>,
}

const MAGIC: &[u8; 4] = b"CFLX";
const VERSION: u32 = 1;

impl EncodedCosmo {
    /// Voxels per channel.
    pub fn voxels(&self) -> usize {
        (self.grid as usize).pow(3)
    }

    /// Total unique groups across chunks.
    pub fn total_groups(&self) -> usize {
        self.chunks.iter().map(|c| c.table.len()).sum()
    }

    /// Encoded size in bytes — the unit that travels the memory
    /// hierarchy.
    pub fn encoded_bytes(&self) -> usize {
        20 + self
            .chunks
            .iter()
            .map(CosmoChunk::encoded_bytes)
            .sum::<usize>()
    }

    /// Raw FP32 baseline size (counts widened to f32, 4 channels).
    pub fn raw_bytes(&self) -> usize {
        self.voxels() * N_REDSHIFTS * 4
    }

    /// Compression ratio vs the f32 baseline.
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes() as f64 / self.encoded_bytes() as f64
    }

    /// Serializes to the wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_bytes() + 16);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.grid.to_le_bytes());
        for l in self.label {
            out.extend_from_slice(&l.to_le_bytes());
        }
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for c in &self.chunks {
            out.extend_from_slice(&c.n_voxels.to_le_bytes());
            out.push(c.key_width.code());
            out.extend_from_slice(&(c.table.len() as u32).to_le_bytes());
            for g in &c.table {
                for &v in g {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            out.extend_from_slice(&c.keys);
        }
        out
    }

    /// Parses the wire format, validating chunk coverage and key ranges.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CodecError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CodecError> {
            if *pos + n > data.len() {
                return Err(CodecError::Truncated);
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(CodecError::Corrupt("bad magic"));
        }
        if crate::wire::le_u32(take(&mut pos, 4)?) != VERSION {
            return Err(CodecError::Corrupt("unsupported version"));
        }
        let grid = crate::wire::le_u32(take(&mut pos, 4)?);
        if grid as u64 > 4096 {
            return Err(CodecError::Corrupt("implausible grid"));
        }
        let mut label = [0f32; 4];
        for l in &mut label {
            *l = crate::wire::le_f32(take(&mut pos, 4)?);
        }
        let n_chunks = crate::wire::le_u32(take(&mut pos, 4)?) as usize;
        let mut chunks = Vec::with_capacity(n_chunks.min(1 << 20));
        let mut covered = 0u64;
        for _ in 0..n_chunks {
            let n_voxels = crate::wire::le_u32(take(&mut pos, 4)?);
            let key_width = KeyWidth::from_code(take(&mut pos, 1)?[0])?;
            let n_groups = crate::wire::le_u32(take(&mut pos, 4)?) as usize;
            let max_groups = match key_width {
                KeyWidth::U8 => 256,
                KeyWidth::U16 => 65536,
            };
            if n_groups == 0 || n_groups > max_groups {
                return Err(CodecError::Corrupt("group count vs key width"));
            }
            let table_bytes = take(&mut pos, n_groups * 2 * N_REDSHIFTS)?;
            let table: Vec<[u16; N_REDSHIFTS]> = table_bytes
                .chunks_exact(2 * N_REDSHIFTS)
                .map(|g| {
                    let mut arr = [0u16; N_REDSHIFTS];
                    for (i, a) in arr.iter_mut().enumerate() {
                        *a = u16::from_le_bytes([g[2 * i], g[2 * i + 1]]);
                    }
                    arr
                })
                .collect();
            let keys = take(&mut pos, n_voxels as usize * key_width.bytes())?.to_vec();
            let chunk = CosmoChunk {
                n_voxels,
                key_width,
                table,
                keys,
            };
            for i in 0..n_voxels as usize {
                if chunk.key(i) >= chunk.table.len() {
                    return Err(CodecError::Corrupt("key out of table range"));
                }
            }
            covered += n_voxels as u64;
            chunks.push(chunk);
        }
        if pos != data.len() {
            return Err(CodecError::Inconsistent("trailing bytes"));
        }
        let enc = EncodedCosmo {
            grid,
            label,
            chunks,
        };
        if covered != enc.voxels() as u64 {
            return Err(CodecError::Inconsistent("chunks do not cover grid"));
        }
        Ok(enc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};

    #[test]
    fn key_width_properties() {
        assert_eq!(KeyWidth::U8.bytes(), 1);
        assert_eq!(KeyWidth::U16.bytes(), 2);
        assert!(KeyWidth::from_code(3).is_err());
    }

    #[test]
    fn wire_roundtrip() {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0);
        let e = encode(&s);
        let e2 = EncodedCosmo::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(e, e2);
    }

    #[test]
    fn wire_rejects_all_truncations() {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(1);
        let bytes = encode(&s).to_bytes();
        for cut in (0..bytes.len()).step_by(101) {
            assert!(
                EncodedCosmo::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn wire_rejects_trailing_garbage() {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(1);
        let mut bytes = encode(&s).to_bytes();
        bytes.push(0);
        assert!(matches!(
            EncodedCosmo::from_bytes(&bytes),
            Err(CodecError::Inconsistent(_))
        ));
    }

    #[test]
    fn chunk_key_reading() {
        let c = CosmoChunk {
            n_voxels: 3,
            key_width: KeyWidth::U16,
            table: vec![[0; 4]; 300],
            keys: vec![0x01, 0x00, 0x2A, 0x01, 0xFF, 0x00],
        };
        assert_eq!(c.key(0), 1);
        assert_eq!(c.key(1), 0x012A);
        assert_eq!(c.key(2), 255);
    }
}
