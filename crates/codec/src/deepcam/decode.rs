//! DeepCAM decoder: per-line independent reconstruction, FP32 compute,
//! FP16 emission, optional fused affine preprocessing.

use super::simd::decode_codes_into;
use super::{EncodedDeepCam, LineMode, CODE_ESCAPE};
use crate::{CodecError, Op};
use rayon::prelude::*;
use sciml_half::slice::{narrow_affine_into, narrow_into};
use sciml_half::F16;
use sciml_simd::{arch_level, record, Kernel};
use std::cell::Cell;

thread_local! {
    /// Per-thread f32 line buffer: reconstruction runs in FP32, then a
    /// single bulk narrowing pass emits FP16 — no per-line allocation.
    static LINE_SCRATCH: Cell<Vec<f32>> = const { Cell::new(Vec::new()) };
}

/// Runs `f` with a zeroed f32 scratch slice of `width` values.
fn with_scratch<R>(width: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    LINE_SCRATCH.with(|slot| {
        let mut buf = slot.take();
        buf.clear();
        buf.resize(width, 0.0);
        let r = f(&mut buf);
        slot.set(buf);
        r
    })
}

/// Applies `op` to the reconstructed f32 line and narrows it to FP16.
///
/// The affine stages go through the runtime-dispatched bulk kernels in
/// `sciml-half`; the logarithmic ops keep a scalar `ln_1p` pre-pass
/// (bit-exact by construction — the per-element float op sequence is
/// identical to `F16::from_f32(op.apply(v))`).
fn finish_into(vals: &mut [f32], op: Op, dst: &mut [F16]) {
    match op {
        Op::Identity => narrow_into(vals, dst),
        Op::Normalize { scale, offset } => narrow_affine_into(vals, scale, offset, dst),
        Op::Log1p => {
            for v in vals.iter_mut() {
                *v = v.ln_1p();
            }
            narrow_into(vals, dst);
        }
        Op::Log1pNormalize { scale, offset } => {
            for v in vals.iter_mut() {
                *v = v.ln_1p();
            }
            narrow_affine_into(vals, scale, offset, dst);
        }
    }
}

/// Decodes a full sample sequentially into channel-major FP16.
pub fn decode(enc: &EncodedDeepCam, op: Op) -> Result<Vec<F16>, CodecError> {
    let mut out = vec![F16::ZERO; enc.n_values()];
    decode_into(enc, op, &mut out)?;
    Ok(out)
}

/// [`decode`] into a caller-provided slice, which must be exactly
/// [`EncodedDeepCam::n_values`] long (a typed error otherwise, never a
/// panic). Every slot is written; callers may pass recycled buffers.
pub fn decode_into(enc: &EncodedDeepCam, op: Op, out: &mut [F16]) -> Result<(), CodecError> {
    let width = enc.width as usize;
    if out.len() != enc.n_values() {
        return Err(CodecError::Inconsistent("output slice length mismatch"));
    }
    for (idx, chunk) in out.chunks_mut(width).enumerate() {
        decode_line_into(enc, idx, op, chunk)?;
    }
    Ok(())
}

/// Decodes a full sample with one rayon task per line — the CPU plugin's
/// execution model ("on the CPU we assign different samples/lines to
/// different threads"; lines are the intra-sample unit).
pub fn decode_parallel(enc: &EncodedDeepCam, op: Op) -> Result<Vec<F16>, CodecError> {
    let mut out = vec![F16::ZERO; enc.n_values()];
    decode_parallel_into(enc, op, &mut out)?;
    Ok(out)
}

/// [`decode_parallel`] into a caller-provided slice (same length
/// contract as [`decode_into`]).
pub fn decode_parallel_into(
    enc: &EncodedDeepCam,
    op: Op,
    out: &mut [F16],
) -> Result<(), CodecError> {
    let width = enc.width as usize;
    if out.len() != enc.n_values() {
        return Err(CodecError::Inconsistent("output slice length mismatch"));
    }
    out.par_chunks_mut(width)
        .enumerate()
        .try_for_each(|(idx, chunk)| decode_line_into(enc, idx, op, chunk))?;
    Ok(())
}

/// Decodes line `idx` into `dst` (length = width). This is the unit of
/// independence the per-line directory exists for; the GPU simulator
/// calls it one warp-task at a time.
pub fn decode_line_into(
    enc: &EncodedDeepCam,
    idx: usize,
    op: Op,
    dst: &mut [F16],
) -> Result<(), CodecError> {
    let width = enc.width as usize;
    if dst.len() != width {
        return Err(CodecError::Inconsistent("destination width mismatch"));
    }
    if idx >= enc.lines.len() {
        return Err(CodecError::Inconsistent("line index out of range"));
    }
    let payload = enc.line_payload(idx);
    match enc.lines[idx].mode {
        LineMode::Constant => {
            if payload.len() != 4 {
                return Err(CodecError::Corrupt("constant line payload size"));
            }
            let v = crate::wire::le_f32(payload);
            let h = F16::from_f32(op.apply(v));
            dst.fill(h);
            Ok(())
        }
        LineMode::RawF32 => {
            if payload.len() != width * 4 {
                return Err(CodecError::Corrupt("raw line payload size"));
            }
            with_scratch(width, |vals| {
                for (v, chunk) in vals.iter_mut().zip(payload.chunks_exact(4)) {
                    *v = crate::wire::le_f32(chunk);
                }
                finish_into(vals, op, dst);
            });
            Ok(())
        }
        LineMode::Delta => decode_delta_line(payload, width, op, dst),
    }
}

/// Walks a delta line payload: segment headers, then codes, then the
/// literal side array.
fn decode_delta_line(
    payload: &[u8],
    width: usize,
    op: Op,
    dst: &mut [F16],
) -> Result<(), CodecError> {
    if payload.len() < 4 {
        return Err(CodecError::Corrupt("delta line header"));
    }
    let n_segments = crate::wire::le_u16(&payload[0..2]) as usize;
    let n_literals = crate::wire::le_u16(&payload[2..4]) as usize;
    let headers_end = 4 + n_segments * 8;
    if payload.len() < headers_end {
        return Err(CodecError::Corrupt("segment headers truncated"));
    }

    // Validation pass over the headers: total values covered must equal
    // the width (codes = width - n_segments). Headers are re-read in the
    // decode pass below rather than staged in a scratch vector — this
    // runs once per line of every sample, so it must not allocate.
    let mut total = 0usize;
    for si in 0..n_segments {
        let h = &payload[4 + si * 8..4 + si * 8 + 8];
        let count = crate::wire::le_u16(&h[4..6]) as usize;
        if count == 0 {
            return Err(CodecError::Corrupt("empty segment"));
        }
        total += count;
    }
    if total != width {
        return Err(CodecError::Inconsistent("segment counts != width"));
    }
    let n_codes = width - n_segments;
    let codes_end = headers_end + n_codes;
    let literals_end = codes_end + n_literals * 4;
    if payload.len() != literals_end {
        return Err(CodecError::Corrupt("delta line payload size"));
    }
    let codes = &payload[headers_end..codes_end];
    let literal_bytes = &payload[codes_end..literals_end];

    record(Kernel::DeepcamLine, arch_level());
    with_scratch(width, |vals| {
        let mut ci = 0usize; // code cursor
        let mut li = 0usize; // literal cursor
        let mut di = 0usize; // destination cursor
        for si in 0..n_segments {
            let h = &payload[4 + si * 8..4 + si * 8 + 8];
            let head = crate::wire::le_f32(&h[0..4]);
            let count = crate::wire::le_u16(&h[4..6]) as usize;
            let base_exp = h[6] as i8;
            // Vector pass: code bytes → f32 deltas. Escapes land as 0.0
            // and are patched from the literal array below.
            let seg_codes = &codes[ci..ci + count - 1];
            decode_codes_into(seg_codes, base_exp, &mut vals[di + 1..di + count]);
            // Sequential pass: prefix-accumulate in FP32 (the paper's
            // software-emulated path; FP16 emission happens in bulk at
            // the end of the line).
            let mut prev = head;
            vals[di] = head;
            for (j, &code) in seg_codes.iter().enumerate() {
                let slot = di + 1 + j;
                let v = if code == CODE_ESCAPE {
                    if li >= n_literals {
                        return Err(CodecError::Corrupt("literal index out of range"));
                    }
                    let l = crate::wire::le_f32(&literal_bytes[li * 4..li * 4 + 4]);
                    li += 1;
                    l
                } else {
                    prev + vals[slot]
                };
                vals[slot] = v;
                prev = v;
            }
            ci += count - 1;
            di += count;
        }
        if li != n_literals {
            return Err(CodecError::Inconsistent("unused literals"));
        }
        finish_into(vals, op, dst);
        Ok(())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deepcam::encode::{encode, EncoderConfig};
    use crate::ErrorStats;
    use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig, DeepCamSample};
    use sciml_half::slice::widen;

    fn roundtrip_sample() -> (DeepCamSample, EncodedDeepCam) {
        let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
        let (e, _) = encode(&s, &EncoderConfig::default());
        (s, e)
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let (_, e) = roundtrip_sample();
        let a = decode(&e, Op::Identity).unwrap();
        let b = decode_parallel(&e, Op::Identity).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn reconstruction_error_is_bounded_as_paper_reports() {
        let (s, e) = roundtrip_sample();
        let out = decode(&e, Op::Identity).unwrap();
        let wide = widen(&out);
        let mut stats = ErrorStats::new(1.0);
        stats.record_slices(&wide, &s.data);
        // The paper reports ≈3 % of values above 10 % relative error;
        // our tolerance-tuned encoder must stay in single digits.
        assert!(
            stats.frac_above_10pct() < 0.10,
            "frac = {}",
            stats.frac_above_10pct()
        );
        // And typical values must be tight (escape tolerance 2 %).
        let in_tolerance: u64 = stats.buckets[..4].iter().sum();
        assert!(
            in_tolerance as f64 / stats.total as f64 > 0.90,
            "{:?}",
            stats.buckets
        );
    }

    #[test]
    fn large_errors_concentrate_near_zero() {
        let (s, e) = roundtrip_sample();
        let out = widen(&decode(&e, Op::Identity).unwrap());
        let mut stats = ErrorStats::new(1.0);
        stats.record_slices(&out, &s.data);
        if stats.large_error_total > 0 {
            assert!(
                stats.small_value_share() > 0.5,
                "share = {}",
                stats.small_value_share()
            );
        }
    }

    #[test]
    fn wire_roundtrip_decodes_identically() {
        let (_, e) = roundtrip_sample();
        let e2 = EncodedDeepCam::from_bytes(&e.to_bytes()).unwrap();
        assert_eq!(
            decode(&e, Op::Identity).unwrap(),
            decode(&e2, Op::Identity).unwrap()
        );
    }

    #[test]
    fn fused_normalize_exact_on_representable_values() {
        // Values, deltas, and normalized results all exactly
        // representable: the fused path must equal post-normalization
        // bit for bit (pure commutation, no rounding in the way).
        let width = 64;
        let line: Vec<f32> = (0..width).map(|i| 2.0 + i as f32 * 0.25).collect();
        let s = DeepCamSample {
            width,
            height: 1,
            channels: 1,
            data: line,
            mask: vec![0; width],
        };
        let (e, _) = encode(&s, &EncoderConfig::default());
        let op = Op::Normalize {
            scale: 0.5,
            offset: 2.0,
        };
        let fused = decode(&e, op).unwrap();
        let plain = decode(&e, Op::Identity).unwrap();
        for (f, p) in fused.iter().zip(&plain) {
            assert_eq!(*f, F16::from_f32(op.apply(p.to_f32())));
        }
    }

    #[test]
    fn fused_normalize_is_at_least_as_accurate_as_post_normalize() {
        // On real data the fused path normalizes the f32 reconstruction
        // before the single f16 rounding; normalizing an already-rounded
        // f16 can only add error. Check the fused result tracks the
        // true normalized reference at least as tightly on aggregate.
        let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(2);
        let (e, _) = encode(&s, &EncoderConfig::default());
        let op = Op::Normalize {
            scale: 0.05,
            offset: 270.0,
        };
        let fused = decode(&e, op).unwrap();
        let plain = decode(&e, Op::Identity).unwrap();
        let mut fused_err = 0f64;
        let mut post_err = 0f64;
        for ((f, p), &x) in fused.iter().zip(&plain).zip(&s.data) {
            let reference = op.apply(x);
            let post = F16::from_f32(op.apply(p.to_f32()));
            fused_err += (f.to_f32() - reference).abs() as f64;
            post_err += (post.to_f32() - reference).abs() as f64;
        }
        assert!(
            fused_err <= post_err * 1.001,
            "fused {fused_err} vs post {post_err}"
        );
    }

    #[test]
    fn corrupt_payload_is_rejected_not_panicking() {
        let (_, e) = roundtrip_sample();
        let mut bytes = e.to_bytes();
        // Flip bytes throughout; decode must never panic.
        for i in (0..bytes.len()).step_by(97) {
            bytes[i] ^= 0x5A;
            if let Ok(parsed) = EncodedDeepCam::from_bytes(&bytes) {
                let _ = decode(&parsed, Op::Identity);
            }
            bytes[i] ^= 0x5A;
        }
    }

    #[test]
    fn empty_mask_is_preserved_and_roundtrips() {
        let (s, e) = roundtrip_sample();
        assert_eq!(e.mask, s.mask);
    }

    #[test]
    fn decode_into_matches_decode_and_checks_length() {
        let (_, e) = roundtrip_sample();
        let want = decode(&e, Op::Identity).unwrap();
        // Dirty recycled buffer: every slot must be rewritten.
        let mut out = vec![F16::ONE; want.len()];
        decode_into(&e, Op::Identity, &mut out).unwrap();
        assert_eq!(out, want);
        decode_parallel_into(&e, Op::Identity, &mut out).unwrap();
        assert_eq!(out, want);
        for bad in [want.len() - 1, want.len() + 1, 0] {
            let mut wrong = vec![F16::ZERO; bad];
            assert!(matches!(
                decode_into(&e, Op::Identity, &mut wrong),
                Err(CodecError::Inconsistent(_))
            ));
            assert!(matches!(
                decode_parallel_into(&e, Op::Identity, &mut wrong),
                Err(CodecError::Inconsistent(_))
            ));
        }
    }

    #[test]
    fn decode_line_into_checks_width() {
        let (_, e) = roundtrip_sample();
        let mut short = vec![F16::ZERO; 3];
        assert!(decode_line_into(&e, 0, Op::Identity, &mut short).is_err());
    }
}
