//! DeepCAM encoder: per-line mode selection and segmented delta coding.

use super::{
    decode_code, exp2i, EncodedDeepCam, LineMeta, LineMode, Segment, CODE_ESCAPE, CODE_ZERO,
    EXP_WINDOW,
};
use rayon::prelude::*;
use sciml_data::deepcam::DeepCamSample;

/// Tunables of the encoder.
#[derive(Debug, Clone, Copy)]
pub struct EncoderConfig {
    /// Relative reconstruction error above which a value is escaped to a
    /// literal (bounds worst-case drift on values that matter).
    pub escape_rel_tol: f32,
    /// Absolute floor for the relative-error denominator, so near-zero
    /// values are *not* aggressively escaped — this is precisely where
    /// the paper accepts its ≈3 % error tail.
    pub abs_floor: f32,
    /// A line whose segment count exceeds `width / min_values_per_segment`
    /// is stored raw ("where the number of segments is large, we do not
    /// compress these lines").
    pub min_values_per_segment: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            escape_rel_tol: 0.02,
            abs_floor: 1.0,
            min_values_per_segment: 8,
        }
    }
}

/// Aggregate statistics of one encode run (Fig. 4 reporting).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EncodeStats {
    /// Lines stored as a broadcast constant.
    pub constant_lines: usize,
    /// Lines kept as raw f32.
    pub raw_lines: usize,
    /// Lines stored with delta segments.
    pub delta_lines: usize,
    /// Total segments emitted across delta lines.
    pub segments: usize,
    /// Escape literals emitted.
    pub literals: usize,
    /// Zero-delta codes emitted.
    pub zero_codes: usize,
}

/// Encodes a sample, returning the encoded form and statistics.
pub fn encode(sample: &DeepCamSample, cfg: &EncoderConfig) -> (EncodedDeepCam, EncodeStats) {
    let width = sample.width;
    let mut lines = Vec::with_capacity(sample.channels * sample.height);
    let mut payload = Vec::new();
    let mut stats = EncodeStats::default();

    for c in 0..sample.channels {
        for y in 0..sample.height {
            let line = sample.line(c, y);
            let offset = payload.len() as u32;
            let mode = encode_line(line, cfg, &mut payload, &mut stats);
            lines.push(LineMeta {
                mode,
                offset,
                len: payload.len() as u32 - offset,
            });
        }
    }

    (
        EncodedDeepCam {
            width: width as u32,
            height: sample.height as u32,
            channels: sample.channels as u32,
            lines,
            payload,
            mask: sample.mask.clone(),
        },
        stats,
    )
}

/// Encodes a sample with one rayon task per line. Lines are independent
/// for encoding just as for decoding; per-line payloads are stitched
/// together afterwards, so output is byte-identical to [`encode`].
pub fn encode_parallel(
    sample: &DeepCamSample,
    cfg: &EncoderConfig,
) -> (EncodedDeepCam, EncodeStats) {
    let n_lines = sample.channels * sample.height;
    let per_line: Vec<(Vec<u8>, LineMode, EncodeStats)> = (0..n_lines)
        .into_par_iter()
        .map(|idx| {
            let (c, y) = (idx / sample.height, idx % sample.height);
            let mut payload = Vec::new();
            let mut stats = EncodeStats::default();
            let mode = encode_line(sample.line(c, y), cfg, &mut payload, &mut stats);
            (payload, mode, stats)
        })
        .collect();

    let total: usize = per_line.iter().map(|(p, _, _)| p.len()).sum();
    let mut payload = Vec::with_capacity(total);
    let mut lines = Vec::with_capacity(n_lines);
    let mut stats = EncodeStats::default();
    for (line_payload, mode, line_stats) in per_line {
        lines.push(LineMeta {
            mode,
            offset: payload.len() as u32,
            len: line_payload.len() as u32,
        });
        payload.extend_from_slice(&line_payload);
        stats.merge(&line_stats);
    }
    (
        EncodedDeepCam {
            width: sample.width as u32,
            height: sample.height as u32,
            channels: sample.channels as u32,
            lines,
            payload,
            mask: sample.mask.clone(),
        },
        stats,
    )
}

impl EncodeStats {
    /// Accumulates another run's counters (per-line parallel encoding).
    pub fn merge(&mut self, other: &EncodeStats) {
        self.constant_lines += other.constant_lines;
        self.raw_lines += other.raw_lines;
        self.delta_lines += other.delta_lines;
        self.segments += other.segments;
        self.literals += other.literals;
        self.zero_codes += other.zero_codes;
    }
}

/// Encodes one line, appending its payload and returning the chosen mode.
fn encode_line(
    line: &[f32],
    cfg: &EncoderConfig,
    payload: &mut Vec<u8>,
    stats: &mut EncodeStats,
) -> LineMode {
    debug_assert!(!line.is_empty());
    // Constant line: bitwise-identical values.
    if line.iter().all(|v| v.to_bits() == line[0].to_bits()) {
        payload.extend_from_slice(&line[0].to_le_bytes());
        stats.constant_lines += 1;
        return LineMode::Constant;
    }

    match try_delta_encode(line, cfg) {
        Some(enc) if enc.encoded_len() < line.len() * 4 => {
            stats.delta_lines += 1;
            stats.segments += enc.segments.len();
            stats.literals += enc.literals.len();
            stats.zero_codes += enc.codes.iter().filter(|&&c| c == CODE_ZERO).count();
            enc.write(payload);
            LineMode::Delta
        }
        _ => {
            for v in line {
                payload.extend_from_slice(&v.to_le_bytes());
            }
            stats.raw_lines += 1;
            LineMode::RawF32
        }
    }
}

/// In-memory delta encoding of one line before serialization.
struct DeltaLine {
    segments: Vec<Segment>,
    /// One code per non-head value, segment-concatenated.
    codes: Vec<u8>,
    literals: Vec<f32>,
}

impl DeltaLine {
    fn encoded_len(&self) -> usize {
        4 + self.segments.len() * 8 + self.codes.len() + self.literals.len() * 4
    }

    /// Wire layout: `u16 n_segments | u16 n_literals | segment headers
    /// (f32 head, u16 count, i8 base_exp, u8 pad) | codes | literal f32s`.
    fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.segments.len() as u16).to_le_bytes());
        out.extend_from_slice(&(self.literals.len() as u16).to_le_bytes());
        for s in &self.segments {
            out.extend_from_slice(&s.head.to_le_bytes());
            out.extend_from_slice(&s.count.to_le_bytes());
            out.push(s.base_exp as u8);
            out.push(0);
        }
        out.extend_from_slice(&self.codes);
        for l in &self.literals {
            out.extend_from_slice(&l.to_le_bytes());
        }
    }
}

/// Exponent of |v| as floor(log2), clamped to the i8 range the wire
/// format stores. `None` for zero/non-finite input.
#[inline]
fn exponent_of(v: f32) -> Option<i32> {
    if v == 0.0 || !v.is_finite() {
        return None;
    }
    let bits = v.to_bits();
    let exp = ((bits >> 23) & 0xFF) as i32;
    if exp == 0 {
        // Subnormal: exponent below -126; clamp — such deltas will be
        // quantized to zero anyway at any plausible base exponent.
        Some(-126)
    } else {
        Some(exp - 127)
    }
}

/// Two-pass delta encoding. Pass 1 segments the line on true-delta
/// exponent windows; pass 2 quantizes against the *reconstructed*
/// previous value (mirroring the decoder) and escapes when drift or
/// range force it. Returns `None` if the line produces too many
/// segments (abrupt-transition fallback).
fn try_delta_encode(line: &[f32], cfg: &EncoderConfig) -> Option<DeltaLine> {
    // Pass 1: segmentation on true deltas.
    let mut boundaries: Vec<(usize, usize, i8)> = Vec::new(); // (start, count, base_exp)
    let mut start = 0usize;
    let mut min_e: Option<i32> = None;
    let mut max_e: Option<i32> = None;
    for j in 1..line.len() {
        if !line[j].is_finite() {
            // Non-finite data: bail to raw.
            return None;
        }
        let d = line[j] - line[j - 1];
        let e = exponent_of(d);
        let (new_min, new_max) = match e {
            None => (min_e, max_e),
            Some(e) => (
                Some(min_e.map_or(e, |m| m.min(e))),
                Some(max_e.map_or(e, |m| m.max(e))),
            ),
        };
        let fits = match (new_min, new_max) {
            (Some(lo), Some(hi)) => hi - lo <= EXP_WINDOW && (-128..=127).contains(&lo),
            _ => true,
        };
        let count = j - start + 1;
        if fits && count <= u16::MAX as usize {
            min_e = new_min;
            max_e = new_max;
        } else {
            boundaries.push((start, j - start, min_e.unwrap_or(0).clamp(-128, 127) as i8));
            start = j;
            min_e = None;
            max_e = None;
            // The new segment's head is line[j]; its deltas start at j+1.
        }
    }
    boundaries.push((
        start,
        line.len() - start,
        min_e.unwrap_or(0).clamp(-128, 127) as i8,
    ));

    let max_segments = (line.len() / cfg.min_values_per_segment).max(1);
    if boundaries.len() > max_segments {
        return None;
    }

    // Pass 2: quantize with reconstruction mirror.
    let mut segments = Vec::with_capacity(boundaries.len());
    let mut codes = Vec::with_capacity(line.len());
    let mut literals = Vec::new();
    for &(s, count, base_exp) in &boundaries {
        segments.push(Segment {
            head: line[s],
            count: count as u16,
            base_exp,
        });
        let mut prev = line[s];
        for &x in &line[s + 1..s + count] {
            let d = x - prev;
            let (code, recon) = quantize(d, prev, x, base_exp, cfg);
            if code == CODE_ESCAPE {
                literals.push(x);
                if literals.len() > u16::MAX as usize {
                    return None;
                }
            }
            codes.push(code);
            prev = recon;
        }
    }
    Some(DeltaLine {
        segments,
        codes,
        literals,
    })
}

/// Quantizes delta `d` (from reconstructed `prev` toward true `x`)
/// against `base_exp`. Returns the code byte and the reconstructed value
/// the decoder will produce.
fn quantize(d: f32, prev: f32, x: f32, base_exp: i8, cfg: &EncoderConfig) -> (u8, f32) {
    let code = quantize_code(d, base_exp);
    // `quantize_code` never yields the escape code, so `decode_code`
    // always succeeds; degrade to a literal escape instead of panicking
    // if that invariant ever breaks.
    match code.and_then(|c| decode_code(c, base_exp).map(|d| (c, d))) {
        Some((c, delta_hat)) => {
            let recon = prev + delta_hat;
            let denom = x.abs().max(cfg.abs_floor);
            if ((recon - x) / denom).abs() > cfg.escape_rel_tol {
                (CODE_ESCAPE, x)
            } else {
                (c, recon)
            }
        }
        None => (CODE_ESCAPE, x),
    }
}

/// Maps a delta to its 8-bit code, or `None` when out of range.
fn quantize_code(d: f32, base_exp: i8) -> Option<u8> {
    if d == 0.0 {
        return Some(CODE_ZERO);
    }
    if !d.is_finite() {
        return None;
    }
    let sign: u8 = if d < 0.0 { 0x80 } else { 0 };
    let a = d.abs();
    let base = base_exp as i32;
    let mut e = exponent_of(a)?;
    if e < base {
        // Below representable range: round to zero or the smallest
        // representable magnitude, whichever is nearer. The positive
        // (s=0, e_off=0, m=0) pattern collides with the zero code, so it
        // carries the same mantissa nudge as the in-range path below.
        return if a < exp2i(base) * 0.5 {
            Some(CODE_ZERO)
        } else if sign == 0 {
            Some(0x01)
        } else {
            Some(0x80)
        };
    }
    let mut m = ((a / exp2i(e) - 1.0) * 16.0).round() as i32;
    if m == 16 {
        e += 1;
        m = 0;
    }
    let e_off = e - base;
    if e_off > EXP_WINDOW {
        return None;
    }
    let mut code = sign | ((e_off as u8) << 4) | (m as u8);
    if code == CODE_ZERO {
        // (s=0, e_off=0, m=0) collides with the zero code; nudge the
        // mantissa (1/16 relative error, within quantization tolerance).
        code = 0x01;
    }
    if code == CODE_ESCAPE {
        // Collides with the escape code; nudge the mantissa down.
        code = 0xFE;
    }
    Some(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deepcam::decode;
    use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};

    fn mk_sample(line_data: Vec<Vec<f32>>) -> DeepCamSample {
        let width = line_data[0].len();
        let height = line_data.len();
        DeepCamSample {
            width,
            height,
            channels: 1,
            data: line_data.concat(),
            mask: vec![0; width * height],
        }
    }

    #[test]
    fn constant_line_detected() {
        let s = mk_sample(vec![vec![3.5f32; 64]]);
        let (e, st) = encode(&s, &EncoderConfig::default());
        assert_eq!(st.constant_lines, 1);
        assert_eq!(e.lines[0].mode, LineMode::Constant);
        assert_eq!(e.lines[0].len, 4);
    }

    #[test]
    fn smooth_line_uses_delta_and_compresses() {
        let line: Vec<f32> = (0..256).map(|i| 100.0 + (i as f32 * 0.05).sin()).collect();
        let s = mk_sample(vec![line]);
        let (e, st) = encode(&s, &EncoderConfig::default());
        assert_eq!(st.delta_lines, 1, "{st:?}");
        assert!(e.lines[0].len < 256 * 4 / 2, "len = {}", e.lines[0].len);
    }

    #[test]
    fn abrupt_exponent_swings_fall_back_to_raw() {
        // Delta exponents alternate between 8 and -1 every two values;
        // the 3-bit window (width 7) breaks constantly, so the segment
        // count explodes past the width/min_values_per_segment limit and
        // the line is stored raw.
        let line: Vec<f32> = (0..256)
            .map(|i| match i % 4 {
                0 | 2 => 0.0,
                1 => 256.0,
                _ => 0.5,
            })
            .collect();
        let s = mk_sample(vec![line]);
        let (e, st) = encode(&s, &EncoderConfig::default());
        assert_eq!(st.raw_lines, 1, "{st:?}");
        assert_eq!(e.lines[0].mode, LineMode::RawF32);
    }

    #[test]
    fn alternating_spikes_self_correct_within_tolerance() {
        // An adversarial-looking up/down line stays compressible: the
        // mirrored-reconstruction encoder re-encodes the exact quantized
        // magnitude on the way back down, so drift cancels. Verify the
        // decode honours the escape tolerance everywhere.
        let line: Vec<f32> = (0..256)
            .map(|i| {
                let r = ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32) as f32 / 4.0e9;
                // Magnitudes stay within FP16 range (|x| < 65504): real
                // CAM5 fields do, and the decode emits FP16.
                if i % 2 == 0 {
                    r * 3e4
                } else {
                    r * 1e-3
                }
            })
            .collect();
        let cfg = EncoderConfig::default();
        let s = mk_sample(vec![line.clone()]);
        let (e, _) = encode(&s, &cfg);
        let out = decode(&e, crate::Op::Identity).unwrap();
        for (h, &x) in out.iter().zip(&line) {
            let denom = x.abs().max(cfg.abs_floor);
            let rel = ((h.to_f32() - x) / denom).abs();
            // Escape tolerance plus the final f16 rounding.
            assert!(
                rel <= cfg.escape_rel_tol + 2e-3,
                "x={x} got {h:?} rel={rel}"
            );
        }
    }

    #[test]
    fn quantize_code_boundaries() {
        // Exact power of two at the base exponent: m = 0, e_off = 0.
        assert_eq!(quantize_code(0.25, -2), Some(0x01)); // collision nudge
        assert_eq!(quantize_code(-0.25, -2), Some(0x80));
        // One mantissa step above.
        let d = 0.25 * (1.0 + 1.0 / 16.0);
        assert_eq!(quantize_code(d, -2), Some(0x01));
        // Largest in-window value.
        let big = (1.0 + 15.0 / 16.0) * 2f32.powi(-2 + 7);
        assert_eq!(quantize_code(big, -2), Some(0x7F));
        // Out of window.
        assert_eq!(quantize_code(2f32.powi(8), 0), None);
        // Below window rounds to zero or smallest.
        assert_eq!(quantize_code(2f32.powi(-9), -2), Some(CODE_ZERO));
        assert_eq!(quantize_code(0.24, -2), Some(0x01));
        // Zero delta.
        assert_eq!(quantize_code(0.0, 0), Some(CODE_ZERO));
    }

    #[test]
    fn escape_collision_is_avoided() {
        // s=1, e_off=7, m=15 would be 0xFF: must nudge to 0xFE.
        let d = -(1.0 + 15.0 / 16.0) * 2f32.powi(7);
        assert_eq!(quantize_code(d, 0), Some(0xFE));
    }

    #[test]
    fn exponent_of_basics() {
        assert_eq!(exponent_of(1.0), Some(0));
        assert_eq!(exponent_of(1.5), Some(0));
        assert_eq!(exponent_of(2.0), Some(1));
        assert_eq!(exponent_of(0.5), Some(-1));
        assert_eq!(exponent_of(0.0), None);
        assert_eq!(exponent_of(f32::NAN), None);
        assert_eq!(exponent_of(1e-40), Some(-126));
    }

    #[test]
    fn realistic_sample_mostly_delta_lines() {
        let sample = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
        let (enc, st) = encode(&sample, &EncoderConfig::default());
        assert!(
            st.delta_lines * 2 > enc.n_lines(),
            "delta {} of {} ({st:?})",
            st.delta_lines,
            enc.n_lines()
        );
        assert!(enc.compression_ratio() > 2.0, "{}", enc.compression_ratio());
        // Sanity: decodable.
        let out = decode(&enc, crate::Op::Identity).unwrap();
        assert_eq!(out.len(), sample.data.len());
    }

    #[test]
    fn parallel_encode_is_byte_identical_to_sequential() {
        let sample = ClimateGenerator::new(DeepCamConfig::test_small()).generate(3);
        let cfg = EncoderConfig::default();
        let (seq, seq_stats) = encode(&sample, &cfg);
        let (par, par_stats) = encode_parallel(&sample, &cfg);
        assert_eq!(seq, par);
        assert_eq!(seq_stats, par_stats);
    }

    #[test]
    fn encode_stats_add_up() {
        let sample = ClimateGenerator::new(DeepCamConfig::test_small()).generate(1);
        let (enc, st) = encode(&sample, &EncoderConfig::default());
        assert_eq!(
            st.constant_lines + st.raw_lines + st.delta_lines,
            enc.n_lines()
        );
    }
}
