//! DeepCAM differential floating-point codec (paper §V-A, Fig. 4).
//!
//! A sample is encoded **line by line** (one row of one channel). Every
//! line is independently decodable via a per-line directory — the design
//! property that lets the GPU assign lines to warps and the CPU assign
//! lines to threads without synchronization.
//!
//! Three line modes, chosen per line for the best space saving:
//!
//! * [`LineMode::Constant`] — "special encoding for the case where all
//!   neighboring values are similar": a single pivot value broadcast.
//! * [`LineMode::Delta`] — the line is split into segments; each segment
//!   stores its head value (f32), a base exponent, and one 8-bit code per
//!   remaining value: `[sign:1][exp_off:3][mantissa:4]` relative to the
//!   segment's base exponent. Code `0x00` is a zero delta and `0xFF`
//!   escapes to a literal f32 side array (isolated spikes).
//! * [`LineMode::RawF32`] — "lines with abrupt transitions or where the
//!   number of segments is large" stay uncompressed.
//!
//! Decode reconstructs in f32 and emits f16 (`§V-A`: "we emit
//! half-precision values, the computation is conducted in
//! single-precision"). The encoder mirrors the decoder's reconstruction
//! so quantization drift is accounted, and escapes bound the error.

mod decode;
mod encode;
mod simd;

pub use decode::{decode, decode_into, decode_line_into, decode_parallel, decode_parallel_into};
pub use encode::{encode, encode_parallel, EncodeStats, EncoderConfig};

use crate::CodecError;

/// Delta code escaping to a literal f32.
pub const CODE_ESCAPE: u8 = 0xFF;
/// Delta code meaning "zero delta".
pub const CODE_ZERO: u8 = 0x00;
/// Exponent-offset window width expressible by the 3-bit field.
pub const EXP_WINDOW: i32 = 7;

/// Per-line encoding mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineMode {
    /// All values identical: payload is one f32.
    Constant,
    /// Uncompressed f32 values.
    RawF32,
    /// Segmented differential encoding.
    Delta,
}

impl LineMode {
    fn code(self) -> u8 {
        match self {
            LineMode::Constant => 0,
            LineMode::RawF32 => 1,
            LineMode::Delta => 2,
        }
    }

    fn from_code(c: u8) -> Result<Self, CodecError> {
        match c {
            0 => Ok(LineMode::Constant),
            1 => Ok(LineMode::RawF32),
            2 => Ok(LineMode::Delta),
            _ => Err(CodecError::Corrupt("unknown line mode")),
        }
    }
}

/// Directory entry: where a line's payload lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineMeta {
    /// Encoding mode.
    pub mode: LineMode,
    /// Payload byte offset.
    pub offset: u32,
    /// Payload byte length.
    pub len: u32,
}

/// Segment header inside a delta line (8 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First value of the segment, stored exactly.
    pub head: f32,
    /// Values covered including the head.
    pub count: u16,
    /// Base (minimum) delta exponent for the segment.
    pub base_exp: i8,
}

/// An encoded DeepCAM sample.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedDeepCam {
    /// Image width (values per line).
    pub width: u32,
    /// Image height (lines per channel).
    pub height: u32,
    /// Channel count.
    pub channels: u32,
    /// Per-line directory, `channels * height` entries, channel-major.
    pub lines: Vec<LineMeta>,
    /// Concatenated line payloads.
    pub payload: Vec<u8>,
    /// Losslessly carried label mask (may be empty).
    pub mask: Vec<u8>,
}

const MAGIC: &[u8; 4] = b"DCMX";
/// Wire version 1: directory + raw payload bytes.
const VERSION: u32 = 1;
/// Wire version 2: the payload section travels through `sciml_pack`
/// as a second-stage squeeze over the differential code bytes (the
/// delta codes are heavily skewed toward `CODE_ZERO` and small
/// magnitudes, which the pack entropy stage exploits). The directory
/// and mask are unchanged.
const VERSION_PACKED: u32 = 2;

impl EncodedDeepCam {
    /// Total number of lines.
    pub fn n_lines(&self) -> usize {
        (self.channels * self.height) as usize
    }

    /// Total values the decoded sample holds.
    pub fn n_values(&self) -> usize {
        (self.channels * self.height * self.width) as usize
    }

    /// Size of the encoded representation (directory + payload), i.e.
    /// what travels through the storage/memory hierarchy. The mask is
    /// excluded: labels ship separately and losslessly in both the
    /// baseline and the optimized path.
    pub fn encoded_bytes(&self) -> usize {
        self.lines.len() * 9 + self.payload.len() + 16
    }

    /// Size of the raw FP32 baseline representation.
    pub fn raw_bytes(&self) -> usize {
        self.n_values() * 4
    }

    /// Compression ratio (raw / encoded).
    pub fn compression_ratio(&self) -> f64 {
        self.raw_bytes() as f64 / self.encoded_bytes() as f64
    }

    /// Serializes to the wire format (version 1, raw payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.serialize(&self.payload, VERSION)
    }

    /// Serializes with the payload section squeezed through
    /// [`sciml_pack`] (version 2). The differential code bytes are
    /// heavily skewed (mostly [`CODE_ZERO`] and small magnitudes), so
    /// the pack entropy stage buys a second compression factor on top
    /// of the per-line delta coding. Falls back to the version-1 form
    /// whenever packing does not shrink the payload, so the result is
    /// never larger than [`EncodedDeepCam::to_bytes`].
    pub fn to_bytes_packed(&self) -> Vec<u8> {
        match sciml_pack::pack(&self.payload, 1) {
            Ok(packed) if packed.len() < self.payload.len() => {
                self.serialize(&packed, VERSION_PACKED)
            }
            _ => self.to_bytes(),
        }
    }

    fn serialize(&self, payload: &[u8], version: u32) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(32 + self.lines.len() * 9 + payload.len() + self.mask.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&self.channels.to_le_bytes());
        for l in &self.lines {
            out.push(l.mode.code());
            out.extend_from_slice(&l.offset.to_le_bytes());
            out.extend_from_slice(&l.len.to_le_bytes());
        }
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
        out.extend_from_slice(&(self.mask.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.mask);
        out
    }

    /// Parses the wire format, validating the directory.
    pub fn from_bytes(data: &[u8]) -> Result<Self, CodecError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], CodecError> {
            if *pos + n > data.len() {
                return Err(CodecError::Truncated);
            }
            let s = &data[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(CodecError::Corrupt("bad magic"));
        }
        let version = crate::wire::le_u32(take(&mut pos, 4)?);
        if version != VERSION && version != VERSION_PACKED {
            return Err(CodecError::Corrupt("unsupported version"));
        }
        let width = crate::wire::le_u32(take(&mut pos, 4)?);
        let height = crate::wire::le_u32(take(&mut pos, 4)?);
        let channels = crate::wire::le_u32(take(&mut pos, 4)?);
        let n_lines = (channels as usize)
            .checked_mul(height as usize)
            .ok_or(CodecError::Corrupt("line count overflow"))?;
        if n_lines > 1 << 28 {
            return Err(CodecError::Corrupt("implausible line count"));
        }
        let mut lines = Vec::with_capacity(n_lines);
        for _ in 0..n_lines {
            let mode = LineMode::from_code(take(&mut pos, 1)?[0])?;
            let offset = crate::wire::le_u32(take(&mut pos, 4)?);
            let len = crate::wire::le_u32(take(&mut pos, 4)?);
            lines.push(LineMeta { mode, offset, len });
        }
        let payload_len = crate::wire::le_u64(take(&mut pos, 8)?) as usize;
        let section = take(&mut pos, payload_len)?;
        let payload = if version == VERSION_PACKED {
            sciml_pack::unpack(section).map_err(|e| match e {
                sciml_pack::PackError::Truncated => CodecError::Truncated,
                _ => CodecError::Corrupt("packed payload section corrupt"),
            })?
        } else {
            section.to_vec()
        };
        let mask_len = crate::wire::le_u64(take(&mut pos, 8)?) as usize;
        let mask = take(&mut pos, mask_len)?.to_vec();
        for l in &lines {
            let end = (l.offset as usize)
                .checked_add(l.len as usize)
                .ok_or(CodecError::Corrupt("line range overflow"))?;
            if end > payload.len() {
                return Err(CodecError::Inconsistent("line payload out of range"));
            }
        }
        Ok(Self {
            width,
            height,
            channels,
            lines,
            payload,
            mask,
        })
    }

    /// The payload slice of one line.
    pub(crate) fn line_payload(&self, idx: usize) -> &[u8] {
        let l = &self.lines[idx];
        &self.payload[l.offset as usize..(l.offset + l.len) as usize]
    }
}

/// Decodes one delta code byte relative to `base_exp`.
///
/// Returns `None` for the escape code.
#[inline]
pub(crate) fn decode_code(code: u8, base_exp: i8) -> Option<f32> {
    if code == CODE_ZERO {
        return Some(0.0);
    }
    if code == CODE_ESCAPE {
        return None;
    }
    let sign = if code & 0x80 != 0 { -1.0f32 } else { 1.0 };
    let e_off = ((code >> 4) & 0x7) as i32;
    let m = (code & 0x0F) as f32;
    Some(sign * (1.0 + m / 16.0) * exp2i(base_exp as i32 + e_off))
}

/// 2^e for integer e, exact over the f32 range used by the codec.
#[inline]
pub(crate) fn exp2i(e: i32) -> f32 {
    if (-126..=127).contains(&e) {
        f32::from_bits(((e + 127) as u32) << 23)
    } else if e < -126 {
        // Subnormal or underflow range: fall back to powi (rare path).
        2f32.powi(e)
    } else {
        f32::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp2i_matches_powi() {
        for e in -140..=130 {
            assert_eq!(exp2i(e), 2f32.powi(e), "e={e}");
        }
    }

    #[test]
    fn code_decoding() {
        assert_eq!(decode_code(CODE_ZERO, 0), Some(0.0));
        assert_eq!(decode_code(CODE_ESCAPE, 0), None);
        // s=0, e_off=2, m=4 at base -3: (1+4/16) * 2^-1 = 0.625
        let code = (2u8 << 4) | 4;
        assert_eq!(decode_code(code, -3), Some(0.625));
        // sign bit negates
        assert_eq!(decode_code(code | 0x80, -3), Some(-0.625));
    }

    #[test]
    fn line_mode_codes_roundtrip() {
        for m in [LineMode::Constant, LineMode::RawF32, LineMode::Delta] {
            assert_eq!(LineMode::from_code(m.code()).unwrap(), m);
        }
        assert!(LineMode::from_code(9).is_err());
    }

    #[test]
    fn wire_roundtrip_empty() {
        let e = EncodedDeepCam {
            width: 0,
            height: 0,
            channels: 0,
            lines: vec![],
            payload: vec![],
            mask: vec![],
        };
        assert_eq!(EncodedDeepCam::from_bytes(&e.to_bytes()).unwrap(), e);
    }

    #[test]
    fn wire_rejects_truncation_and_bad_magic() {
        let e = EncodedDeepCam {
            width: 4,
            height: 1,
            channels: 1,
            lines: vec![LineMeta {
                mode: LineMode::RawF32,
                offset: 0,
                len: 16,
            }],
            payload: vec![0u8; 16],
            mask: vec![1, 2],
        };
        let bytes = e.to_bytes();
        assert_eq!(EncodedDeepCam::from_bytes(&bytes).unwrap(), e);
        for cut in 0..bytes.len() {
            assert!(
                EncodedDeepCam::from_bytes(&bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(EncodedDeepCam::from_bytes(&bad).is_err());
    }

    #[test]
    fn packed_wire_roundtrips_and_shrinks_skewed_payloads() {
        // A delta payload dominated by CODE_ZERO, like real DeepCAM
        // difference streams.
        let mut payload = vec![CODE_ZERO; 4000];
        for (i, b) in payload.iter_mut().enumerate() {
            if i % 17 == 0 {
                *b = (i % 7) as u8 + 1;
            }
        }
        let len = payload.len() as u32;
        let e = EncodedDeepCam {
            width: 1000,
            height: 1,
            channels: 1,
            lines: vec![LineMeta {
                mode: LineMode::Delta,
                offset: 0,
                len,
            }],
            payload,
            mask: vec![9, 9],
        };
        let v1 = e.to_bytes();
        let v2 = e.to_bytes_packed();
        assert!(
            v2.len() < v1.len(),
            "pack stage must shrink: {} vs {}",
            v2.len(),
            v1.len()
        );
        assert_eq!(EncodedDeepCam::from_bytes(&v2).unwrap(), e);
        // Incompressible payloads fall back to the v1 form byte for byte.
        let mut state = 0x1234_5678u32;
        let noise: Vec<u8> = (0..997)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                (state >> 24) as u8
            })
            .collect();
        let noisy = EncodedDeepCam {
            payload: noise,
            lines: vec![LineMeta {
                mode: LineMode::RawF32,
                offset: 0,
                len: 997,
            }],
            ..e
        };
        assert_eq!(noisy.to_bytes_packed(), noisy.to_bytes());
    }

    #[test]
    fn packed_wire_rejects_corruption() {
        let e = EncodedDeepCam {
            width: 512,
            height: 1,
            channels: 1,
            lines: vec![LineMeta {
                mode: LineMode::Delta,
                offset: 0,
                len: 2048,
            }],
            payload: vec![CODE_ZERO; 2048],
            mask: vec![],
        };
        let v2 = e.to_bytes_packed();
        assert_ne!(v2[4], 1, "payload this skewed must take the packed path");
        for cut in 0..v2.len() {
            assert!(EncodedDeepCam::from_bytes(&v2[..cut]).is_err(), "cut {cut}");
        }
        // Flip a byte inside the packed payload section (it starts at
        // 20-byte header + 9-byte directory + 8-byte length): the pack
        // CRCs catch it and it surfaces as a typed error.
        let mut bad = v2.clone();
        bad[20 + 9 + 8 + 10] ^= 0x40;
        assert!(EncodedDeepCam::from_bytes(&bad).is_err());
    }

    #[test]
    fn wire_rejects_out_of_range_directory() {
        let e = EncodedDeepCam {
            width: 4,
            height: 1,
            channels: 1,
            lines: vec![LineMeta {
                mode: LineMode::RawF32,
                offset: 8,
                len: 16,
            }],
            payload: vec![0u8; 16],
            mask: vec![],
        };
        assert!(matches!(
            EncodedDeepCam::from_bytes(&e.to_bytes()),
            Err(CodecError::Inconsistent(_))
        ));
    }
}
