//! Runtime-dispatched code→delta decode for DeepCAM delta segments.
//!
//! A delta code byte is `[sign:1][exp_off:3][mantissa:4]` relative to
//! the segment's base exponent; the scalar decoder reconstructs
//! `sign * (1 + m/16) * 2^(base_exp + e_off)`. For exponents in the
//! f32 normal range that value's bit pattern is exactly
//!
//! ```text
//! bits = sign << 31 | (base_exp + e_off + 127) << 23 | m << 19
//! ```
//!
//! (the mantissa `m/16` occupies the top four mantissa bits, and the
//! scale by `2^e` only moves the exponent field), so the vector paths
//! assemble the bits with integer ops — no floating-point arithmetic,
//! hence trivially bit-exact. Zero and escape codes decode to `0.0`;
//! the caller patches escape positions from the literal side array
//! during its (inherently sequential) prefix-sum pass.
//!
//! Segments whose exponent window `[base_exp, base_exp+7]` leaves the
//! normal range (never produced by the encoder for real data, but
//! reachable through a hostile payload) fall back to the scalar
//! decoder wholesale, at every tier.

use super::{decode_code, CODE_ESCAPE, CODE_ZERO};
use sciml_simd::SimdLevel;

/// Decodes a run of codes sharing one `base_exp` into f32 deltas.
/// Escape codes (and zero codes) produce `0.0`. Caller guarantees
/// equal lengths.
pub(super) fn decode_codes_into(codes: &[u8], base_exp: i8, out: &mut [f32]) {
    debug_assert_eq!(codes.len(), out.len());
    let e = base_exp as i32;
    if !(-126..=120).contains(&e) {
        // Exponent window reaches subnormal/overflow territory: the
        // bit-assembly identity does not hold, take the scalar path.
        decode_codes_scalar(codes, base_exp, out);
        return;
    }
    match sciml_simd::arch_level() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Avx2 is only active when the probe (or a clamped
        // override) verified avx2 support on this CPU.
        SimdLevel::Avx2 => unsafe { x86::decode_codes_avx2(codes, e, out) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Sse42 implies sse2..sse4.2 were detected.
        SimdLevel::Sse42 => unsafe { x86::decode_codes_sse(codes, e, out) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::decode_codes_neon(codes, e, out) },
        _ => decode_codes_scalar(codes, base_exp, out),
    }
}

/// Canonical scalar form: the original `decode_code` with escapes
/// mapped to `0.0` (the caller re-checks the code byte for escapes).
fn decode_codes_scalar(codes: &[u8], base_exp: i8, out: &mut [f32]) {
    for (o, &c) in out.iter_mut().zip(codes) {
        *o = decode_code(c, base_exp).unwrap_or(0.0);
    }
}

// Compile-time anchors: the bit-assembly relies on these code values.
const _: () = assert!(CODE_ZERO == 0x00 && CODE_ESCAPE == 0xFF);

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::decode_codes_scalar;
    use core::arch::x86_64::*;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn decode_codes_avx2(codes: &[u8], base_exp: i32, out: &mut [f32]) {
        let n = codes.len();
        let bias = _mm256_set1_epi32(base_exp + 127);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the 8-byte code load and the
            // 8-lane store into `out` (equal length, caller contract).
            unsafe {
                let c8 = _mm_loadl_epi64(codes.as_ptr().add(i).cast::<__m128i>());
                let c = _mm256_cvtepu8_epi32(c8);
                let is_zero = _mm256_cmpeq_epi32(c, _mm256_setzero_si256());
                let is_esc = _mm256_cmpeq_epi32(c, _mm256_set1_epi32(0xFF));
                let sign = _mm256_slli_epi32::<24>(_mm256_and_si256(c, _mm256_set1_epi32(0x80)));
                let eoff = _mm256_and_si256(_mm256_srli_epi32::<4>(c), _mm256_set1_epi32(7));
                let mant = _mm256_slli_epi32::<19>(_mm256_and_si256(c, _mm256_set1_epi32(0x0F)));
                let expf = _mm256_slli_epi32::<23>(_mm256_add_epi32(eoff, bias));
                let bits = _mm256_or_si256(sign, _mm256_or_si256(expf, mant));
                let bits = _mm256_andnot_si256(_mm256_or_si256(is_zero, is_esc), bits);
                _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_castsi256_ps(bits));
            }
            i += 8;
        }
        decode_codes_scalar(&codes[i..], base_exp as i8, &mut out[i..]);
    }

    /// Decodes 4 codes held in u32 lanes into f32 delta bits.
    #[inline]
    #[target_feature(enable = "sse4.2")]
    unsafe fn decode4_sse(c: __m128i, bias: __m128i) -> __m128 {
        let is_zero = _mm_cmpeq_epi32(c, _mm_setzero_si128());
        let is_esc = _mm_cmpeq_epi32(c, _mm_set1_epi32(0xFF));
        let sign = _mm_slli_epi32::<24>(_mm_and_si128(c, _mm_set1_epi32(0x80)));
        let eoff = _mm_and_si128(_mm_srli_epi32::<4>(c), _mm_set1_epi32(7));
        let mant = _mm_slli_epi32::<19>(_mm_and_si128(c, _mm_set1_epi32(0x0F)));
        let expf = _mm_slli_epi32::<23>(_mm_add_epi32(eoff, bias));
        let bits = _mm_or_si128(sign, _mm_or_si128(expf, mant));
        let bits = _mm_andnot_si128(_mm_or_si128(is_zero, is_esc), bits);
        _mm_castsi128_ps(bits)
    }

    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn decode_codes_sse(codes: &[u8], base_exp: i32, out: &mut [f32]) {
        let n = codes.len();
        let bias = _mm_set1_epi32(base_exp + 127);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the 8-byte code load and both
            // 4-lane stores into `out` (equal length, caller contract).
            unsafe {
                let c8 = _mm_loadl_epi64(codes.as_ptr().add(i).cast::<__m128i>());
                let lo = decode4_sse(_mm_cvtepu8_epi32(c8), bias);
                let hi = decode4_sse(_mm_cvtepu8_epi32(_mm_srli_si128::<4>(c8)), bias);
                _mm_storeu_ps(out.as_mut_ptr().add(i), lo);
                _mm_storeu_ps(out.as_mut_ptr().add(i + 4), hi);
            }
            i += 8;
        }
        decode_codes_scalar(&codes[i..], base_exp as i8, &mut out[i..]);
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::decode_codes_scalar;
    use core::arch::aarch64::*;

    /// Decodes 4 codes held in u32 lanes into f32 delta bits.
    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn decode4_neon(c: uint32x4_t, bias: uint32x4_t) -> float32x4_t {
        let is_zero = vceqq_u32(c, vdupq_n_u32(0));
        let is_esc = vceqq_u32(c, vdupq_n_u32(0xFF));
        let sign = vshlq_n_u32::<24>(vandq_u32(c, vdupq_n_u32(0x80)));
        let eoff = vandq_u32(vshrq_n_u32::<4>(c), vdupq_n_u32(7));
        let mant = vshlq_n_u32::<19>(vandq_u32(c, vdupq_n_u32(0x0F)));
        let expf = vshlq_n_u32::<23>(vaddq_u32(eoff, bias));
        let bits = vorrq_u32(sign, vorrq_u32(expf, mant));
        let bits = vbicq_u32(bits, vorrq_u32(is_zero, is_esc));
        vreinterpretq_f32_u32(bits)
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn decode_codes_neon(codes: &[u8], base_exp: i32, out: &mut [f32]) {
        let n = codes.len();
        let bias = vdupq_n_u32((base_exp + 127) as u32);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= n bounds the 8-byte code load and both
            // 4-lane stores into `out` (equal length, caller contract).
            unsafe {
                let c8 = vld1_u8(codes.as_ptr().add(i));
                let c16 = vmovl_u8(c8);
                let lo = decode4_neon(vmovl_u16(vget_low_u16(c16)), bias);
                let hi = decode4_neon(vmovl_u16(vget_high_u16(c16)), bias);
                vst1q_f32(out.as_mut_ptr().add(i), lo);
                vst1q_f32(out.as_mut_ptr().add(i + 4), hi);
            }
            i += 8;
        }
        decode_codes_scalar(&codes[i..], base_exp as i8, &mut out[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_simd::{force, supported_levels};

    #[test]
    fn vector_code_decode_matches_scalar_for_all_codes_and_exponents() {
        // Every code byte at a spread of base exponents, including the
        // edges of the normal window and beyond (fallback path), with a
        // tail-unfriendly length.
        let codes: Vec<u8> = (0..=255u8).chain(0..=10).collect();
        for &be in &[-128i8, -127, -126, -120, -40, -3, 0, 5, 90, 120, 121, 127] {
            let mut want = vec![0.0f32; codes.len()];
            decode_codes_scalar(&codes, be, &mut want);
            for lvl in supported_levels() {
                let _g = force(Some(lvl));
                let mut got = vec![0.0f32; codes.len()];
                decode_codes_into(&codes, be, &mut got);
                for i in 0..codes.len() {
                    assert_eq!(
                        got[i].to_bits(),
                        want[i].to_bits(),
                        "lvl {lvl:?} code {:#04x} base_exp {be}",
                        codes[i]
                    );
                }
            }
        }
    }
}
