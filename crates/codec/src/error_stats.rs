//! Lossiness accounting for the DeepCAM codec.
//!
//! The paper quantifies its lossy encoding as "roughly 3 % of the values
//! with larger than 10 % error, primarily for small values close to zero
//! due to floating-point denormalization" (§V-A). [`ErrorStats`]
//! reproduces that measurement: a histogram of per-value relative errors
//! plus the small-value attribution.

use sciml_half::relative_error;

/// Relative-error bucket boundaries (upper bounds).
pub const BUCKETS: [f32; 7] = [1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.5, f32::INFINITY];

/// Histogram of relative reconstruction errors.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ErrorStats {
    /// Counts per bucket of [`BUCKETS`].
    pub buckets: [u64; 7],
    /// Total values compared.
    pub total: u64,
    /// Values with relative error > 10 % whose reference magnitude is
    /// below `small_threshold` (the near-zero attribution).
    pub large_error_small_value: u64,
    /// Values with relative error > 10 % overall.
    pub large_error_total: u64,
    /// Magnitude below which a reference counts as "small".
    pub small_threshold: f32,
    /// Maximum relative error seen (excluding infinite, which lands in
    /// the last bucket).
    pub max_rel_error: f32,
    /// Sum of absolute errors (for mean-absolute-error reporting).
    pub abs_error_sum: f64,
}

impl ErrorStats {
    /// Creates stats with the given small-value threshold.
    pub fn new(small_threshold: f32) -> Self {
        Self {
            small_threshold,
            ..Default::default()
        }
    }

    /// Records one (approximation, reference) pair.
    pub fn record(&mut self, approx: f32, reference: f32) {
        let rel = relative_error(approx, reference);
        let idx = BUCKETS.iter().position(|&b| rel <= b).unwrap_or(6);
        self.buckets[idx] += 1;
        self.total += 1;
        if rel > 0.1 {
            self.large_error_total += 1;
            if reference.abs() < self.small_threshold {
                self.large_error_small_value += 1;
            }
        }
        if rel.is_finite() {
            self.max_rel_error = self.max_rel_error.max(rel);
        }
        self.abs_error_sum += (approx - reference).abs() as f64;
    }

    /// Records element-wise over two slices.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn record_slices(&mut self, approx: &[f32], reference: &[f32]) {
        assert_eq!(approx.len(), reference.len(), "slice length mismatch");
        for (&a, &r) in approx.iter().zip(reference) {
            self.record(a, r);
        }
    }

    /// Merges another histogram into this one (thresholds must match).
    pub fn merge(&mut self, other: &ErrorStats) {
        debug_assert_eq!(self.small_threshold, other.small_threshold);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.large_error_small_value += other.large_error_small_value;
        self.large_error_total += other.large_error_total;
        self.max_rel_error = self.max_rel_error.max(other.max_rel_error);
        self.abs_error_sum += other.abs_error_sum;
    }

    /// Fraction of values with relative error above 10 %.
    pub fn frac_above_10pct(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.large_error_total as f64 / self.total as f64
        }
    }

    /// Of the >10 %-error values, the fraction attributable to small
    /// reference magnitudes (the paper's near-zero explanation).
    pub fn small_value_share(&self) -> f64 {
        if self.large_error_total == 0 {
            0.0
        } else {
            self.large_error_small_value as f64 / self.large_error_total as f64
        }
    }

    /// Mean absolute error.
    pub fn mean_abs_error(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.abs_error_sum / self.total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_land_in_first_bucket() {
        let mut s = ErrorStats::new(0.01);
        s.record(1.0, 1.0);
        s.record(0.0, 0.0);
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.frac_above_10pct(), 0.0);
    }

    #[test]
    fn buckets_partition_errors() {
        let mut s = ErrorStats::new(0.01);
        s.record(1.0005, 1.0); // 5e-4 -> bucket 1
        s.record(1.009, 1.0); // 9e-3 -> bucket 2
        s.record(1.04, 1.0); // 4e-2 -> bucket 3
        s.record(1.09, 1.0); // 9e-2 -> bucket 4
        s.record(1.3, 1.0); // 0.3 -> bucket 5
        s.record(5.0, 1.0); // 4.0 -> bucket 6
        assert_eq!(s.buckets, [0, 1, 1, 1, 1, 1, 1]);
        assert_eq!(s.large_error_total, 2);
    }

    #[test]
    fn small_value_attribution() {
        let mut s = ErrorStats::new(0.01);
        s.record(0.002, 0.001); // rel 1.0, ref small
        s.record(2.0, 1.0); // rel 1.0, ref large
        assert_eq!(s.large_error_total, 2);
        assert_eq!(s.large_error_small_value, 1);
        assert_eq!(s.small_value_share(), 0.5);
    }

    #[test]
    fn nonzero_vs_zero_reference_is_infinite_error() {
        let mut s = ErrorStats::new(0.01);
        s.record(0.5, 0.0);
        assert_eq!(s.buckets[6], 1);
        assert_eq!(s.large_error_total, 1);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = ErrorStats::new(0.01);
        a.record(1.2, 1.0);
        let mut b = ErrorStats::new(0.01);
        b.record(1.0, 1.0);
        b.record(3.0, 1.0);
        a.merge(&b);
        assert_eq!(a.total, 3);
        assert_eq!(a.large_error_total, 2);
        assert!(a.max_rel_error >= 2.0);
    }

    #[test]
    fn record_slices_and_mae() {
        let mut s = ErrorStats::new(0.01);
        s.record_slices(&[1.0, 2.5], &[1.0, 2.0]);
        assert_eq!(s.total, 2);
        assert!((s.mean_abs_error() - 0.25).abs() < 1e-9);
    }
}
