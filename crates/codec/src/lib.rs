//! Domain-specific sample encoder/decoders — the paper's core contribution.
//!
//! Two codecs, each exploiting the statistical structure of its dataset
//! (paper §V) and each designed so decode is embarrassingly parallel and
//! can be fused with the application's preprocessing operators (§VI):
//!
//! * [`deepcam`] — lossy **differential floating-point encoding** of
//!   climate image lines: per-segment pivot values plus 8-bit delta codes
//!   (1 sign bit, 3-bit exponent offset from a per-segment base exponent,
//!   4-bit mantissa), constant-run broadcast encoding, raw fallback for
//!   abrupt lines, and per-line metadata for independent decode.
//! * [`cosmoflow`] — lossless **lookup-table encoding** of voxel count
//!   tuples: each voxel stores a 1- or 2-byte key into a per-sample table
//!   of 4-redshift groups; expensive operators (`log1p`) are applied to
//!   the table's few unique entries instead of all 8M voxels, and the
//!   gather scatters directly into the channel-major training layout
//!   (fusing the transpose with decompression).
//!
//! Both decoders compute in FP32 and emit FP16 ([`sciml_half::F16`]),
//! feeding mixed-precision training directly. [`ops`] defines the fusable
//! preprocessing operators and [`error_stats`] the lossiness accounting
//! that reproduces the paper's "≈3 % of values above 10 % error" claim.

pub mod cosmoflow;
pub mod deepcam;
pub mod error_stats;
pub mod ops;
pub mod telemetry;
pub(crate) mod wire;

pub use error_stats::ErrorStats;
pub use ops::Op;
pub use telemetry::CodecTelemetry;

use std::fmt;

/// Errors from parsing encoded sample containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Byte stream ended early.
    Truncated,
    /// Structural violation in the encoded representation.
    Corrupt(&'static str),
    /// Header fields are inconsistent with the payload.
    Inconsistent(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "encoded sample truncated"),
            CodecError::Corrupt(w) => write!(f, "corrupt encoded sample: {w}"),
            CodecError::Inconsistent(w) => write!(f, "inconsistent encoding: {w}"),
        }
    }
}

impl std::error::Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(CodecError::Truncated.to_string().contains("truncated"));
        assert!(CodecError::Corrupt("bad").to_string().contains("bad"));
    }
}
