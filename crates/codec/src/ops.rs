//! Fusable preprocessing operators.
//!
//! The paper fuses preprocessing with decompression: CosmoFlow applies
//! `log` to particle counts, DeepCAM normalizes channels. The decisive
//! optimization (§V-B) is applying the operator to the *unique values*
//! in a sample's lookup table — thousands of applications instead of
//! millions — before the gather reconstructs the full tensor.
//!
//! Operators must therefore be pure per-value functions. [`Op::apply`]
//! is the scalar form used during decode; [`OpCounter`] instruments how
//! many times an operator ran, which the Fig-5/§V-B benchmarks use to
//! demonstrate the "three orders of magnitude fewer op applications"
//! property.

use std::sync::atomic::{AtomicU64, Ordering};

/// A pure per-value preprocessing operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// Pass-through.
    Identity,
    /// `ln(1 + x)` — the CosmoFlow particle-count transform.
    Log1p,
    /// Affine normalization `(x - offset) * scale` — the DeepCAM
    /// per-channel standardization ((x - mean) / std with
    /// `scale = 1/std`, `offset = mean`).
    Normalize {
        /// Multiplied after the shift (1/σ).
        scale: f32,
        /// Subtracted first (μ).
        offset: f32,
    },
    /// `ln(1 + x)` followed by affine normalization (CosmoFlow's full
    /// pipeline when feature scaling is enabled).
    Log1pNormalize {
        /// Multiplied after the shift.
        scale: f32,
        /// Subtracted after the log.
        offset: f32,
    },
}

impl Op {
    /// Applies the operator to one value.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Op::Identity => x,
            Op::Log1p => x.ln_1p(),
            Op::Normalize { scale, offset } => (x - offset) * scale,
            Op::Log1pNormalize { scale, offset } => (x.ln_1p() - offset) * scale,
        }
    }

    /// True when the operator is affine (`a*x + b`). Affine operators
    /// commute with the differential decode's running sum, so the DeepCAM
    /// decoder may apply them per emitted value without re-deriving
    /// segment state.
    pub fn is_affine(self) -> bool {
        matches!(self, Op::Identity | Op::Normalize { .. })
    }
}

/// Counts operator applications; used to verify the unique-value fusion
/// actually reduces work.
#[derive(Debug, Default)]
pub struct OpCounter {
    count: AtomicU64,
}

impl OpCounter {
    /// Fresh counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies `op`, counting the invocation.
    #[inline]
    pub fn apply(&self, op: Op, x: f32) -> f32 {
        self.count.fetch_add(1, Ordering::Relaxed);
        op.apply(x)
    }

    /// Number of applications so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity() {
        assert_eq!(Op::Identity.apply(3.25), 3.25);
    }

    #[test]
    fn log1p_matches_std() {
        for x in [0.0f32, 1.0, 10.0, 1000.0] {
            assert_eq!(Op::Log1p.apply(x), x.ln_1p());
        }
        assert_eq!(Op::Log1p.apply(0.0), 0.0);
    }

    #[test]
    fn normalize_is_affine_shift_then_scale() {
        let op = Op::Normalize {
            scale: 0.5,
            offset: 2.0,
        };
        assert_eq!(op.apply(4.0), 1.0);
        assert_eq!(op.apply(2.0), 0.0);
    }

    #[test]
    fn composed_log_normalize() {
        let op = Op::Log1pNormalize {
            scale: 2.0,
            offset: 1.0,
        };
        let x = 9.0f32;
        assert_eq!(op.apply(x), (x.ln_1p() - 1.0) * 2.0);
    }

    #[test]
    fn affinity_classification() {
        assert!(Op::Identity.is_affine());
        assert!(Op::Normalize {
            scale: 1.0,
            offset: 0.0
        }
        .is_affine());
        assert!(!Op::Log1p.is_affine());
        assert!(!Op::Log1pNormalize {
            scale: 1.0,
            offset: 0.0
        }
        .is_affine());
    }

    #[test]
    fn counter_counts() {
        let c = OpCounter::new();
        for i in 0..10 {
            c.apply(Op::Log1p, i as f32);
        }
        assert_eq!(c.count(), 10);
    }
}
