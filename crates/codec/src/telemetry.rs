//! Observed encode/decode entry points: the same codec calls, timed
//! into per-workload `codec.*` latency histograms on a shared
//! `sciml-obs` registry.
//!
//! The codecs themselves stay telemetry-free — instrumentation wraps
//! them at the call boundary, so hot decode loops pay nothing unless a
//! caller opts into observation.

use crate::cosmoflow::{self, EncodedCosmo};
use crate::deepcam::{self, EncodeStats, EncodedDeepCam, EncoderConfig};
use crate::{CodecError, Op};
use sciml_data::cosmoflow::CosmoSample;
use sciml_data::deepcam::DeepCamSample;
use sciml_half::F16;
use sciml_obs::{Counter, Histogram, MetricsRegistry};
use std::sync::Arc;

/// Per-workload codec instruments registered under `codec.*` names.
#[derive(Debug)]
pub struct CodecTelemetry {
    registry: Arc<MetricsRegistry>,
    deepcam_encode_ns: Arc<Histogram>,
    deepcam_decode_ns: Arc<Histogram>,
    cosmoflow_encode_ns: Arc<Histogram>,
    cosmoflow_decode_ns: Arc<Histogram>,
    encoded_bytes: Arc<Counter>,
    decoded_samples: Arc<Counter>,
}

impl Default for CodecTelemetry {
    fn default() -> Self {
        Self::with_registry(&MetricsRegistry::new())
    }
}

impl CodecTelemetry {
    /// Instruments registering into `registry`, so codec timings land
    /// in the same snapshot as pipeline and serving metrics.
    pub fn with_registry(registry: &Arc<MetricsRegistry>) -> Self {
        Self {
            registry: Arc::clone(registry),
            deepcam_encode_ns: registry.histogram("codec.deepcam.encode_ns"),
            deepcam_decode_ns: registry.histogram("codec.deepcam.decode_ns"),
            cosmoflow_encode_ns: registry.histogram("codec.cosmoflow.encode_ns"),
            cosmoflow_decode_ns: registry.histogram("codec.cosmoflow.decode_ns"),
            encoded_bytes: registry.counter("codec.encoded_bytes"),
            decoded_samples: registry.counter("codec.decoded_samples"),
        }
    }

    /// The registry these instruments live in.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// [`deepcam::encode`] timed into `codec.deepcam.encode_ns`.
    pub fn deepcam_encode(
        &self,
        sample: &DeepCamSample,
        cfg: &EncoderConfig,
    ) -> (EncodedDeepCam, EncodeStats) {
        let (enc, stats) = self.deepcam_encode_ns.time(|| deepcam::encode(sample, cfg));
        self.encoded_bytes.add(enc.encoded_bytes() as u64);
        (enc, stats)
    }

    /// [`deepcam::decode`] timed into `codec.deepcam.decode_ns`.
    pub fn deepcam_decode(&self, enc: &EncodedDeepCam, op: Op) -> Result<Vec<F16>, CodecError> {
        let out = self.deepcam_decode_ns.time(|| deepcam::decode(enc, op))?;
        self.decoded_samples.inc();
        Ok(out)
    }

    /// [`cosmoflow::encode`] timed into `codec.cosmoflow.encode_ns`.
    pub fn cosmoflow_encode(&self, sample: &CosmoSample) -> EncodedCosmo {
        let enc = self.cosmoflow_encode_ns.time(|| cosmoflow::encode(sample));
        self.encoded_bytes.add(enc.encoded_bytes() as u64);
        enc
    }

    /// [`cosmoflow::decode`] timed into `codec.cosmoflow.decode_ns`.
    pub fn cosmoflow_decode(&self, enc: &EncodedCosmo, op: Op) -> Result<Vec<F16>, CodecError> {
        let out = self
            .cosmoflow_decode_ns
            .time(|| cosmoflow::decode(enc, op))?;
        self.decoded_samples.inc();
        Ok(out)
    }
}

/// Publishes the process-wide SIMD dispatch counters into `registry` as
/// `codec.simd.*` gauges — see [`sciml_obs::simd::publish`] (this is
/// the codec-side name for the same export; the implementation lives in
/// `sciml-obs` so the serve scrape endpoint can refresh the gauges
/// without depending on the codecs).
///
/// Call at export time (`sciml fetch --stats`, Prometheus scrape); the
/// decode hot paths only bump atomics.
pub fn publish_simd_dispatch(registry: &Arc<MetricsRegistry>) {
    sciml_obs::simd::publish(registry);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
    use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};

    #[test]
    fn observed_roundtrips_record_histograms() {
        let reg = MetricsRegistry::new();
        let tel = CodecTelemetry::with_registry(&reg);

        let dc = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
        let (enc, _) = tel.deepcam_encode(&dc, &EncoderConfig::default());
        let decoded = tel.deepcam_decode(&enc, Op::Identity).unwrap();
        assert_eq!(decoded.len(), enc.n_values());

        let cs = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0);
        let cenc = tel.cosmoflow_encode(&cs);
        tel.cosmoflow_decode(&cenc, Op::Identity).unwrap();

        let snap = reg.snapshot();
        for name in [
            "codec.deepcam.encode_ns",
            "codec.deepcam.decode_ns",
            "codec.cosmoflow.encode_ns",
            "codec.cosmoflow.decode_ns",
        ] {
            assert_eq!(snap.histogram(name).unwrap().count, 1, "{name}");
        }
        assert_eq!(snap.counter("codec.decoded_samples"), 2);
        assert!(snap.counter("codec.encoded_bytes") > 0);
    }

    #[test]
    fn simd_dispatch_publishes_gauges() {
        let reg = MetricsRegistry::new();
        let tel = CodecTelemetry::with_registry(&reg);
        let cs = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(1);
        let cenc = tel.cosmoflow_encode(&cs);
        tel.cosmoflow_decode(&cenc, Op::Identity).unwrap();

        publish_simd_dispatch(&reg);
        let snap = reg.snapshot();
        // The decode above dispatched the cosmo gather at least once,
        // at whatever tier this host runs.
        assert!(snap.gauge("codec.simd.dispatch_total") > 0);
        let level_sum: i64 = sciml_simd::ALL_LEVELS
            .iter()
            .map(|l| snap.gauge(&format!("codec.simd.level.{}", l.name())))
            .sum();
        assert_eq!(level_sum, snap.gauge("codec.simd.dispatch_total"));
    }
}
