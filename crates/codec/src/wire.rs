//! Panic-free little-endian readers for the codec wire formats.
//!
//! Parsers bounds-check with `take()` before reading, so the slice
//! length is already guaranteed; plain indexing (instead of
//! `try_into().unwrap()`) keeps the decode paths free of panic tokens
//! under the repo's `no_panics` lint and its call-graph big brother
//! `no_panics_transitive`.

/// Little-endian u16 from the first 2 bytes.
#[inline]
pub(crate) fn le_u16(b: &[u8]) -> u16 {
    u16::from_le_bytes([b[0], b[1]])
}

/// Little-endian u32 from the first 4 bytes.
#[inline]
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Little-endian u64 from the first 8 bytes.
#[inline]
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Little-endian f32 from the first 4 bytes.
#[inline]
pub(crate) fn le_f32(b: &[u8]) -> f32 {
    f32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn readers_match_from_le_bytes() {
        let b = [0x01u8, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08];
        assert_eq!(le_u16(&b), u16::from_le_bytes([1, 2]));
        assert_eq!(le_u32(&b), u32::from_le_bytes([1, 2, 3, 4]));
        assert_eq!(le_u64(&b), u64::from_le_bytes(b));
        assert_eq!(le_f32(&b).to_le_bytes(), [1, 2, 3, 4]);
    }

    #[test]
    fn readers_ignore_trailing_bytes() {
        let b = [0xFFu8, 0x00, 0xAA, 0xBB, 0xCC];
        assert_eq!(le_u16(&b), 0x00FF);
        assert_eq!(le_u32(&b), 0xBBAA_00FF);
    }
}
