//! Property tests for both codecs.

use proptest::prelude::*;
use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::{CodecError, Op};
use sciml_data::cosmoflow::{CosmoParams, CosmoSample};
use sciml_data::deepcam::DeepCamSample;
use sciml_half::F16;
use sciml_simd::{force, supported_levels, SimdLevel};

/// f32 values hostile to vector kernels: ordinary magnitudes mixed with
/// raw bit patterns (NaN payloads, infinities, subnormals). These flow
/// through RawF32 lines and escape literals, so the decoders see them.
fn hostile_f32() -> impl Strategy<Value = f32> {
    prop_oneof![
        -1000f32..1000f32,
        -1f32..1f32,
        any::<u32>().prop_map(f32::from_bits),
        (0u32..0x0080_0000).prop_map(f32::from_bits), // subnormals
    ]
}

/// DeepCAM sample over [`hostile_f32`] data, widths chosen to leave
/// vector tails (not multiples of 8).
fn deepcam_hostile_sample() -> impl Strategy<Value = DeepCamSample> {
    (4usize..45, 1usize..3, 1usize..3).prop_flat_map(|(w, h, c)| {
        let n = w * h * c;
        prop::collection::vec(hostile_f32(), n..=n).prop_map(move |data| DeepCamSample {
            width: w,
            height: h,
            channels: c,
            data,
            mask: vec![0; w * h],
        })
    })
}

/// One of the four fused preprocessing ops.
fn any_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Identity),
        Just(Op::Log1p),
        (0.01f32..4.0, -100f32..100.0).prop_map(|(scale, offset)| Op::Normalize { scale, offset }),
        (0.01f32..4.0, -10f32..10.0)
            .prop_map(|(scale, offset)| Op::Log1pNormalize { scale, offset }),
    ]
}

/// Arbitrary small CosmoFlow sample (grid 2..6).
fn cosmo_sample() -> impl Strategy<Value = CosmoSample> {
    (2usize..6).prop_flat_map(|grid| {
        let n = grid * grid * grid * 4;
        prop::collection::vec(0u16..500, n..=n).prop_map(move |counts| CosmoSample {
            grid,
            counts,
            label: CosmoParams::MEANS,
        })
    })
}

/// Arbitrary small DeepCAM sample with FP16-range values.
fn deepcam_sample() -> impl Strategy<Value = DeepCamSample> {
    (4usize..40, 1usize..4, 1usize..3).prop_flat_map(|(w, h, c)| {
        let n = w * h * c;
        prop::collection::vec(-1000f32..1000f32, n..=n).prop_map(move |data| DeepCamSample {
            width: w,
            height: h,
            channels: c,
            data,
            mask: vec![0; w * h],
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CosmoFlow encoding is lossless on counts for arbitrary volumes.
    #[test]
    fn cosmo_lossless_roundtrip(s in cosmo_sample()) {
        let e = cf::encode(&s);
        prop_assert_eq!(cf::decode_counts(&e).unwrap(), s.counts);
    }

    /// CosmoFlow wire format round-trips and re-decodes identically.
    #[test]
    fn cosmo_wire_roundtrip(s in cosmo_sample()) {
        let e = cf::encode(&s);
        let e2 = cf::EncodedCosmo::from_bytes(&e.to_bytes()).unwrap();
        prop_assert_eq!(e, e2);
    }

    /// Fused decode equals baseline preprocessing bit for bit.
    #[test]
    fn cosmo_fusion_equals_baseline(s in cosmo_sample()) {
        let e = cf::encode(&s);
        prop_assert_eq!(
            cf::decode(&e, Op::Log1p).unwrap(),
            cf::baseline_preprocess(&s, Op::Log1p)
        );
    }

    /// DeepCAM reconstruction error respects the escape envelope:
    /// relative error bounded by escape tolerance (vs |x| floored) plus
    /// FP16 rounding.
    #[test]
    fn deepcam_error_envelope(s in deepcam_sample()) {
        let cfg = dc::EncoderConfig::default();
        let (e, _) = dc::encode(&s, &cfg);
        let out = dc::decode(&e, Op::Identity).unwrap();
        for (h, &x) in out.iter().zip(&s.data) {
            let denom = x.abs().max(cfg.abs_floor);
            let rel = ((h.to_f32() - x) / denom).abs();
            prop_assert!(rel <= cfg.escape_rel_tol + 2e-3, "x={x} got {h:?}");
        }
    }

    /// DeepCAM wire format round-trips arbitrary encodings.
    #[test]
    fn deepcam_wire_roundtrip(s in deepcam_sample()) {
        let (e, _) = dc::encode(&s, &dc::EncoderConfig::default());
        let e2 = dc::EncodedDeepCam::from_bytes(&e.to_bytes()).unwrap();
        prop_assert_eq!(
            dc::decode(&e, Op::Identity).unwrap(),
            dc::decode(&e2, Op::Identity).unwrap()
        );
    }

    /// Parallel decode always equals sequential decode (both codecs).
    #[test]
    fn parallel_equals_sequential(s in cosmo_sample(), d in deepcam_sample()) {
        let e = cf::encode(&s);
        prop_assert_eq!(
            cf::decode(&e, Op::Log1p).unwrap(),
            cf::decode_parallel(&e, Op::Log1p).unwrap()
        );
        let (ed, _) = dc::encode(&d, &dc::EncoderConfig::default());
        prop_assert_eq!(
            dc::decode(&ed, Op::Identity).unwrap(),
            dc::decode_parallel(&ed, Op::Identity).unwrap()
        );
    }

    /// Parsing arbitrary garbage must never panic.
    #[test]
    fn from_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = cf::EncodedCosmo::from_bytes(&bytes);
        let _ = dc::EncodedDeepCam::from_bytes(&bytes);
    }

    /// In-place decode into a dirty recycled buffer is byte-identical
    /// to the allocating decode, for both codecs and both the serial
    /// and parallel paths.
    #[test]
    fn decode_into_equals_decode(s in cosmo_sample(), d in deepcam_sample()) {
        let e = cf::encode(&s);
        let want = cf::decode(&e, Op::Log1p).unwrap();
        let mut out = vec![F16::ONE; want.len()]; // dirty, as if recycled
        cf::decode_into(&e, Op::Log1p, &mut out).unwrap();
        prop_assert_eq!(&out, &want);
        out.fill(F16::ONE);
        cf::decode_parallel_into(&e, Op::Log1p, &mut out).unwrap();
        prop_assert_eq!(&out, &want);

        let (ed, _) = dc::encode(&d, &dc::EncoderConfig::default());
        let want = dc::decode(&ed, Op::Identity).unwrap();
        let mut out = vec![F16::ONE; want.len()];
        dc::decode_into(&ed, Op::Identity, &mut out).unwrap();
        prop_assert_eq!(&out, &want);
        out.fill(F16::ONE);
        dc::decode_parallel_into(&ed, Op::Identity, &mut out).unwrap();
        prop_assert_eq!(&out, &want);
    }

    /// Wrong-size output slices yield a typed error, never a panic,
    /// and never touch the buffer contents.
    #[test]
    fn decode_into_rejects_wrong_size(
        s in cosmo_sample(),
        d in deepcam_sample(),
        delta in prop_oneof![Just(-1isize), Just(1isize), Just(17isize)],
    ) {
        let e = cf::encode(&s);
        let right = s.counts.len();
        let wrong = (right as isize + delta).max(0) as usize;
        let mut out = vec![F16::ZERO; wrong];
        prop_assert!(matches!(
            cf::decode_into(&e, Op::Log1p, &mut out),
            Err(CodecError::Inconsistent(_))
        ));
        prop_assert!(matches!(
            cf::decode_parallel_into(&e, Op::Log1p, &mut out),
            Err(CodecError::Inconsistent(_))
        ));

        let (ed, _) = dc::encode(&d, &dc::EncoderConfig::default());
        let right = d.data.len();
        let wrong = (right as isize + delta).max(0) as usize;
        let mut out = vec![F16::ZERO; wrong];
        prop_assert!(matches!(
            dc::decode_into(&ed, Op::Identity, &mut out),
            Err(CodecError::Inconsistent(_))
        ));
        prop_assert!(matches!(
            dc::decode_parallel_into(&ed, Op::Identity, &mut out),
            Err(CodecError::Inconsistent(_))
        ));
    }

    /// Every forced SIMD tier decodes byte-identically to the forced
    /// scalar tier — both codecs, arbitrary fused op, serial and
    /// parallel paths, hostile values (NaN payloads, subnormals,
    /// infinities) and tail-leaving widths. This is the dispatch
    /// layer's core contract: `SCIML_SIMD=scalar` output is the
    /// reference, and no vector tier may deviate from it by a bit.
    #[test]
    fn simd_tiers_decode_bit_identically(
        s in cosmo_sample(),
        d in deepcam_hostile_sample(),
        op in any_op(),
    ) {
        let e = cf::encode(&s);
        let (ed, _) = dc::encode(&d, &dc::EncoderConfig::default());
        let (want_c, want_d) = {
            let _g = force(Some(SimdLevel::Scalar));
            (cf::decode(&e, op).unwrap(), dc::decode(&ed, op).unwrap())
        };
        for lvl in supported_levels() {
            let _g = force(Some(lvl));
            prop_assert_eq!(&cf::decode(&e, op).unwrap(), &want_c, "cosmo tier {:?}", lvl);
            prop_assert_eq!(&dc::decode(&ed, op).unwrap(), &want_d, "deepcam tier {:?}", lvl);
            let mut out = vec![F16::ONE; want_c.len()];
            cf::decode_parallel_into(&e, op, &mut out).unwrap();
            prop_assert_eq!(&out, &want_c, "cosmo parallel tier {:?}", lvl);
            let mut out = vec![F16::ONE; want_d.len()];
            dc::decode_parallel_into(&ed, op, &mut out).unwrap();
            prop_assert_eq!(&out, &want_d, "deepcam parallel tier {:?}", lvl);
        }
    }

    /// Constant volumes compress to almost nothing in both codecs.
    #[test]
    fn constant_data_compresses_hard(v in 0u16..100, w in 8usize..64) {
        let s = CosmoSample {
            grid: 4,
            counts: vec![v; 4 * 4 * 4 * 4],
            label: CosmoParams::MEANS,
        };
        let e = cf::encode(&s);
        prop_assert!(e.compression_ratio() > 5.0);

        let d = DeepCamSample {
            width: w,
            height: 2,
            channels: 1,
            data: vec![1.5; w * 2],
            mask: vec![0; w * 2],
        };
        let (ed, st) = dc::encode(&d, &dc::EncoderConfig::default());
        prop_assert_eq!(st.constant_lines, 2);
        prop_assert!(ed.payload.len() <= 8);
    }
}
