//! LSB-first bit I/O, as DEFLATE requires.
//!
//! The implementation lives in the shared `sciml-bitio` crate so the
//! chunked numeric compressor (`sciml-pack`) can reuse it; this module
//! re-exports it under the historical path and maps its EOF error into
//! [`crate::Error`] so decode paths keep using `?` unchanged.

pub use sciml_bitio::{BitIoError, BitReader, BitWriter};

impl From<BitIoError> for crate::Error {
    fn from(e: BitIoError) -> Self {
        match e {
            BitIoError::UnexpectedEof => crate::Error::UnexpectedEof,
        }
    }
}
