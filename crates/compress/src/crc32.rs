//! CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for gzip
//! trailers, TFRecord masked CRCs, and container integrity checks.

/// Slicing-by-one table, computed at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        t
    })
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in data {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// The "masked CRC" transform used by the TFRecord format
/// (`((crc >> 15) | (crc << 17)) + 0xa282ead8`, on CRC-32; the real
/// format uses CRC-32C but the masking and framing are identical, and we
/// apply the same function on both ends).
pub fn masked_crc32(data: &[u8]) -> u32 {
    let c = crc32(data);
    c.rotate_right(15).wrapping_add(0xa282_ead8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn masked_crc_is_stable_and_distinct() {
        let m = masked_crc32(b"123456789");
        assert_eq!(m, masked_crc32(b"123456789"));
        assert_ne!(m, crc32(b"123456789"));
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        data[17] ^= 0x10;
        assert_ne!(crc32(&data), base);
    }
}
