//! CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) for gzip
//! trailers, TFRecord masked CRCs, and container integrity checks.
//!
//! Uses slicing-by-8: eight derived tables let the inner loop consume
//! 8 bytes per step with no inter-byte dependency chain, which matters
//! because the packed-store read path checksums every sample it serves.

/// Slicing-by-8 tables. `t[0]` is the classic byte-at-a-time table;
/// `t[k][i]` is the CRC of byte `i` followed by `k` zero bytes, so the
/// eight lookups of one 8-byte step can be XOR-combined independently.
fn tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        for k in 1..8 {
            for i in 0..256usize {
                let prev = t[k - 1][i];
                t[k][i] = t[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            }
        }
        t
    })
}

/// Incremental CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh CRC state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let t = tables();
        let mut c = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            c ^= u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            c = t[7][(c & 0xFF) as usize]
                ^ t[6][((c >> 8) & 0xFF) as usize]
                ^ t[5][((c >> 16) & 0xFF) as usize]
                ^ t[4][(c >> 24) as usize]
                ^ t[3][chunk[4] as usize]
                ^ t[2][chunk[5] as usize]
                ^ t[1][chunk[6] as usize]
                ^ t[0][chunk[7] as usize];
        }
        for &b in chunks.remainder() {
            c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Final checksum value.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// The "masked CRC" transform used by the TFRecord format
/// (`((crc >> 15) | (crc << 17)) + 0xa282ead8`, on CRC-32; the real
/// format uses CRC-32C but the masking and framing are identical, and we
/// apply the same function on both ends).
pub fn masked_crc32(data: &[u8]) -> u32 {
    let c = crc32(data);
    c.rotate_right(15).wrapping_add(0xa282_ead8)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Byte-at-a-time reference the sliced implementation must match.
    fn crc32_reference(data: &[u8]) -> u32 {
        let t = tables();
        let mut c = 0xFFFF_FFFFu32;
        for &b in data {
            c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        c ^ 0xFFFF_FFFF
    }

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sliced_matches_reference_at_every_length() {
        // Cover every remainder length around the 8-byte step, plus a
        // buffer long enough to exercise many full steps.
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(31) ^ 0x5A) as u8)
            .collect();
        for len in (0..64).chain([511, 512, 513, 1024]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "length {len}"
            );
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finalize(), crc32(data));
        // Split points that leave the state mid-way through an 8-byte
        // step must agree too.
        for split in 0..data.len() {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), crc32(data), "split {split}");
        }
    }

    #[test]
    fn masked_crc_is_stable_and_distinct() {
        let m = masked_crc32(b"123456789");
        assert_eq!(m, masked_crc32(b"123456789"));
        assert_ne!(m, crc32(b"123456789"));
    }

    #[test]
    fn crc_detects_single_bit_flip() {
        let mut data = vec![0u8; 64];
        let base = crc32(&data);
        data[17] ^= 0x10;
        assert_ne!(crc32(&data), base);
    }
}
