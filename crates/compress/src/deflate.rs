//! DEFLATE compressor: tokenizes with LZ77, then emits stored, fixed-
//! Huffman, or dynamic-Huffman blocks, whichever is cheapest per block.

use crate::bitstream::BitWriter;
use crate::huffman::{canonical_codes, code_lengths};
use crate::lz77::{self, Token};
use crate::Level;

/// (base length, extra bits) for length codes 257..=285.
pub(crate) const LENGTH_CODES: [(u16, u8); 29] = [
    (3, 0),
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 5),
    (227, 5),
    (258, 0),
];

/// (base distance, extra bits) for distance codes 0..=29.
pub(crate) const DIST_CODES: [(u16, u8); 30] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
];

/// Order in which code-length-code lengths are stored in the header.
pub(crate) const CLC_ORDER: [usize; 19] = [
    16, 17, 18, 0, 8, 7, 9, 6, 10, 5, 11, 4, 12, 3, 13, 2, 14, 1, 15,
];

/// End-of-block symbol.
pub(crate) const EOB: usize = 256;

/// Maps a match length (3..=258) to (code index 0..=28, extra bits, extra value).
#[inline]
pub(crate) fn length_symbol(len: u16) -> (usize, u8, u16) {
    debug_assert!((3..=258).contains(&len));
    // Linear scan over 29 entries is fine at block-build frequency; find
    // the last code whose base <= len (code 285 takes exactly 258).
    if len == 258 {
        return (28, 0, 0);
    }
    let mut idx = 0;
    for (i, &(base, _)) in LENGTH_CODES.iter().enumerate() {
        if base <= len {
            idx = i;
        } else {
            break;
        }
    }
    let (base, extra) = LENGTH_CODES[idx];
    (idx, extra, len - base)
}

/// Maps a distance (1..=32768) to (code 0..=29, extra bits, extra value).
#[inline]
pub(crate) fn dist_symbol(dist: u16) -> (usize, u8, u16) {
    debug_assert!(dist >= 1);
    let mut idx = 0;
    for (i, &(base, _)) in DIST_CODES.iter().enumerate() {
        if base <= dist {
            idx = i;
        } else {
            break;
        }
    }
    let (base, extra) = DIST_CODES[idx];
    (idx, extra, dist - base)
}

/// Fixed lit/len code lengths (RFC 1951 §3.2.6).
pub(crate) fn fixed_litlen_lengths() -> Vec<u8> {
    let mut l = vec![8u8; 288];
    l[144..256].fill(9);
    l[256..280].fill(7);
    l
}

/// Fixed distance code lengths: thirty 5-bit codes.
pub(crate) fn fixed_dist_lengths() -> Vec<u8> {
    vec![5u8; 30]
}

/// Compresses `data` into a raw DEFLATE stream.
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let tokens = lz77::tokenize(data, level.max_chain(), level.good_enough(), level.lazy());
    let mut w = BitWriter::new();

    // Split the token stream into blocks so each gets its own adaptive
    // code. 32Ki tokens per block keeps header overhead negligible.
    const TOKENS_PER_BLOCK: usize = 32 * 1024;
    if tokens.is_empty() {
        write_stored_block(&mut w, &[], true);
        return w.finish();
    }
    let nblocks = tokens.len().div_ceil(TOKENS_PER_BLOCK);
    let mut data_pos = 0usize;
    for (bi, chunk) in tokens.chunks(TOKENS_PER_BLOCK).enumerate() {
        let final_block = bi == nblocks - 1;
        let raw_len: usize = chunk
            .iter()
            .map(|t| match t {
                Token::Literal(_) => 1,
                Token::Match { len, .. } => *len as usize,
            })
            .sum();
        let raw = &data[data_pos..data_pos + raw_len];
        data_pos += raw_len;
        write_best_block(&mut w, chunk, raw, final_block);
    }
    w.finish()
}

/// Frequency tables for a token chunk (including the EOB symbol).
fn frequencies(tokens: &[Token]) -> (Vec<u32>, Vec<u32>) {
    let mut lit = vec![0u32; 288];
    let mut dist = vec![0u32; 30];
    for t in tokens {
        match *t {
            Token::Literal(b) => lit[b as usize] += 1,
            Token::Match { len, dist: d } => {
                lit[257 + length_symbol(len).0] += 1;
                dist[dist_symbol(d).0] += 1;
            }
        }
    }
    lit[EOB] += 1;
    (lit, dist)
}

/// Cost in bits of coding `tokens` with the given lengths.
fn body_cost(tokens: &[Token], lit_lens: &[u8], dist_lens: &[u8]) -> usize {
    let mut bits = lit_lens[EOB] as usize;
    for t in tokens {
        match *t {
            Token::Literal(b) => bits += lit_lens[b as usize] as usize,
            Token::Match { len, dist } => {
                let (lc, le, _) = length_symbol(len);
                let (dc, de, _) = dist_symbol(dist);
                bits += lit_lens[257 + lc] as usize + le as usize;
                bits += dist_lens[dc] as usize + de as usize;
            }
        }
    }
    bits
}

/// Writes whichever of stored / fixed / dynamic encodes this chunk in the
/// fewest bits.
fn write_best_block(w: &mut BitWriter, tokens: &[Token], raw: &[u8], final_block: bool) {
    let (lit_freq, dist_freq) = frequencies(tokens);
    let dyn_lit_lens = code_lengths(&lit_freq, 15);
    let dyn_dist_lens = code_lengths(&dist_freq, 15);
    let (clc_stream, clc_lens, hlit, hdist) = build_header(&dyn_lit_lens, &dyn_dist_lens);

    let header_bits = 14
        + 3 * clc_count(&clc_lens)
        + clc_stream
            .iter()
            .map(|&(sym, _len_of_extra, extra_bits)| clc_lens[sym] as usize + extra_bits as usize)
            .sum::<usize>();
    let dynamic_bits = 3 + header_bits + body_cost(tokens, &dyn_lit_lens, &dyn_dist_lens);

    let fixed_lit = fixed_litlen_lengths();
    let fixed_dist = fixed_dist_lengths();
    let fixed_bits = 3 + body_cost(tokens, &fixed_lit, &fixed_dist);

    // Stored blocks carry at most 65535 bytes each.
    let stored_bits = raw
        .len()
        .div_ceil(65535)
        .max(1)
        .checked_mul(5 * 8)
        .map(|hdr| hdr + raw.len() * 8 + 7)
        .unwrap_or(usize::MAX);

    if stored_bits < dynamic_bits && stored_bits < fixed_bits {
        write_stored_chunks(w, raw, final_block);
    } else if fixed_bits <= dynamic_bits {
        w.write_bits(final_block as u32, 1);
        w.write_bits(0b01, 2);
        write_body(w, tokens, &fixed_lit, &fixed_dist);
    } else {
        w.write_bits(final_block as u32, 1);
        w.write_bits(0b10, 2);
        write_dynamic_header(w, &clc_stream, &clc_lens, hlit, hdist);
        write_body(w, tokens, &dyn_lit_lens, &dyn_dist_lens);
    }
}

/// Number of code-length-code lengths that must be transmitted.
fn clc_count(clc_lens: &[u8; 19]) -> usize {
    let mut hclen = 19;
    while hclen > 4 && clc_lens[CLC_ORDER[hclen - 1]] == 0 {
        hclen -= 1;
    }
    hclen
}

/// Run-length encodes the concatenated lit+dist length arrays with the
/// 16/17/18 repeat codes. Returns (stream of (symbol, extra_value,
/// extra_bits), clc lengths, hlit, hdist).
#[allow(clippy::type_complexity)]
fn build_header(
    lit_lens: &[u8],
    dist_lens: &[u8],
) -> (Vec<(usize, u16, u8)>, [u8; 19], usize, usize) {
    let mut hlit = 286;
    while hlit > 257 && lit_lens[hlit - 1] == 0 {
        hlit -= 1;
    }
    let mut hdist = 30;
    while hdist > 1 && dist_lens[hdist - 1] == 0 {
        hdist -= 1;
    }

    let mut all: Vec<u8> = Vec::with_capacity(hlit + hdist);
    all.extend_from_slice(&lit_lens[..hlit]);
    all.extend_from_slice(&dist_lens[..hdist]);

    // RLE into CLC symbols.
    let mut stream: Vec<(usize, u16, u8)> = Vec::new();
    let mut i = 0;
    while i < all.len() {
        let v = all[i];
        let mut run = 1;
        while i + run < all.len() && all[i + run] == v {
            run += 1;
        }
        if v == 0 {
            let mut left = run;
            while left >= 11 {
                let take = left.min(138);
                stream.push((18, (take - 11) as u16, 7));
                left -= take;
            }
            if left >= 3 {
                stream.push((17, (left - 3) as u16, 3));
                left = 0;
            }
            for _ in 0..left {
                stream.push((0, 0, 0));
            }
        } else {
            stream.push((v as usize, 0, 0));
            let mut left = run - 1;
            while left >= 3 {
                let take = left.min(6);
                stream.push((16, (take - 3) as u16, 2));
                left -= take;
            }
            for _ in 0..left {
                stream.push((v as usize, 0, 0));
            }
        }
        i += run;
    }

    // Huffman-code the CLC symbols themselves (max length 7).
    let mut clc_freq = vec![0u32; 19];
    for &(sym, _, _) in &stream {
        clc_freq[sym] += 1;
    }
    let clc_lens_v = code_lengths(&clc_freq, 7);
    let mut clc_lens = [0u8; 19];
    clc_lens.copy_from_slice(&clc_lens_v);
    (stream, clc_lens, hlit, hdist)
}

fn write_dynamic_header(
    w: &mut BitWriter,
    stream: &[(usize, u16, u8)],
    clc_lens: &[u8; 19],
    hlit: usize,
    hdist: usize,
) {
    let hclen = clc_count(clc_lens);
    w.write_bits((hlit - 257) as u32, 5);
    w.write_bits((hdist - 1) as u32, 5);
    w.write_bits((hclen - 4) as u32, 4);
    for &pos in CLC_ORDER.iter().take(hclen) {
        w.write_bits(clc_lens[pos] as u32, 3);
    }
    let clc_codes = canonical_codes(clc_lens);
    for &(sym, extra, extra_bits) in stream {
        w.write_code(clc_codes[sym], clc_lens[sym] as u32);
        if extra_bits > 0 {
            w.write_bits(extra as u32, extra_bits as u32);
        }
    }
}

fn write_body(w: &mut BitWriter, tokens: &[Token], lit_lens: &[u8], dist_lens: &[u8]) {
    let lit_codes = canonical_codes(lit_lens);
    let dist_codes = canonical_codes(dist_lens);
    for t in tokens {
        match *t {
            Token::Literal(b) => {
                w.write_code(lit_codes[b as usize], lit_lens[b as usize] as u32);
            }
            Token::Match { len, dist } => {
                let (lc, le, lv) = length_symbol(len);
                w.write_code(lit_codes[257 + lc], lit_lens[257 + lc] as u32);
                if le > 0 {
                    w.write_bits(lv as u32, le as u32);
                }
                let (dc, de, dv) = dist_symbol(dist);
                w.write_code(dist_codes[dc], dist_lens[dc] as u32);
                if de > 0 {
                    w.write_bits(dv as u32, de as u32);
                }
            }
        }
    }
    w.write_code(lit_codes[EOB], lit_lens[EOB] as u32);
}

fn write_stored_chunks(w: &mut BitWriter, raw: &[u8], final_block: bool) {
    if raw.is_empty() {
        write_stored_block(w, raw, final_block);
        return;
    }
    let n = raw.len().div_ceil(65535);
    for (i, chunk) in raw.chunks(65535).enumerate() {
        write_stored_block(w, chunk, final_block && i == n - 1);
    }
}

fn write_stored_block(w: &mut BitWriter, chunk: &[u8], final_block: bool) {
    debug_assert!(chunk.len() <= 65535);
    w.write_bits(final_block as u32, 1);
    w.write_bits(0b00, 2);
    w.align_to_byte();
    let len = chunk.len() as u16;
    w.write_bytes(&len.to_le_bytes());
    w.write_bytes(&(!len).to_le_bytes());
    w.write_bytes(chunk);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inflate::inflate;

    #[test]
    fn length_symbol_boundaries() {
        assert_eq!(length_symbol(3), (0, 0, 0));
        assert_eq!(length_symbol(10), (7, 0, 0));
        assert_eq!(length_symbol(11), (8, 1, 0));
        assert_eq!(length_symbol(12), (8, 1, 1));
        assert_eq!(length_symbol(257), (27, 5, 30));
        assert_eq!(length_symbol(258), (28, 0, 0));
    }

    #[test]
    fn dist_symbol_boundaries() {
        assert_eq!(dist_symbol(1), (0, 0, 0));
        assert_eq!(dist_symbol(4), (3, 0, 0));
        assert_eq!(dist_symbol(5), (4, 1, 0));
        assert_eq!(dist_symbol(6), (4, 1, 1));
        assert_eq!(dist_symbol(32768), (29, 13, 8191));
        assert_eq!(dist_symbol(24577), (29, 13, 0));
    }

    #[test]
    fn stored_block_roundtrip() {
        let mut w = BitWriter::new();
        write_stored_block(&mut w, b"hello", true);
        let bytes = w.finish();
        assert_eq!(inflate(&bytes).unwrap(), b"hello");
    }

    #[test]
    fn fixed_tables_shape() {
        let l = fixed_litlen_lengths();
        assert_eq!(l.len(), 288);
        assert_eq!(l[0], 8);
        assert_eq!(l[144], 9);
        assert_eq!(l[256], 7);
        assert_eq!(l[280], 8);
        assert_eq!(fixed_dist_lengths(), vec![5u8; 30]);
    }

    #[test]
    fn compress_roundtrips_text() {
        let data = b"compression test ".repeat(500);
        for level in [Level::Fastest, Level::Fast, Level::Default, Level::Best] {
            let out = compress(&data, level);
            assert_eq!(inflate(&out).unwrap(), data, "{level:?}");
            // Fastest does no LZ77 matching, so it only gets entropy-coding
            // gains; matching levels should crush repeated text.
            let bound = if level == Level::Fastest {
                data.len() / 2
            } else {
                data.len() / 4
            };
            assert!(out.len() < bound, "{level:?}: {}", out.len());
        }
    }

    #[test]
    fn incompressible_data_falls_back_near_stored() {
        // Pseudo-random bytes: compressed size must stay close to input.
        let data: Vec<u8> = (0..50_000u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u8)
            .collect();
        let out = compress(&data, Level::Default);
        assert_eq!(inflate(&out).unwrap(), data);
        assert!(out.len() < data.len() + data.len() / 16 + 64);
    }

    #[test]
    fn multi_block_inputs() {
        // Force several blocks (> 32Ki tokens of literals).
        let data: Vec<u8> = (0..200_000u64)
            .map(|i| (i.wrapping_mul(0x2545F4914F6CDD1D) >> 27) as u8)
            .collect();
        let out = compress(&data, Level::Fast);
        assert_eq!(inflate(&out).unwrap(), data);
    }

    #[test]
    fn empty_input_roundtrip() {
        let out = compress(&[], Level::Default);
        assert_eq!(inflate(&out).unwrap(), Vec::<u8>::new());
    }
}
