//! gzip (RFC 1952) member framing around raw DEFLATE.

use crate::crc32::{crc32, Crc32};
use crate::{deflate, inflate, Error, Level};

const MAGIC: [u8; 2] = [0x1F, 0x8B];
const CM_DEFLATE: u8 = 8;

const FTEXT: u8 = 1 << 0;
const FHCRC: u8 = 1 << 1;
const FEXTRA: u8 = 1 << 2;
const FNAME: u8 = 1 << 3;
const FCOMMENT: u8 = 1 << 4;

/// Compresses `data` into a single gzip member (no name, zero mtime,
/// "unknown" OS — deterministic output for a given input and level).
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 3 + 32);
    out.extend_from_slice(&MAGIC);
    out.push(CM_DEFLATE);
    out.push(0); // FLG: no optional fields
    out.extend_from_slice(&0u32.to_le_bytes()); // MTIME
    let xfl = match level {
        Level::Best => 2,
        Level::Fastest => 4,
        _ => 0,
    };
    out.push(xfl);
    out.push(255); // OS: unknown
    out.extend_from_slice(&deflate::compress(data, level));
    out.extend_from_slice(&crc32(data).to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out
}

/// Decompresses a gzip file that may hold several concatenated members
/// (the format `cat a.gz b.gz > ab.gz` produces, which real gunzip
/// accepts), verifying every trailer.
pub fn decompress_multi(data: &[u8]) -> Result<Vec<u8>, Error> {
    let mut out = Vec::new();
    let mut rest = data;
    loop {
        let (member_out, consumed) = decompress_member(rest)?;
        out.extend_from_slice(&member_out);
        rest = &rest[consumed..];
        if rest.is_empty() {
            return Ok(out);
        }
    }
}

/// Decompresses one member, returning its output and total bytes
/// consumed (header + deflate stream + trailer).
fn decompress_member(data: &[u8]) -> Result<(Vec<u8>, usize), Error> {
    let body_start = parse_header(data)?;
    let (out, body_consumed) = inflate::inflate_with_consumed(&data[body_start..])?;
    let trailer_start = body_start + body_consumed;
    if data.len() < trailer_start + 8 {
        return Err(Error::UnexpectedEof);
    }
    let trailer = &data[trailer_start..trailer_start + 8];
    // Length is checked above; plain indexing keeps this panic-free
    // under the repo's no_panics lint.
    let want_crc = u32::from_le_bytes([trailer[0], trailer[1], trailer[2], trailer[3]]);
    let want_len = u32::from_le_bytes([trailer[4], trailer[5], trailer[6], trailer[7]]);
    if crc32(&out) != want_crc || (out.len() as u32) != want_len {
        return Err(Error::ChecksumMismatch);
    }
    Ok((out, trailer_start + 8))
}

/// Parses a member header, returning the offset of the deflate body.
fn parse_header(data: &[u8]) -> Result<usize, Error> {
    let mut pos = 0usize;
    let need = |pos: usize, n: usize| -> Result<(), Error> {
        if pos + n > data.len() {
            Err(Error::UnexpectedEof)
        } else {
            Ok(())
        }
    };

    need(pos, 10)?;
    if data[0..2] != MAGIC {
        return Err(Error::BadHeader("magic bytes"));
    }
    if data[2] != CM_DEFLATE {
        return Err(Error::BadHeader("compression method"));
    }
    let flg = data[3];
    if flg & !(FTEXT | FHCRC | FEXTRA | FNAME | FCOMMENT) != 0 {
        return Err(Error::BadHeader("reserved flag bits"));
    }
    pos = 10;

    if flg & FEXTRA != 0 {
        need(pos, 2)?;
        let xlen = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        need(pos, xlen)?;
        pos += xlen;
    }
    for flag in [FNAME, FCOMMENT] {
        if flg & flag != 0 {
            // Zero-terminated string.
            let end = data[pos..]
                .iter()
                .position(|&b| b == 0)
                .ok_or(Error::UnexpectedEof)?;
            pos += end + 1;
        }
    }
    if flg & FHCRC != 0 {
        need(pos, 2)?;
        let stored = u16::from_le_bytes([data[pos], data[pos + 1]]);
        let mut c = Crc32::new();
        c.update(&data[..pos]);
        if (c.finalize() & 0xFFFF) as u16 != stored {
            return Err(Error::ChecksumMismatch);
        }
        pos += 2;
    }
    Ok(pos)
}

/// Decompresses a single-member gzip file, verifying the trailer.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    let (out, consumed) = decompress_member(data)?;
    if consumed != data.len() {
        return Err(Error::Corrupt("trailing bytes after gzip member"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let data = b"gzip framing test".repeat(100);
        let gz = compress(&data, Level::Default);
        assert_eq!(decompress(&gz).unwrap(), data);
    }

    #[test]
    fn header_fields() {
        let gz = compress(b"x", Level::Best);
        assert_eq!(&gz[0..2], &MAGIC);
        assert_eq!(gz[2], CM_DEFLATE);
        assert_eq!(gz[3], 0);
        assert_eq!(gz[8], 2); // XFL for Best
        assert_eq!(gz[9], 255);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut gz = compress(b"x", Level::Default);
        gz[0] = 0;
        assert_eq!(decompress(&gz), Err(Error::BadHeader("magic bytes")));
    }

    #[test]
    fn rejects_corrupt_payload_crc() {
        let data = b"payload corruption check".repeat(10);
        let mut gz = compress(&data, Level::Default);
        // Flip a bit in the stored CRC.
        let n = gz.len();
        gz[n - 6] ^= 1;
        assert_eq!(decompress(&gz), Err(Error::ChecksumMismatch));
    }

    #[test]
    fn rejects_wrong_isize() {
        let data = vec![9u8; 100];
        let mut gz = compress(&data, Level::Default);
        let n = gz.len();
        gz[n - 1] ^= 0x80;
        assert_eq!(decompress(&gz), Err(Error::ChecksumMismatch));
    }

    #[test]
    fn rejects_truncated_member() {
        let gz = compress(b"hello", Level::Default);
        for cut in 0..gz.len() {
            assert!(decompress(&gz[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn multi_member_concatenation_roundtrips() {
        let a = compress(b"alpha ", Level::Default);
        let b = compress(b"beta", Level::Best);
        let mut cat = a.clone();
        cat.extend_from_slice(&b);
        assert_eq!(decompress_multi(&cat).unwrap(), b"alpha beta");
        // Single-member API rejects the concatenation.
        assert!(matches!(decompress(&cat), Err(Error::Corrupt(_))));
        // Corruption in the second member is still caught.
        let n = cat.len();
        cat[n - 2] ^= 0x10;
        assert!(decompress_multi(&cat).is_err());
    }

    #[test]
    fn skips_fname_field() {
        // Hand-build a member with FNAME set.
        let inner = compress(b"named", Level::Default);
        let mut gz = Vec::new();
        gz.extend_from_slice(&inner[..3]);
        gz.push(FNAME);
        gz.extend_from_slice(&inner[4..10]);
        gz.extend_from_slice(b"file.bin\0");
        gz.extend_from_slice(&inner[10..]);
        assert_eq!(decompress(&gz).unwrap(), b"named");
    }
}
