//! Canonical, length-limited Huffman coding.
//!
//! * [`code_lengths`] computes optimal length-limited code lengths with
//!   the package-merge algorithm (exact, no post-hoc fixups);
//! * [`canonical_codes`] assigns the RFC 1951 canonical code values;
//! * [`Decoder`] is a single-level lookup-table decoder (table indexed by
//!   the next `max_bits` stream bits, entries carrying symbol + length).

use crate::bitstream::BitReader;
use crate::Error;

/// Computes optimal code lengths bounded by `max_len` for the given
/// symbol frequencies (zero frequency ⇒ zero length ⇒ symbol unused).
///
/// Uses package-merge, which is exact for length-limited prefix codes.
///
/// # Panics
/// Panics if the number of used symbols exceeds `2^max_len` (no valid
/// code exists) or `max_len == 0` with any used symbol.
pub fn code_lengths(freqs: &[u32], max_len: u8) -> Vec<u8> {
    let mut active: Vec<(u64, usize)> = freqs
        .iter()
        .enumerate()
        .filter(|(_, &f)| f > 0)
        .map(|(i, &f)| (f as u64, i))
        .collect();
    let n = active.len();
    let mut lens = vec![0u8; freqs.len()];
    if n == 0 {
        return lens;
    }
    if n == 1 {
        // DEFLATE requires at least a 1-bit code for a lone symbol.
        lens[active[0].1] = 1;
        return lens;
    }
    assert!(
        max_len >= 1 && n <= (1usize << max_len.min(31)),
        "code over-full"
    );

    active.sort_unstable();

    // A package is (weight, constituent leaf symbols).
    #[derive(Clone)]
    struct Pkg {
        w: u64,
        syms: Vec<usize>,
    }
    let leaves: Vec<Pkg> = active
        .iter()
        .map(|&(w, s)| Pkg { w, syms: vec![s] })
        .collect();

    let mut row = leaves.clone();
    for _ in 1..max_len {
        // Pair adjacent packages of the previous row.
        let mut paired: Vec<Pkg> = Vec::with_capacity(row.len() / 2);
        for pair in row.chunks_exact(2) {
            let mut syms = pair[0].syms.clone();
            syms.extend_from_slice(&pair[1].syms);
            paired.push(Pkg {
                w: pair[0].w + pair[1].w,
                syms,
            });
        }
        // Merge the paired packages with the original leaves (both sorted).
        let mut merged = Vec::with_capacity(leaves.len() + paired.len());
        let (mut i, mut j) = (0, 0);
        while i < leaves.len() || j < paired.len() {
            let take_leaf = j >= paired.len() || (i < leaves.len() && leaves[i].w <= paired[j].w);
            if take_leaf {
                merged.push(leaves[i].clone());
                i += 1;
            } else {
                merged.push(paired[j].clone());
                j += 1;
            }
        }
        row = merged;
    }

    // The code length of each leaf = number of the 2n-2 cheapest packages
    // it appears in.
    for pkg in row.iter().take(2 * n - 2) {
        for &s in &pkg.syms {
            lens[s] += 1;
        }
    }
    lens
}

/// Assigns canonical code values for the given lengths (RFC 1951 §3.2.2).
///
/// Returns a vector parallel to `lengths`; entries with length 0 get
/// code 0 (unused).
pub fn canonical_codes(lengths: &[u8]) -> Vec<u16> {
    let max = lengths.iter().copied().max().unwrap_or(0) as usize;
    let mut bl_count = vec![0u16; max + 1];
    for &l in lengths {
        if l > 0 {
            bl_count[l as usize] += 1;
        }
    }
    let mut next_code = vec![0u16; max + 2];
    let mut code = 0u16;
    for bits in 1..=max {
        code = (code + bl_count[bits - 1]) << 1;
        next_code[bits] = code;
    }
    lengths
        .iter()
        .map(|&l| {
            if l == 0 {
                0
            } else {
                let c = next_code[l as usize];
                next_code[l as usize] += 1;
                c
            }
        })
        .collect()
}

/// Validates that lengths describe a prefix code that is not
/// over-subscribed. Returns the Kraft sum numerator scaled by 2^15.
fn kraft_sum(lengths: &[u8]) -> Result<u32, Error> {
    let mut sum = 0u32;
    for &l in lengths {
        if l > 15 {
            return Err(Error::BadHuffmanTable);
        }
        if l > 0 {
            sum += 1u32 << (15 - l);
        }
    }
    if sum > 1 << 15 {
        return Err(Error::BadHuffmanTable);
    }
    Ok(sum)
}

/// Table-driven Huffman decoder.
///
/// The table is indexed by the next `max_bits` bits of the stream (in
/// stream order, i.e. bit-reversed canonical codes) and each entry gives
/// the decoded symbol and how many bits to consume.
#[derive(Debug)]
pub struct Decoder {
    table: Vec<Entry>,
    max_bits: u32,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    symbol: u16,
    /// 0 marks an unassigned pattern (incomplete code).
    len: u8,
}

impl Decoder {
    /// Builds a decoder from code lengths.
    ///
    /// Over-subscribed length sets are rejected. Incomplete codes are
    /// accepted (required by DEFLATE's single-symbol distance codes);
    /// unassigned bit patterns decode to `Error::Corrupt`.
    pub fn new(lengths: &[u8]) -> Result<Decoder, Error> {
        kraft_sum(lengths)?;
        let max_bits = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max_bits == 0 {
            return Ok(Decoder {
                table: Vec::new(),
                max_bits: 0,
            });
        }
        let codes = canonical_codes(lengths);
        let mut table = vec![Entry::default(); 1usize << max_bits];
        for (sym, (&len, &code)) in lengths.iter().zip(&codes).enumerate() {
            if len == 0 {
                continue;
            }
            let len = len as u32;
            // Reverse the canonical code into stream bit order.
            let rev = (code as u32).reverse_bits() >> (32 - len);
            // Fill every table slot whose low `len` bits equal `rev`.
            let step = 1usize << len;
            let mut idx = rev as usize;
            while idx < table.len() {
                table[idx] = Entry {
                    symbol: sym as u16,
                    len: len as u8,
                };
                idx += step;
            }
        }
        Ok(Decoder { table, max_bits })
    }

    /// Decodes one symbol from the reader.
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16, Error> {
        if self.max_bits == 0 {
            return Err(Error::Corrupt("decode from empty code"));
        }
        let peek = r.peek_bits(self.max_bits);
        let e = self.table[peek as usize];
        if e.len == 0 {
            return Err(Error::Corrupt("unassigned huffman pattern"));
        }
        r.consume(e.len as u32)?;
        Ok(e.symbol)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitstream::BitWriter;

    #[test]
    fn lengths_satisfy_kraft_with_equality_for_complete_codes() {
        let freqs = [10u32, 1, 1, 5, 20, 3, 0, 7];
        let lens = code_lengths(&freqs, 15);
        let sum: u32 = lens
            .iter()
            .filter(|&&l| l > 0)
            .map(|&l| 1u32 << (15 - l))
            .sum();
        assert_eq!(sum, 1 << 15, "{lens:?}");
        assert_eq!(lens[6], 0);
    }

    #[test]
    fn restricting_max_len_flattens_code() {
        // Wildly skewed frequencies want a deep code; cap at 4 bits.
        let freqs = [1u32, 2, 4, 8, 16, 32, 64, 128, 256, 512];
        let lens = code_lengths(&freqs, 4);
        assert!(lens.iter().all(|&l| l <= 4), "{lens:?}");
        let sum: u32 = lens.iter().map(|&l| 1u32 << (15 - l)).sum();
        assert_eq!(sum, 1 << 15);
    }

    #[test]
    fn length_limited_is_still_cheap_for_balanced_input() {
        let freqs = [5u32; 8];
        let lens = code_lengths(&freqs, 15);
        assert!(lens.iter().all(|&l| l == 3), "{lens:?}");
    }

    #[test]
    fn single_symbol_gets_one_bit() {
        let mut freqs = vec![0u32; 30];
        freqs[17] = 42;
        let lens = code_lengths(&freqs, 15);
        assert_eq!(lens[17], 1);
        assert_eq!(lens.iter().map(|&l| l as u32).sum::<u32>(), 1);
    }

    #[test]
    fn canonical_codes_match_rfc_example() {
        // RFC 1951 example: lengths (3,3,3,3,3,2,4,4) for symbols A..H.
        let lengths = [3u8, 3, 3, 3, 3, 2, 4, 4];
        let codes = canonical_codes(&lengths);
        assert_eq!(
            codes,
            vec![0b010, 0b011, 0b100, 0b101, 0b110, 0b00, 0b1110, 0b1111]
        );
    }

    #[test]
    fn encode_decode_roundtrip() {
        let freqs = [50u32, 20, 10, 5, 5, 5, 3, 2];
        let lens = code_lengths(&freqs, 15);
        let codes = canonical_codes(&lens);
        let symbols: Vec<u16> = (0..8).cycle().take(200).collect();
        let mut w = BitWriter::new();
        for &s in &symbols {
            w.write_code(codes[s as usize], lens[s as usize] as u32);
        }
        let bytes = w.finish();
        let dec = Decoder::new(&lens).unwrap();
        let mut r = BitReader::new(&bytes);
        for &s in &symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn oversubscribed_rejected() {
        assert_eq!(Decoder::new(&[1, 1, 1]).err(), Some(Error::BadHuffmanTable));
        assert_eq!(
            Decoder::new(&[16]).err(),
            Some(Error::BadHuffmanTable),
            "length above 15 must be rejected"
        );
    }

    #[test]
    fn incomplete_code_unassigned_pattern_errors() {
        // Single 2-bit code: patterns 01,10,11 unassigned.
        let dec = Decoder::new(&[2]).unwrap();
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert!(matches!(dec.decode(&mut r), Err(Error::Corrupt(_))));
    }

    #[test]
    fn decode_at_eof_errors() {
        let dec = Decoder::new(&[1, 1]).unwrap();
        let bytes: Vec<u8> = vec![];
        let mut r = BitReader::new(&bytes);
        assert!(dec.decode(&mut r).is_err());
    }
}
