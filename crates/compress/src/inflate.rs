//! DEFLATE decompressor (full RFC 1951: stored, fixed, dynamic blocks).

use crate::bitstream::BitReader;
use crate::deflate::{
    fixed_dist_lengths, fixed_litlen_lengths, CLC_ORDER, DIST_CODES, LENGTH_CODES,
};
use crate::huffman::Decoder;
use crate::Error;

/// Decompresses a raw DEFLATE stream into bytes.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, Error> {
    inflate_with_consumed(data).map(|(out, _)| out)
}

/// Decompresses one DEFLATE stream and reports how many input bytes it
/// consumed (the stream ends at a byte boundary after the final block) —
/// needed to walk concatenated members in multi-member gzip files.
pub fn inflate_with_consumed(data: &[u8]) -> Result<(Vec<u8>, usize), Error> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(data.len().saturating_mul(3));
    loop {
        let final_block = r.read_bit()? == 1;
        let btype = r.read_bits(2)?;
        match btype {
            0b00 => inflate_stored(&mut r, &mut out)?,
            0b01 => {
                let lit = Decoder::new(&fixed_litlen_lengths())?;
                let dist = Decoder::new(&fixed_dist_lengths())?;
                inflate_body(&mut r, &lit, &dist, &mut out)?;
            }
            0b10 => {
                let (lit, dist) = read_dynamic_tables(&mut r)?;
                inflate_body(&mut r, &lit, &dist, &mut out)?;
            }
            _ => return Err(Error::Corrupt("reserved block type 11")),
        }
        if final_block {
            break;
        }
    }
    r.align_to_byte();
    let consumed = data.len() - r.bits_remaining() / 8;
    Ok((out, consumed))
}

fn inflate_stored(r: &mut BitReader<'_>, out: &mut Vec<u8>) -> Result<(), Error> {
    r.align_to_byte();
    let len = r.read_bits(16)? as u16;
    let nlen = r.read_bits(16)? as u16;
    if len != !nlen {
        return Err(Error::Corrupt("stored block LEN/NLEN mismatch"));
    }
    out.extend(r.read_bytes(len as usize)?);
    Ok(())
}

fn read_dynamic_tables(r: &mut BitReader<'_>) -> Result<(Decoder, Decoder), Error> {
    let hlit = r.read_bits(5)? as usize + 257;
    let hdist = r.read_bits(5)? as usize + 1;
    let hclen = r.read_bits(4)? as usize + 4;
    if hlit > 286 || hdist > 30 {
        return Err(Error::Corrupt("HLIT/HDIST out of range"));
    }

    let mut clc_lens = [0u8; 19];
    for &pos in CLC_ORDER.iter().take(hclen) {
        clc_lens[pos] = r.read_bits(3)? as u8;
    }
    let clc = Decoder::new(&clc_lens)?;

    // Decode the concatenated lit + dist code lengths.
    let mut all = Vec::with_capacity(hlit + hdist);
    while all.len() < hlit + hdist {
        let sym = clc.decode(r)?;
        match sym {
            0..=15 => all.push(sym as u8),
            16 => {
                let &last = all
                    .last()
                    .ok_or(Error::Corrupt("repeat with no prior length"))?;
                let n = 3 + r.read_bits(2)? as usize;
                all.extend(std::iter::repeat_n(last, n));
            }
            17 => {
                let n = 3 + r.read_bits(3)? as usize;
                all.extend(std::iter::repeat_n(0u8, n));
            }
            18 => {
                let n = 11 + r.read_bits(7)? as usize;
                all.extend(std::iter::repeat_n(0u8, n));
            }
            _ => return Err(Error::Corrupt("bad code-length symbol")),
        }
    }
    if all.len() != hlit + hdist {
        return Err(Error::Corrupt("code length overflow"));
    }
    if all[256] == 0 {
        return Err(Error::Corrupt("missing end-of-block code"));
    }
    let lit = Decoder::new(&all[..hlit])?;
    let dist = Decoder::new(&all[hlit..])?;
    Ok((lit, dist))
}

fn inflate_body(
    r: &mut BitReader<'_>,
    lit: &Decoder,
    dist: &Decoder,
    out: &mut Vec<u8>,
) -> Result<(), Error> {
    loop {
        let sym = lit.decode(r)?;
        match sym {
            0..=255 => out.push(sym as u8),
            256 => return Ok(()),
            257..=285 => {
                let (base, extra) = LENGTH_CODES[sym as usize - 257];
                let len = base as usize + r.read_bits(extra as u32)? as usize;
                let dsym = dist.decode(r)? as usize;
                if dsym >= 30 {
                    return Err(Error::Corrupt("distance code out of range"));
                }
                let (dbase, dextra) = DIST_CODES[dsym];
                let d = dbase as usize + r.read_bits(dextra as u32)? as usize;
                if d > out.len() {
                    return Err(Error::Corrupt("distance beyond output start"));
                }
                let start = out.len() - d;
                // Overlapping copies are the RLE mechanism: byte-by-byte.
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(Error::Corrupt("literal/length symbol out of range")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{deflate_compress, Level};

    #[test]
    fn rejects_reserved_block_type() {
        // BFINAL=1, BTYPE=11.
        let data = [0b0000_0111u8];
        assert!(matches!(inflate(&data), Err(Error::Corrupt(_))));
    }

    #[test]
    fn rejects_len_nlen_mismatch() {
        // BFINAL=1, BTYPE=00, then bogus LEN/NLEN.
        let data = [0b0000_0001u8, 0x05, 0x00, 0x05, 0x00];
        assert!(matches!(inflate(&data), Err(Error::Corrupt(_))));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let full = deflate_compress(b"hello world hello world hello", Level::Default);
        assert!(inflate(&full).is_ok());
        for cut in 0..full.len() {
            let r = inflate(&full[..cut]);
            assert!(r.is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn rejects_distance_before_start() {
        // Fixed block with a match at output position 0: literal-free
        // stream starting with a length code must error.
        // Build via compressing then corrupt? Simpler: handcraft —
        // BFINAL=1 BTYPE=01, then code 257 (7-bit 0000001 -> len 3),
        // distance code 0 (5 bits 00000) => dist 1 with empty output.
        let mut w = crate::bitstream::BitWriter::new();
        w.write_bits(1, 1);
        w.write_bits(0b01, 2);
        w.write_code(0b0000001, 7); // symbol 257
        w.write_code(0b00000, 5); // distance 1
        w.write_code(0b0000000, 7); // EOB
        let bytes = w.finish();
        assert!(matches!(
            inflate(&bytes),
            Err(Error::Corrupt("distance beyond output start"))
        ));
    }

    #[test]
    fn decodes_multiblock_streams() {
        let mut data = Vec::new();
        for i in 0..400_000u64 {
            data.push(
                (i.wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407)
                    >> 33) as u8,
            );
        }
        let c = deflate_compress(&data, Level::Fast);
        assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn repeat_with_no_prior_length_is_corrupt() {
        // Dynamic header whose first CLC symbol is 16 (repeat previous).
        // Construct: HLIT=257-257=0, HDIST=1-1=0, HCLEN: enough to give
        // symbol 16 a 1-bit code and symbol 0 a 1-bit code.
        let mut w = crate::bitstream::BitWriter::new();
        w.write_bits(1, 1); // BFINAL
        w.write_bits(0b10, 2); // dynamic
        w.write_bits(0, 5); // HLIT
        w.write_bits(0, 5); // HDIST
        w.write_bits(0, 4); // HCLEN = 4 -> order 16,17,18,0
        w.write_bits(1, 3); // len(16) = 1
        w.write_bits(0, 3); // len(17) = 0
        w.write_bits(0, 3); // len(18) = 0
        w.write_bits(1, 3); // len(0) = 1
                            // CLC codes: sym 0 -> 0 or 1, sym 16 -> the other; canonical:
                            // sym 0 gets code 0, sym 16 gets code 1.
        w.write_code(1, 1); // symbol 16 first: invalid repeat
        let bytes = w.finish();
        assert!(matches!(inflate(&bytes), Err(Error::Corrupt(_))));
    }
}
