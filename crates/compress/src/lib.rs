//! From-scratch DEFLATE (RFC 1951) and gzip (RFC 1952) implementation.
//!
//! The paper's CosmoFlow baseline compares against **gzip-compressed
//! TFRecords** ("the latest release of the dataset provides a compressed
//! variant of the dataset using gzip, which reduces the required storage
//! space by 5×") and shows that general-purpose decompression, which can
//! only run on the host CPU, *slows the pipeline down* even though it
//! shrinks the data. To reproduce that baseline without pulling in a
//! compression dependency, this crate implements the whole stack:
//!
//! * an LSB-first bit reader/writer ([`bitstream`]);
//! * CRC-32 (IEEE, reflected) for the gzip trailer ([`crc32`]);
//! * canonical, length-limited Huffman coding via package-merge
//!   ([`huffman`]);
//! * greedy hash-chain LZ77 matching with lazy evaluation ([`lz77`]);
//! * a DEFLATE block writer choosing stored / fixed / dynamic blocks
//!   ([`deflate`]) and a full inflater ([`fn@inflate`]);
//! * gzip member framing ([`gzip`]) and zlib framing with Adler-32
//!   ([`zlib`]) — the two compression types `TFRecordOptions` accepts.
//!
//! The public entry points are [`gzip_compress`] / [`gzip_decompress`] and
//! the raw [`deflate_compress`] / [`inflate()`].

pub mod bitstream;
pub mod crc32;
pub mod deflate;
pub mod gzip;
pub mod huffman;
pub mod inflate;
pub mod lz77;
pub mod stream;
pub mod zlib;

use std::fmt;

/// Compression effort. Maps to LZ77 search depth, mirroring zlib levels.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// No LZ77 matching; literals only (still Huffman coded).
    Fastest,
    /// Shallow hash-chain search (zlib ~3).
    Fast,
    /// Default search depth with lazy matching (zlib ~6).
    Default,
    /// Deep search (zlib ~9).
    Best,
}

impl Level {
    /// Maximum hash-chain positions examined per match attempt.
    pub(crate) fn max_chain(self) -> usize {
        match self {
            Level::Fastest => 0,
            Level::Fast => 16,
            Level::Default => 128,
            Level::Best => 1024,
        }
    }

    /// Matches at least this long stop the search early.
    pub(crate) fn good_enough(self) -> usize {
        match self {
            Level::Fastest => 8,
            Level::Fast => 16,
            Level::Default => 64,
            Level::Best => 258,
        }
    }

    /// Whether to defer emitting a match in favour of a possibly longer
    /// one starting at the next byte (zlib "lazy matching").
    pub(crate) fn lazy(self) -> bool {
        matches!(self, Level::Default | Level::Best)
    }
}

/// Errors produced while decoding compressed streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Stream ended before the structure was complete.
    UnexpectedEof,
    /// A block type, code, or field violated the DEFLATE spec.
    Corrupt(&'static str),
    /// The gzip header was malformed or used an unsupported feature.
    BadHeader(&'static str),
    /// CRC-32 or length check in the gzip trailer failed.
    ChecksumMismatch,
    /// Huffman code description was invalid (over/under-subscribed).
    BadHuffmanTable,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedEof => write!(f, "unexpected end of stream"),
            Error::Corrupt(what) => write!(f, "corrupt deflate stream: {what}"),
            Error::BadHeader(what) => write!(f, "bad gzip header: {what}"),
            Error::ChecksumMismatch => write!(f, "gzip checksum mismatch"),
            Error::BadHuffmanTable => write!(f, "invalid huffman code lengths"),
        }
    }
}

impl std::error::Error for Error {}

/// Compresses `data` into a raw DEFLATE stream.
pub fn deflate_compress(data: &[u8], level: Level) -> Vec<u8> {
    deflate::compress(data, level)
}

/// Decompresses a raw DEFLATE stream.
pub fn inflate(data: &[u8]) -> Result<Vec<u8>, Error> {
    inflate::inflate(data)
}

/// Compresses `data` into a single-member gzip file.
pub fn gzip_compress(data: &[u8], level: Level) -> Vec<u8> {
    gzip::compress(data, level)
}

/// Compresses `data` into a zlib (RFC 1950) stream.
pub fn zlib_compress(data: &[u8], level: Level) -> Vec<u8> {
    zlib::compress(data, level)
}

/// Decompresses a zlib stream, verifying the Adler-32 trailer.
pub fn zlib_decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    zlib::decompress(data)
}

/// Decompresses a single-member gzip file, verifying CRC-32 and length.
pub fn gzip_decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    gzip::decompress(data)
}

/// Decompresses a gzip file with one or more concatenated members.
pub fn gzip_decompress_multi(data: &[u8]) -> Result<Vec<u8>, Error> {
    gzip::decompress_multi(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_roundtrip_all_levels() {
        let data: Vec<u8> = (0..10_000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 11) as u8)
            .chain(std::iter::repeat_n(7u8, 5000))
            .collect();
        for level in [Level::Fastest, Level::Fast, Level::Default, Level::Best] {
            let gz = gzip_compress(&data, level);
            assert_eq!(gzip_decompress(&gz).unwrap(), data, "{level:?}");
            let raw = deflate_compress(&data, level);
            assert_eq!(inflate(&raw).unwrap(), data, "{level:?}");
        }
    }

    #[test]
    fn empty_input() {
        let gz = gzip_compress(&[], Level::Default);
        assert_eq!(gzip_decompress(&gz).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn compressible_data_actually_shrinks() {
        let data = vec![42u8; 100_000];
        let gz = gzip_compress(&data, Level::Default);
        assert!(gz.len() < data.len() / 100, "len = {}", gz.len());
    }

    #[test]
    fn error_display_is_informative() {
        assert!(Error::ChecksumMismatch.to_string().contains("checksum"));
        assert!(Error::Corrupt("x").to_string().contains("x"));
    }
}
