//! Greedy hash-chain LZ77 matching with lazy evaluation (zlib-style).

/// One DEFLATE token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` (3..=258) bytes from `dist`
    /// (1..=32768) bytes back.
    Match { len: u16, dist: u16 },
}

/// Maximum match length allowed by DEFLATE.
pub const MAX_MATCH: usize = 258;
/// Minimum match length worth encoding.
pub const MIN_MATCH: usize = 3;
/// Sliding window size.
pub const WINDOW: usize = 32 * 1024;

const HASH_BITS: u32 = 15;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let v = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Length of the common prefix of `data[a..]` and `data[b..]`, capped at
/// `MAX_MATCH` and the end of `data`.
#[inline]
fn match_len(data: &[u8], a: usize, b: usize) -> usize {
    let max = MAX_MATCH.min(data.len() - b);
    let mut l = 0;
    while l < max && data[a + l] == data[b + l] {
        l += 1;
    }
    l
}

/// Tokenizes `data` with hash-chain matching.
///
/// `max_chain` bounds positions examined per attempt (0 disables matching
/// entirely), `good_enough` stops the search once a match of that length
/// is found, and `lazy` enables one-byte deferral when the next position
/// has a longer match.
pub fn tokenize(data: &[u8], max_chain: usize, good_enough: usize, lazy: bool) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 2 + 16);
    if n < MIN_MATCH || max_chain == 0 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }

    // head[h] = most recent position with hash h; prev[i] = previous
    // position with the same hash as i. Positions offset by +1 so 0 means
    // "none".
    let mut head = vec![0u32; HASH_SIZE];
    let mut prev = vec![0u32; n];

    let insert = |head: &mut [u32], prev: &mut [u32], data: &[u8], i: usize| {
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            prev[i] = head[h];
            head[h] = (i + 1) as u32;
        }
    };

    let best_match = |head: &[u32], prev: &[u32], i: usize| -> (usize, usize) {
        if i + MIN_MATCH > n {
            return (0, 0);
        }
        let h = hash3(data, i);
        let mut cand = head[h] as usize;
        let mut best_len = 0;
        let mut best_dist = 0;
        let mut chain = max_chain;
        let window_floor = i.saturating_sub(WINDOW);
        while cand > 0 && chain > 0 {
            let c = cand - 1;
            if c < window_floor || c >= i {
                break;
            }
            let l = match_len(data, c, i);
            if l > best_len {
                best_len = l;
                best_dist = i - c;
                if l >= good_enough || l == MAX_MATCH {
                    break;
                }
            }
            cand = prev[c] as usize;
            chain -= 1;
        }
        if best_len >= MIN_MATCH {
            (best_len, best_dist)
        } else {
            (0, 0)
        }
    };

    let mut i = 0;
    while i < n {
        let (len, dist) = best_match(&head, &prev, i);
        if len == 0 {
            tokens.push(Token::Literal(data[i]));
            insert(&mut head, &mut prev, data, i);
            i += 1;
            continue;
        }
        if lazy && i + 1 < n {
            // Peek at the next position: if it has a strictly longer
            // match, emit this byte as a literal instead.
            insert(&mut head, &mut prev, data, i);
            let (next_len, next_dist) = best_match(&head, &prev, i + 1);
            if next_len > len {
                tokens.push(Token::Literal(data[i]));
                i += 1;
                // Emit the deferred match now.
                tokens.push(Token::Match {
                    len: next_len as u16,
                    dist: next_dist as u16,
                });
                for k in i..(i + next_len).min(n) {
                    insert(&mut head, &mut prev, data, k);
                }
                i += next_len;
                continue;
            }
            tokens.push(Token::Match {
                len: len as u16,
                dist: dist as u16,
            });
            for k in (i + 1)..(i + len).min(n) {
                insert(&mut head, &mut prev, data, k);
            }
            i += len;
        } else {
            tokens.push(Token::Match {
                len: len as u16,
                dist: dist as u16,
            });
            for k in i..(i + len).min(n) {
                insert(&mut head, &mut prev, data, k);
            }
            i += len;
        }
    }
    tokens
}

/// Expands tokens back to bytes (reference decoder used by tests).
pub fn expand(tokens: &[Token]) -> Vec<u8> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], chain: usize, lazy: bool) {
        let toks = tokenize(data, chain, 64, lazy);
        assert_eq!(expand(&toks), data);
    }

    #[test]
    fn literal_only_when_disabled() {
        let toks = tokenize(b"abcabcabc", 0, 8, false);
        assert_eq!(toks.len(), 9);
        assert!(toks.iter().all(|t| matches!(t, Token::Literal(_))));
    }

    #[test]
    fn finds_repeats() {
        let toks = tokenize(b"abcabcabcabc", 128, 64, false);
        assert!(toks.iter().any(|t| matches!(t, Token::Match { .. })));
        assert_eq!(expand(&toks), b"abcabcabcabc");
    }

    #[test]
    fn overlapping_match_run() {
        // "aaaa..." should compress to one literal + one long match with
        // dist 1 (RLE via overlapping copy).
        let data = vec![b'a'; 300];
        let toks = tokenize(&data, 128, 258, false);
        assert_eq!(expand(&toks), data);
        assert!(
            matches!(toks[1], Token::Match { dist: 1, .. }),
            "{:?}",
            &toks[..3]
        );
    }

    #[test]
    fn random_data_roundtrips() {
        let data: Vec<u8> = (0..5000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        roundtrip(&data, 128, true);
        roundtrip(&data, 16, false);
    }

    #[test]
    fn text_like_data_roundtrips_with_lazy() {
        let data = b"the quick brown fox jumps over the lazy dog. \
                     the quick brown fox jumps over the lazy dog again."
            .repeat(20);
        roundtrip(&data, 1024, true);
        let toks = tokenize(&data, 1024, 258, true);
        let matched: usize = toks
            .iter()
            .map(|t| match t {
                Token::Match { len, .. } => *len as usize,
                _ => 0,
            })
            .sum();
        assert!(
            matched > data.len() / 2,
            "matched {matched} of {}",
            data.len()
        );
    }

    #[test]
    fn short_inputs() {
        roundtrip(b"", 128, true);
        roundtrip(b"a", 128, true);
        roundtrip(b"ab", 128, true);
        roundtrip(b"abc", 128, true);
    }

    #[test]
    fn match_len_caps_at_max() {
        let data = vec![b'x'; 1000];
        assert_eq!(match_len(&data, 0, 1), MAX_MATCH);
    }
}
