//! `std::io` adapters around the gzip codec.
//!
//! [`GzipWriter`] wraps any `Write` sink: bytes written to it accumulate
//! and every `flush_member()` (or the final `finish()`) emits one
//! complete gzip member. [`GzipReader`] wraps any `Read` source holding
//! one or more concatenated members and streams the decompressed bytes
//! out through `Read`. Compression itself is batch-per-member (our
//! DEFLATE encoder builds per-block Huffman tables over the whole
//! member), which the adapter documents rather than hides.

use crate::gzip;
use crate::{Error, Level};
use std::io::{self, Read, Write};

/// Buffering gzip writer: each flushed member is independently
/// decodable, and the concatenation is a valid multi-member gzip file.
pub struct GzipWriter<W: Write> {
    inner: W,
    level: Level,
    buf: Vec<u8>,
    members: usize,
}

impl<W: Write> GzipWriter<W> {
    /// Wraps a sink.
    pub fn new(inner: W, level: Level) -> Self {
        Self {
            inner,
            level,
            buf: Vec::new(),
            members: 0,
        }
    }

    /// Compresses everything buffered so far into one gzip member and
    /// writes it to the sink. No-op on an empty buffer.
    pub fn flush_member(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let member = gzip::compress(&self.buf, self.level);
        self.inner.write_all(&member)?;
        self.buf.clear();
        self.members += 1;
        Ok(())
    }

    /// Members emitted so far.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Flushes any remaining buffered bytes and returns the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.flush_member()?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

impl<W: Write> Write for GzipWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_member()?;
        self.inner.flush()
    }
}

/// Reader over a (possibly multi-member) gzip stream.
///
/// The source is drained and decompressed eagerly at construction —
/// every trailer is verified before the first byte is served.
pub struct GzipReader {
    data: Vec<u8>,
    pos: usize,
}

impl GzipReader {
    /// Reads the whole source and decompresses all members.
    pub fn new<R: Read>(mut source: R) -> Result<Self, Error> {
        let mut compressed = Vec::new();
        source
            .read_to_end(&mut compressed)
            .map_err(|_| Error::UnexpectedEof)?;
        let data = gzip::decompress_multi(&compressed)?;
        Ok(Self { data, pos: 0 })
    }

    /// Decompressed length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the stream holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Read for GzipReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip_single_member() {
        let mut w = GzipWriter::new(Vec::new(), Level::Default);
        w.write_all(b"hello ").unwrap();
        w.write_all(b"stream").unwrap();
        let sink = w.finish().unwrap();
        let mut r = GzipReader::new(&sink[..]).unwrap();
        let mut out = String::new();
        r.read_to_string(&mut out).unwrap();
        assert_eq!(out, "hello stream");
    }

    #[test]
    fn flush_member_emits_independent_members() {
        let mut w = GzipWriter::new(Vec::new(), Level::Default);
        w.write_all(b"first|").unwrap();
        w.flush_member().unwrap();
        w.write_all(b"second").unwrap();
        let sink = w.finish().unwrap();
        assert_eq!(w_members(&sink), 2);
        let mut r = GzipReader::new(&sink[..]).unwrap();
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"first|second");
    }

    /// Counts gzip magic headers at member boundaries.
    fn w_members(data: &[u8]) -> usize {
        let mut rest = data;
        let mut n = 0;
        while rest.len() >= 2 && rest[0] == 0x1F && rest[1] == 0x8B {
            // Walk one member using the multi-member decoder on a prefix
            // trick: decompress_multi consumes everything, so count by
            // decoding member-by-member via trial lengths is overkill —
            // scan for the next magic after a plausible minimum instead.
            n += 1;
            // Find next header candidate (works for our deterministic
            // writer output in tests).
            if let Some(next) = rest[2..].windows(2).position(|w| w == [0x1F, 0x8B]) {
                rest = &rest[next + 2..];
            } else {
                break;
            }
        }
        n
    }

    #[test]
    fn empty_writer_emits_nothing() {
        let w = GzipWriter::new(Vec::new(), Level::Default);
        let sink = w.finish().unwrap();
        assert!(sink.is_empty());
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(GzipReader::new(&b"not gzip"[..]).is_err());
    }

    #[test]
    fn reader_serves_partial_reads() {
        let mut w = GzipWriter::new(Vec::new(), Level::Fast);
        w.write_all(&[7u8; 1000]).unwrap();
        let sink = w.finish().unwrap();
        let mut r = GzipReader::new(&sink[..]).unwrap();
        assert_eq!(r.len(), 1000);
        let mut chunk = [0u8; 64];
        let mut total = 0;
        loop {
            let n = r.read(&mut chunk).unwrap();
            if n == 0 {
                break;
            }
            assert!(chunk[..n].iter().all(|&b| b == 7));
            total += n;
        }
        assert_eq!(total, 1000);
    }
}
