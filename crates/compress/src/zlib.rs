//! zlib (RFC 1950) framing: the other compression type `TFRecordOptions`
//! accepts. A 2-byte header, the raw DEFLATE stream, and an Adler-32
//! trailer.

use crate::{deflate, inflate, Error, Level};

/// Adler-32 checksum (RFC 1950 §8), the zlib trailer.
#[derive(Debug, Clone, Copy)]
pub struct Adler32 {
    a: u32,
    b: u32,
}

const MOD_ADLER: u32 = 65521;

impl Default for Adler32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Adler32 {
    /// Fresh state (checksum of the empty string is 1).
    pub fn new() -> Self {
        Self { a: 1, b: 0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        // Process in blocks small enough that the accumulators cannot
        // overflow before the modulo (5552 is the classic zlib bound).
        for chunk in data.chunks(5552) {
            for &byte in chunk {
                self.a += byte as u32;
                self.b += self.a;
            }
            self.a %= MOD_ADLER;
            self.b %= MOD_ADLER;
        }
    }

    /// Final checksum.
    pub fn finalize(self) -> u32 {
        (self.b << 16) | self.a
    }
}

/// One-shot Adler-32.
pub fn adler32(data: &[u8]) -> u32 {
    let mut a = Adler32::new();
    a.update(data);
    a.finalize()
}

/// Compresses into a zlib stream (deflate method, 32 KiB window).
pub fn compress(data: &[u8], level: Level) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 3 + 16);
    // CMF: method 8 (deflate), CINFO 7 (32K window).
    let cmf: u8 = 0x78;
    // FLG: level bits + check bits so (CMF<<8 | FLG) % 31 == 0.
    let flevel: u8 = match level {
        Level::Fastest => 0,
        Level::Fast => 1,
        Level::Default => 2,
        Level::Best => 3,
    };
    let mut flg = flevel << 6;
    let rem = ((cmf as u16) << 8 | flg as u16) % 31;
    if rem != 0 {
        flg += (31 - rem) as u8;
    }
    out.push(cmf);
    out.push(flg);
    out.extend_from_slice(&deflate::compress(data, level));
    out.extend_from_slice(&adler32(data).to_be_bytes());
    out
}

/// Decompresses a zlib stream, verifying the Adler-32 trailer.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, Error> {
    if data.len() < 6 {
        return Err(Error::UnexpectedEof);
    }
    let cmf = data[0];
    let flg = data[1];
    if cmf & 0x0F != 8 {
        return Err(Error::BadHeader("zlib compression method"));
    }
    if !((cmf as u16) << 8 | flg as u16).is_multiple_of(31) {
        return Err(Error::BadHeader("zlib header check bits"));
    }
    if flg & 0x20 != 0 {
        return Err(Error::BadHeader("preset dictionaries unsupported"));
    }
    let body = &data[2..data.len() - 4];
    let out = inflate::inflate(body)?;
    // `data.len() >= 6` is checked above; plain indexing keeps this
    // panic-free under the repo's no_panics lint.
    let t = data.len() - 4;
    let want = u32::from_be_bytes([data[t], data[t + 1], data[t + 2], data[t + 3]]);
    if adler32(&out) != want {
        return Err(Error::ChecksumMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adler_known_vectors() {
        // RFC 1950 reference values.
        assert_eq!(adler32(b""), 1);
        assert_eq!(adler32(b"Wikipedia"), 0x11E60398);
        assert_eq!(adler32(b"a"), 0x00620062);
    }

    #[test]
    fn adler_incremental_matches_oneshot_on_long_input() {
        let data: Vec<u8> = (0..100_000u32).map(|i| (i * 7) as u8).collect();
        let mut a = Adler32::new();
        a.update(&data[..33_333]);
        a.update(&data[33_333..]);
        assert_eq!(a.finalize(), adler32(&data));
    }

    #[test]
    fn roundtrip_all_levels() {
        let data = b"zlib framing test payload ".repeat(64);
        for level in [Level::Fastest, Level::Fast, Level::Default, Level::Best] {
            let z = compress(&data, level);
            assert_eq!(decompress(&z).unwrap(), data, "{level:?}");
        }
    }

    #[test]
    fn header_passes_the_31_check() {
        for level in [Level::Fastest, Level::Fast, Level::Default, Level::Best] {
            let z = compress(b"x", level);
            assert_eq!(((z[0] as u16) << 8 | z[1] as u16) % 31, 0);
        }
    }

    #[test]
    fn rejects_bad_method_and_checksum() {
        let mut z = compress(b"payload", Level::Default);
        let mut bad = z.clone();
        bad[0] = 0x79; // method 9
        assert!(matches!(decompress(&bad), Err(Error::BadHeader(_))));
        let n = z.len();
        z[n - 1] ^= 1;
        assert_eq!(decompress(&z), Err(Error::ChecksumMismatch));
    }

    #[test]
    fn rejects_truncation() {
        let z = compress(b"hello zlib", Level::Default);
        for cut in 0..z.len() {
            assert!(decompress(&z[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rejects_preset_dictionary() {
        let mut z = compress(b"x", Level::Default);
        // Set FDICT and recompute FCHECK from scratch.
        z[1] = (z[1] & 0xC0) | 0x20;
        let rem = ((z[0] as u16) << 8 | z[1] as u16) % 31;
        if rem != 0 {
            z[1] += (31 - rem) as u8;
        }
        assert_eq!(((z[0] as u16) << 8 | z[1] as u16) % 31, 0);
        assert!(matches!(decompress(&z), Err(Error::BadHeader(_))));
    }
}
