//! Property tests: DEFLATE/gzip must round-trip arbitrary byte vectors at
//! every compression level, and corrupted trailers must be rejected.

use proptest::prelude::*;
use sciml_compress::{deflate_compress, gzip_compress, gzip_decompress, inflate, Error, Level};

fn levels() -> impl Strategy<Value = Level> {
    prop_oneof![
        Just(Level::Fastest),
        Just(Level::Fast),
        Just(Level::Default),
        Just(Level::Best),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deflate_roundtrip_random(data in prop::collection::vec(any::<u8>(), 0..8192), level in levels()) {
        let c = deflate_compress(&data, level);
        prop_assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn deflate_roundtrip_structured(
        pattern in prop::collection::vec(any::<u8>(), 1..64),
        repeats in 1usize..200,
        level in levels(),
    ) {
        let data: Vec<u8> = pattern.iter().cycle().take(pattern.len() * repeats).copied().collect();
        let c = deflate_compress(&data, level);
        prop_assert_eq!(inflate(&c).unwrap(), data);
    }

    #[test]
    fn gzip_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4096), level in levels()) {
        let gz = gzip_compress(&data, level);
        prop_assert_eq!(gzip_decompress(&gz).unwrap(), data);
    }

    #[test]
    fn gzip_detects_single_byte_corruption_in_trailer(
        data in prop::collection::vec(any::<u8>(), 1..512),
        which in 0usize..8,
        bit in 0u8..8,
    ) {
        let mut gz = gzip_compress(&data, Level::Default);
        let n = gz.len();
        gz[n - 8 + which] ^= 1 << bit;
        // Trailer corruption must surface as *some* error (checksum, or a
        // stream error if the flipped byte happens to matter earlier).
        prop_assert!(gzip_decompress(&gz).is_err());
    }

    #[test]
    fn truncated_gzip_always_errors(data in prop::collection::vec(any::<u8>(), 0..512), frac in 0.0f64..1.0) {
        let gz = gzip_compress(&data, Level::Default);
        let cut = ((gz.len() as f64) * frac) as usize;
        if cut < gz.len() {
            prop_assert!(gzip_decompress(&gz[..cut]).is_err());
        }
    }

    #[test]
    fn inflate_never_panics_on_garbage(data in prop::collection::vec(any::<u8>(), 0..2048)) {
        // Arbitrary bytes: must return Ok or Err, never panic or hang.
        let _ = inflate(&data);
    }

    #[test]
    fn gzip_of_highly_compressible_is_small(byte in any::<u8>(), n in 1000usize..50_000) {
        let data = vec![byte; n];
        let gz = gzip_compress(&data, Level::Default);
        prop_assert!(gz.len() < n / 50 + 64, "{} for {}", gz.len(), n);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Concatenating independently compressed members round-trips
    /// through the multi-member decoder.
    #[test]
    fn multi_member_roundtrip(
        parts in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..256), 1..5),
    ) {
        let mut cat = Vec::new();
        let mut expect = Vec::new();
        for p in &parts {
            cat.extend_from_slice(&gzip_compress(p, Level::Fast));
            expect.extend_from_slice(p);
        }
        prop_assert_eq!(sciml_compress::gzip_decompress_multi(&cat).unwrap(), expect);
    }

    /// zlib round-trips arbitrary data.
    #[test]
    fn zlib_roundtrip(data in prop::collection::vec(any::<u8>(), 0..4096), level in levels()) {
        let z = sciml_compress::zlib_compress(&data, level);
        prop_assert_eq!(sciml_compress::zlib_decompress(&z).unwrap(), data);
    }
}

#[test]
fn checksum_error_type_is_distinguishable() {
    let data = b"distinguish me".repeat(8);
    let mut gz = gzip_compress(&data, Level::Default);
    let n = gz.len();
    gz[n - 5] ^= 0x40; // inside CRC field
    assert_eq!(gzip_decompress(&gz), Err(Error::ChecksumMismatch));
}
