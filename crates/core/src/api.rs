//! High-level dataset building and pipeline construction.

use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_data::serialize;
use sciml_gpusim::{Gpu, GpuSpec};
use sciml_pipeline::decoder::{
    CosmoBaseline, CosmoGzip, CosmoPluginCpu, CosmoPluginGpu, DeepCamBaseline, DeepCamGzip,
    DeepCamPluginCpu, DeepCamPluginGpu,
};
use sciml_pipeline::source::VecSource;
use sciml_pipeline::{DecoderPlugin, Pipeline, PipelineConfig, SampleSource};
use sciml_store::{ShardPlan, Stager, StagerConfig};
use std::path::Path;
use std::sync::Arc;

/// On-disk sample format (the four pipeline variants of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EncodedFormat {
    /// Uncompressed FP32 baseline layout.
    Base,
    /// gzip-compressed baseline layout.
    Gzip,
    /// The custom domain-specific encoding (used by both plugin modes).
    Custom,
}

/// Which workload a dataset belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// CosmoFlow universes.
    CosmoFlow,
    /// DeepCAM climate samples.
    DeepCam,
}

/// Generates synthetic datasets and encodes them in any format.
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    workload: Workload,
    cosmo_cfg: CosmoFlowConfig,
    cam_cfg: DeepCamConfig,
}

impl DatasetBuilder {
    /// Builder for CosmoFlow data with the given generator config.
    pub fn cosmoflow(cfg: CosmoFlowConfig) -> Self {
        Self {
            workload: Workload::CosmoFlow,
            cosmo_cfg: cfg,
            cam_cfg: DeepCamConfig::test_small(),
        }
    }

    /// Builder for DeepCAM data with the given generator config.
    pub fn deepcam(cfg: DeepCamConfig) -> Self {
        Self {
            workload: Workload::DeepCam,
            cosmo_cfg: CosmoFlowConfig::test_small(),
            cam_cfg: cfg,
        }
    }

    /// Workload of this builder.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Generates `n` samples encoded in `format`, one byte blob each.
    pub fn build(&self, n: usize, format: EncodedFormat) -> Vec<Vec<u8>> {
        match self.workload {
            Workload::CosmoFlow => {
                let g = UniverseGenerator::new(self.cosmo_cfg.clone());
                (0..n as u64)
                    .map(|i| {
                        let s = g.generate(i);
                        match format {
                            EncodedFormat::Base => serialize::cosmo_to_payload(&s),
                            EncodedFormat::Gzip => {
                                CosmoGzip::compress_payload(&serialize::cosmo_to_payload(&s))
                            }
                            EncodedFormat::Custom => cf::encode(&s).to_bytes(),
                        }
                    })
                    .collect()
            }
            Workload::DeepCam => {
                let g = ClimateGenerator::new(self.cam_cfg.clone());
                (0..n as u64)
                    .map(|i| {
                        let s = g.generate(i);
                        match format {
                            EncodedFormat::Base => {
                                serialize::deepcam_to_h5(&s).expect("serialize deepcam")
                            }
                            EncodedFormat::Gzip => sciml_compress::gzip_compress(
                                &serialize::deepcam_to_h5(&s).expect("serialize deepcam"),
                                sciml_compress::Level::Default,
                            ),
                            EncodedFormat::Custom => {
                                dc::encode(&s, &dc::EncoderConfig::default()).0.to_bytes()
                            }
                        }
                    })
                    .collect()
            }
        }
    }

    /// The decoder plugin matching a (format, device) combination.
    pub fn plugin(
        &self,
        format: EncodedFormat,
        gpu: Option<GpuSpec>,
        op: Op,
    ) -> Arc<dyn DecoderPlugin> {
        match (self.workload, format, gpu) {
            (Workload::CosmoFlow, EncodedFormat::Base, _) => Arc::new(CosmoBaseline { op }),
            (Workload::CosmoFlow, EncodedFormat::Gzip, _) => Arc::new(CosmoGzip { op }),
            (Workload::CosmoFlow, EncodedFormat::Custom, None) => Arc::new(CosmoPluginCpu { op }),
            (Workload::CosmoFlow, EncodedFormat::Custom, Some(spec)) => {
                Arc::new(CosmoPluginGpu::new(Gpu::new(spec), op))
            }
            (Workload::DeepCam, EncodedFormat::Base, _) => Arc::new(DeepCamBaseline { op }),
            (Workload::DeepCam, EncodedFormat::Gzip, _) => Arc::new(DeepCamGzip { op }),
            (Workload::DeepCam, EncodedFormat::Custom, None) => Arc::new(DeepCamPluginCpu { op }),
            (Workload::DeepCam, EncodedFormat::Custom, Some(spec)) => {
                Arc::new(DeepCamPluginGpu::new(Gpu::new(spec), op))
            }
        }
    }
}

/// Builds and launches a loading pipeline over in-memory encoded samples.
///
/// Batch tensors come from the pipeline's internal
/// [`BufferPool`](sciml_pipeline::BufferPool) (sized by
/// [`PipelineConfig::pool_capacity`]); drop batches when done with them
/// to recycle their buffers.
pub fn build_pipeline(
    samples: Vec<Vec<u8>>,
    plugin: Arc<dyn DecoderPlugin>,
    cfg: PipelineConfig,
) -> sciml_pipeline::Result<Pipeline> {
    Pipeline::launch(Arc::new(VecSource::new(samples)), plugin, cfg)
}

/// [`build_pipeline`] with an explicit telemetry bundle: stage metrics
/// land in `telemetry.registry` and worker spans in `telemetry.tracer`.
pub fn build_pipeline_observed(
    samples: Vec<Vec<u8>>,
    plugin: Arc<dyn DecoderPlugin>,
    cfg: PipelineConfig,
    telemetry: sciml_obs::Telemetry,
) -> sciml_pipeline::Result<Pipeline> {
    Pipeline::launch_with(Arc::new(VecSource::new(samples)), plugin, cfg, telemetry)
}

/// [`build_pipeline_observed`] plus a background
/// [`PipelineSampler`](sciml_obs::PipelineSampler) attributing pipeline
/// time to its bottleneck stage. The sampler's stage table is derived
/// from the pipeline config's thread counts; call
/// [`PipelineSampler::stop`](sciml_obs::PipelineSampler::stop) after
/// draining the pipeline for the final
/// [`AttributionReport`](sciml_obs::AttributionReport).
pub fn build_attributed_pipeline(
    samples: Vec<Vec<u8>>,
    plugin: Arc<dyn DecoderPlugin>,
    cfg: PipelineConfig,
    telemetry: sciml_obs::Telemetry,
    sample_interval: std::time::Duration,
) -> sciml_pipeline::Result<(Pipeline, sciml_obs::PipelineSampler)> {
    // Sampler first: its baseline snapshot must predate any pipeline
    // work, or the first window's deltas are lost to the baseline.
    let sampler = sciml_obs::PipelineSampler::spawn(
        Arc::clone(&telemetry.registry),
        Arc::clone(&telemetry.tracer),
        sciml_obs::SamplerConfig {
            interval: sample_interval,
            stages: sciml_obs::pipeline_stages(
                cfg.reader_threads as u64,
                cfg.decode_threads as u64,
            ),
            live: false,
        },
    );
    let pipeline =
        Pipeline::launch_with(Arc::new(VecSource::new(samples)), plugin, cfg, telemetry)?;
    Ok((pipeline, sampler))
}

/// Launches a pipeline over a backing source while a background worker
/// pool stages it into `staging_dir` in shard-sized units.
///
/// The pipeline starts immediately: fetches of already-staged samples
/// are served from the node-local packed copy, the rest fall through to
/// `backing`. Staging survives restarts — a journal in `staging_dir`
/// records completed shards, and a re-run with the same directory and
/// plans resumes instead of re-fetching.
///
/// `plans` partitions the samples into shards; use the server's
/// [`shard_manifest`](sciml_serve::RemoteSource::shard_manifest) for a
/// remote backing source, or
/// [`plan_by_count`](sciml_store::manifest::plan_by_count) for a local
/// one. The returned [`Stager`] owns the background workers: watch
/// [`Stager::progress`], and call [`Stager::stop`] + [`Stager::join`]
/// to wind staging down early.
pub fn build_staged_pipeline(
    backing: Arc<dyn SampleSource>,
    plans: Vec<ShardPlan>,
    staging_dir: impl AsRef<Path>,
    plugin: Arc<dyn DecoderPlugin>,
    cfg: PipelineConfig,
    stager_cfg: StagerConfig,
    telemetry: sciml_obs::Telemetry,
) -> sciml_pipeline::Result<(Pipeline, Stager)> {
    let stager = Stager::with_telemetry(
        backing,
        plans,
        staging_dir.as_ref(),
        stager_cfg,
        telemetry.clone(),
    )?;
    stager.spawn_workers();
    let pipeline = Pipeline::launch_with(Arc::new(stager.source()), plugin, cfg, telemetry)?;
    Ok((pipeline, stager))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmo_dataset_builds_in_all_formats_and_decodes() {
        let b = DatasetBuilder::cosmoflow(CosmoFlowConfig::test_small());
        for format in [
            EncodedFormat::Base,
            EncodedFormat::Gzip,
            EncodedFormat::Custom,
        ] {
            let blobs = b.build(2, format);
            assert_eq!(blobs.len(), 2);
            let plugin = b.plugin(format, None, Op::Log1p);
            let d = plugin.decode(&blobs[0]).unwrap();
            assert_eq!(d.data.len(), 32 * 32 * 32 * 4);
        }
    }

    #[test]
    fn custom_format_is_smallest() {
        let b = DatasetBuilder::cosmoflow(CosmoFlowConfig::test_small());
        let base = b.build(1, EncodedFormat::Base);
        let custom = b.build(1, EncodedFormat::Custom);
        assert!(custom[0].len() * 3 < base[0].len());
    }

    #[test]
    fn deepcam_gpu_plugin_through_builder() {
        let b = DatasetBuilder::deepcam(DeepCamConfig::test_small());
        let blobs = b.build(1, EncodedFormat::Custom);
        let plugin = b.plugin(EncodedFormat::Custom, Some(GpuSpec::A100), Op::Identity);
        let d = plugin.decode(&blobs[0]).unwrap();
        assert_eq!(d.data.len(), 144 * 96 * 4);
    }

    #[test]
    fn staged_pipeline_end_to_end() {
        let mut cfg = CosmoFlowConfig::test_small();
        cfg.grid = 8;
        let b = DatasetBuilder::cosmoflow(cfg);
        let blobs = b.build(6, EncodedFormat::Custom);
        let plugin = b.plugin(EncodedFormat::Custom, None, Op::Log1p);
        let dir = std::env::temp_dir().join(format!(
            "sciml_core_staged_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let telemetry = sciml_obs::Telemetry::new();
        let (p, stager) = build_staged_pipeline(
            Arc::new(VecSource::new(blobs)),
            sciml_store::manifest::plan_by_count(6, 2),
            &dir,
            plugin,
            PipelineConfig {
                batch_size: 2,
                epochs: 1,
                ..Default::default()
            },
            StagerConfig::default(),
            telemetry.clone(),
        )
        .unwrap();
        let (batches, stats) = p.collect_all().unwrap();
        assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), 6);
        assert_eq!(stats.sample_count(), 6);
        // Workers drain the three planned shards and exit on their own.
        let progress = stager.join().unwrap();
        assert!(progress.complete(), "staging finished: {progress:?}");
        assert!(dir.join("staging.journal").is_file());
        assert!(dir.join("shard_000000.sshard").is_file());
        let snap = telemetry.registry.snapshot();
        assert_eq!(snap.counter("store.staging.shards_staged"), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn pool_config_and_metrics_flow_through_facade() {
        let mut cfg = CosmoFlowConfig::test_small();
        cfg.grid = 8;
        let b = DatasetBuilder::cosmoflow(cfg);
        let blobs = b.build(6, EncodedFormat::Custom);
        let plugin = b.plugin(EncodedFormat::Custom, None, Op::Log1p);
        let telemetry = sciml_obs::Telemetry::new();
        let mut p = build_pipeline_observed(
            blobs,
            plugin,
            PipelineConfig {
                batch_size: 2,
                epochs: 2,
                pool_capacity: Some(3),
                ..Default::default()
            },
            telemetry.clone(),
        )
        .unwrap();
        assert_eq!(p.pool().capacity(), 3);
        let mut batches = 0;
        while let Some(b) = p.next_batch().unwrap() {
            assert_eq!(b.len(), 2);
            batches += 1; // batch dropped here → tensor returns to pool
        }
        assert_eq!(batches, 6);
        let snap = telemetry.registry.snapshot();
        assert!(snap.counter("pipeline.pool.hits") > 0, "pool never reused");
        assert!(snap.counter("pipeline.pool.misses") > 0);
    }

    #[test]
    fn end_to_end_pipeline_via_facade() {
        let mut cfg = CosmoFlowConfig::test_small();
        cfg.grid = 8;
        let b = DatasetBuilder::cosmoflow(cfg);
        let blobs = b.build(6, EncodedFormat::Custom);
        let plugin = b.plugin(EncodedFormat::Custom, None, Op::Log1p);
        let p = build_pipeline(
            blobs,
            plugin,
            PipelineConfig {
                batch_size: 2,
                epochs: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let (batches, stats) = p.collect_all().unwrap();
        assert_eq!(batches.iter().map(|b| b.len()).sum::<usize>(), 6);
        assert_eq!(stats.sample_count(), 6);
    }
}
