//! Convergence-preservation experiments (paper Figs. 6 and 7).
//!
//! Both figures compare training-loss trajectories when the model is fed
//! **base** samples (FP32 straight from storage, preprocessed per value)
//! versus **decoded** samples (through the real codec, FP16 emission,
//! fused preprocessing). Everything else — weight init, shuffle order,
//! learning schedule, optimizer — is held identical, so any divergence
//! is attributable to the input encoding alone, which is exactly the
//! paper's experimental design ("we merely used the same learning
//! schedule … for both classes of samples").

use crate::minidnn::models::{cosmoflow_mini, crop_mask, deepcam_mini};
use crate::minidnn::optim::Sgd;
use crate::minidnn::train::{train_regression_val, train_segmentation_val, History, TrainConfig};
use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_half::slice::widen;
#[cfg(test)]
use sciml_minidnn::InputPath;

/// Shared configuration of a convergence run.
#[derive(Debug, Clone)]
pub struct ConvergenceConfig {
    /// Training samples.
    pub n_samples: usize,
    /// Spatial size (CosmoFlow grid edge / DeepCAM crop scale divisor).
    pub size: usize,
    /// Epochs.
    pub epochs: usize,
    /// Batch size ("with two samples processed per step" — Fig. 6).
    pub batch: usize,
    /// Base learning rate.
    pub lr: f32,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl ConvergenceConfig {
    /// Fast configuration for tests.
    pub fn test_small() -> Self {
        Self {
            n_samples: 8,
            size: 12,
            epochs: 3,
            batch: 2,
            lr: 1e-3,
            seed: 1,
        }
    }

    /// Scaled-down stand-in for the paper's single-GPU runs
    /// (1536-sample DeepCAM / 128-sample CosmoFlow sessions).
    pub fn paper_scaled() -> Self {
        Self {
            n_samples: 48,
            size: 16,
            epochs: 8,
            batch: 2,
            lr: 1.5e-3,
            seed: 1,
        }
    }
}

/// The two loss trajectories of one base-vs-decoded comparison.
#[derive(Debug, Clone)]
pub struct ConvergenceRun {
    /// FP32 baseline history.
    pub base: History,
    /// FP16 decoded-samples history.
    pub decoded: History,
}

impl ConvergenceRun {
    /// Largest absolute per-epoch loss gap between the two paths.
    pub fn max_epoch_gap(&self) -> f32 {
        self.base
            .epoch_losses
            .iter()
            .zip(&self.decoded.epoch_losses)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

/// Fig. 7: CosmoFlow parameter regression, base vs decoded inputs.
///
/// The decoded path runs the real LUT codec with the fused `log1p` and
/// FP16 emission; the base path applies `log1p` per voxel in FP32.
pub fn cosmoflow_convergence(cfg: &ConvergenceConfig, seed: u64) -> ConvergenceRun {
    let gen_cfg = CosmoFlowConfig {
        grid: cfg.size,
        halos: 10,
        mass_scale: 60.0,
        background: 1,
        seed: 77,
    };
    let g = UniverseGenerator::new(gen_cfg);
    // Held-out validation shard: a quarter of the training size, drawn
    // from disjoint universe indices.
    let n_val = (cfg.n_samples / 4).max(1);
    let total = cfg.n_samples + n_val;
    let mut base_inputs = Vec::with_capacity(total);
    let mut decoded_inputs = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    for i in 0..total as u64 {
        let s = g.generate(i);
        labels.push(s.label.as_array());
        // Base: per-voxel op in FP32, no rounding.
        base_inputs.push(
            s.counts
                .iter()
                .map(|&c| (c as f32).ln_1p())
                .collect::<Vec<f32>>(),
        );
        // Decoded: the real fused FP16 path.
        let enc = cf::encode(&s);
        decoded_inputs.push(widen(&cf::decode(&enc, Op::Log1p).expect("decode")));
    }
    let shape = [4usize, cfg.size, cfg.size, cfg.size];
    let train_cfg = TrainConfig {
        batch: cfg.batch,
        epochs: cfg.epochs,
        base_lr: cfg.lr,
        warmup_steps: 4,
        shuffle_seed: seed,
    };
    let run = |inputs: &[Vec<f32>]| {
        let (train_x, val_x) = inputs.split_at(cfg.n_samples);
        let (train_y, val_y) = labels.split_at(cfg.n_samples);
        let mut net = cosmoflow_mini(cfg.size, seed);
        let mut opt = Sgd::new(cfg.lr, 0.9);
        train_regression_val(
            &mut net,
            &mut opt,
            train_x,
            &shape,
            train_y,
            &train_cfg,
            Some((val_x, val_y)),
        )
    };
    ConvergenceRun {
        base: run(&base_inputs),
        decoded: run(&decoded_inputs),
    }
}

/// Fig. 6: DeepCAM segmentation, base vs decoded inputs.
///
/// The decoded path runs the real (lossy) differential codec.
pub fn deepcam_convergence(cfg: &ConvergenceConfig, seed: u64) -> ConvergenceRun {
    let (w, h, c) = (cfg.size * 3, cfg.size * 2, 4);
    let gen_cfg = DeepCamConfig {
        width: w,
        height: h,
        channels: c,
        cyclones: 1,
        rivers: 1,
        noise: 2.5e-3,
        seed: 99,
    };
    let g = ClimateGenerator::new(gen_cfg);
    // Normalize channel families to unit-ish scale so the tiny network
    // trains; the op is affine, hence fused in the decoded path.
    let op = Op::Normalize {
        scale: 0.01,
        offset: 0.0,
    };
    let n_val = (cfg.n_samples / 4).max(1);
    let total = cfg.n_samples + n_val;
    let mut base_inputs = Vec::with_capacity(total);
    let mut decoded_inputs = Vec::with_capacity(total);
    let mut masks = Vec::with_capacity(total);
    for i in 0..total as u64 {
        let s = g.generate(i);
        // Logit crop: two 3×3 valid convs trim 2 px per side.
        masks.push(crop_mask(&s.mask, w, h, 2));
        base_inputs.push(s.data.iter().map(|&v| op.apply(v)).collect::<Vec<f32>>());
        let (enc, _) = dc::encode(&s, &dc::EncoderConfig::default());
        decoded_inputs.push(widen(&dc::decode(&enc, op).expect("decode")));
    }
    let shape = [c, h, w];
    let train_cfg = TrainConfig {
        batch: cfg.batch,
        epochs: cfg.epochs,
        base_lr: cfg.lr,
        warmup_steps: 4,
        shuffle_seed: seed,
    };
    let run = |inputs: &[Vec<f32>]| {
        let (train_x, val_x) = inputs.split_at(cfg.n_samples);
        let (train_m, val_m) = masks.split_at(cfg.n_samples);
        let mut net = deepcam_mini(c, seed);
        let mut opt = Sgd::new(cfg.lr, 0.9);
        train_segmentation_val(
            &mut net,
            &mut opt,
            train_x,
            &shape,
            train_m,
            3,
            &train_cfg,
            Some((val_x, val_m)),
        )
    };
    ConvergenceRun {
        base: run(&base_inputs),
        decoded: run(&decoded_inputs),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmoflow_decoded_matches_base_convergence() {
        let cfg = ConvergenceConfig::test_small();
        let run = cosmoflow_convergence(&cfg, 3);
        assert_eq!(run.base.epoch_losses.len(), cfg.epochs);
        // Losses must decrease and the two paths must track each other.
        assert!(run.base.final_loss() < run.base.epoch_losses[0]);
        assert!(run.decoded.final_loss() < run.decoded.epoch_losses[0]);
        let scale = run.base.epoch_losses[0].abs().max(1e-6);
        assert!(
            run.max_epoch_gap() / scale < 0.15,
            "gap {} of {scale} ({:?} vs {:?})",
            run.max_epoch_gap(),
            run.base.epoch_losses,
            run.decoded.epoch_losses
        );
    }

    #[test]
    fn deepcam_decoded_matches_base_convergence_despite_lossy_codec() {
        let cfg = ConvergenceConfig::test_small();
        let run = deepcam_convergence(&cfg, 5);
        assert!(run.base.final_loss() < run.base.epoch_losses[0]);
        let scale = run.base.epoch_losses[0].abs().max(1e-6);
        assert!(
            run.max_epoch_gap() / scale < 0.15,
            "gap {} ({:?} vs {:?})",
            run.max_epoch_gap(),
            run.base.epoch_losses,
            run.decoded.epoch_losses
        );
    }

    #[test]
    fn validation_losses_track_between_paths_too() {
        // §VIII-A: "The same behavior is also seen in the loss function
        // of the validation samples."
        let cfg = ConvergenceConfig::test_small();
        let run = cosmoflow_convergence(&cfg, 4);
        assert_eq!(run.base.val_losses.len(), cfg.epochs);
        assert_eq!(run.decoded.val_losses.len(), cfg.epochs);
        let gap: f32 = run
            .base
            .val_losses
            .iter()
            .zip(&run.decoded.val_losses)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        let scale = run.base.val_losses[0].abs().max(1e-6);
        assert!(gap / scale < 0.2, "val gap {gap} of {scale}");
    }

    #[test]
    fn different_seeds_give_different_trajectories() {
        let cfg = ConvergenceConfig::test_small();
        let a = cosmoflow_convergence(&cfg, 1);
        let b = cosmoflow_convergence(&cfg, 2);
        assert_ne!(a.base.step_losses, b.base.step_losses);
    }

    /// The InputPath enum documents the two paths; make sure it is wired
    /// the way the runs use it.
    #[test]
    fn input_paths_are_distinct() {
        assert_ne!(InputPath::Fp32Base, InputPath::Fp16Decoded);
    }
}
