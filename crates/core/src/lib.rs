//! `sciml-core` — facade over the preprocessing-pipeline reproduction.
//!
//! Re-exports every subsystem and provides the high-level entry points a
//! downstream user needs:
//!
//! * [`api`] — dataset builders (generate + encode in any of the four
//!   on-disk formats) and pipeline construction helpers;
//! * [`convergence`] — the Fig. 6 / Fig. 7 experiments: train the
//!   miniature models on FP32 baseline inputs versus FP16 decoded inputs
//!   under an identical schedule and compare loss trajectories.
//!
//! Subsystem crates (also usable directly):
//!
//! | crate | role |
//! |---|---|
//! | [`half`] | software binary16 |
//! | [`compress`] | from-scratch DEFLATE/gzip baseline |
//! | [`data`] | synthetic CosmoFlow/DeepCAM datasets + containers |
//! | [`codec`] | the paper's two domain-specific codecs |
//! | [`gpusim`] | SIMT warp simulator + GPU decode kernels |
//! | [`pipeline`] | DALI-like prefetching loader |
//! | [`platform`] | Table-I platform models + epoch simulator |
//! | [`minidnn`] | miniature DNN framework for convergence runs |
//! | [`serve`] | disaggregated dataset server + remote source |
//! | [`obs`] | unified telemetry: metrics registry, histograms, tracing |
//! | [`store`] | packed shard store + background node-local staging |

pub use sciml_codec as codec;
pub use sciml_compress as compress;
pub use sciml_data as data;
pub use sciml_gpusim as gpusim;
pub use sciml_half as half;
pub use sciml_minidnn as minidnn;
pub use sciml_obs as obs;
pub use sciml_pipeline as pipeline;
pub use sciml_platform as platform;
pub use sciml_serve as serve;
pub use sciml_store as store;

pub mod api;
pub mod convergence;

/// Common imports for examples and downstream users.
pub mod prelude {
    pub use crate::api::{
        build_pipeline, build_pipeline_observed, build_staged_pipeline, DatasetBuilder,
        EncodedFormat,
    };
    pub use crate::convergence::{
        cosmoflow_convergence, deepcam_convergence, ConvergenceConfig, ConvergenceRun,
    };
    pub use sciml_codec::{
        Op, {cosmoflow as cosmo_codec, deepcam as deepcam_codec},
    };
    pub use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
    pub use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
    pub use sciml_gpusim::{Gpu, GpuSpec};
    pub use sciml_half::F16;
    pub use sciml_obs::{MetricsRegistry, Telemetry, Tracer};
    pub use sciml_pipeline::{Pipeline, PipelineConfig};
    pub use sciml_platform::{EpochModel, ExperimentConfig, Format, PlatformSpec, WorkloadProfile};
    pub use sciml_serve::{RemoteSource, ServeBuilder, ServerConfig};
    pub use sciml_store::{pack_store, PackConfig, ShardSource, Stager, StagerConfig};
}
