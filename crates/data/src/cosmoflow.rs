//! Synthetic CosmoFlow universes.
//!
//! The real dataset is a 512³ particle-count histogram of N-body dark
//! matter simulations at four redshifts, decomposed into 128³ sub-volumes,
//! for ~10k universes whose four cosmological parameters vary uniformly
//! over ±30 % of their means. The paper's Fig. 5 analysis shows the
//! properties the codec exploits:
//!
//! 1. few hundred **unique count values** per sample, power-law frequency;
//! 2. the 4-redshift count tuples at a voxel are **highly coupled**, so
//!    the number of unique 4-groups is tiny versus the permutation bound;
//! 3. **progressive clustering**: structure sharpens toward redshift 0.
//!
//! The generator reproduces all three mechanically: a fixed set of halos
//! per universe deposits an integer kernel into the grid, with kernel
//! concentration increasing as redshift decreases. Because deposits are
//! quantized sums of a few kernel values, the count histogram is sparse
//! and heavy-tailed, and because all redshifts share the same halos, the
//! per-voxel tuples are strongly coupled.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four cosmological parameters used as regression labels
/// (Ωm, σ8, n_s, H0-scaled), each varied uniformly over ±30 % of its mean.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CosmoParams {
    /// Matter density parameter (mean 0.30).
    pub omega_m: f32,
    /// Amplitude of matter fluctuations (mean 0.80).
    pub sigma8: f32,
    /// Spectral index (mean 0.96).
    pub n_s: f32,
    /// Hubble parameter / 100 (mean 0.70).
    pub h: f32,
}

impl CosmoParams {
    /// Mean values of the parameter grid.
    pub const MEANS: CosmoParams = CosmoParams {
        omega_m: 0.30,
        sigma8: 0.80,
        n_s: 0.96,
        h: 0.70,
    };

    /// Draws parameters uniformly over ±30 % of the means.
    pub fn sample(rng: &mut impl Rng) -> CosmoParams {
        let v = |mean: f32, rng: &mut dyn rand::RngCore| {
            mean * (1.0 + 0.3 * (rng.gen::<f32>() * 2.0 - 1.0))
        };
        CosmoParams {
            omega_m: v(Self::MEANS.omega_m, rng),
            sigma8: v(Self::MEANS.sigma8, rng),
            n_s: v(Self::MEANS.n_s, rng),
            h: v(Self::MEANS.h, rng),
        }
    }

    /// Label vector in the order used by the benchmark.
    pub fn as_array(&self) -> [f32; 4] {
        [self.omega_m, self.sigma8, self.n_s, self.h]
    }
}

/// Number of redshift snapshots per universe (z = 3.0, 1.5, 0.5, 0.0).
pub const N_REDSHIFTS: usize = 4;

/// Redshift values of the four snapshots.
pub const REDSHIFTS: [f32; N_REDSHIFTS] = [3.0, 1.5, 0.5, 0.0];

/// Configuration of the synthetic universe generator.
#[derive(Debug, Clone)]
pub struct CosmoFlowConfig {
    /// Grid edge length (the paper uses 128 sub-volumes of a 512 grid;
    /// tests use 32).
    pub grid: usize,
    /// Halos per universe; controls structure density.
    pub halos: usize,
    /// Base kernel mass scale; controls the count magnitude distribution.
    pub mass_scale: f32,
    /// Uniform background particle density (counts per voxel).
    pub background: u16,
    /// Master seed; each universe derives its own stream.
    pub seed: u64,
}

impl Default for CosmoFlowConfig {
    fn default() -> Self {
        Self {
            grid: 128,
            halos: 64,
            mass_scale: 60.0,
            background: 1,
            seed: 0x5C1_3ACE,
        }
    }
}

impl CosmoFlowConfig {
    /// A small configuration for unit tests (32³ grid).
    pub fn test_small() -> Self {
        Self {
            grid: 32,
            halos: 24,
            mass_scale: 80.0,
            background: 1,
            seed: 7,
        }
    }

    /// Voxels per redshift channel.
    pub fn voxels(&self) -> usize {
        self.grid * self.grid * self.grid
    }
}

/// One CosmoFlow sample: four redshift channels of particle counts over
/// the same spatial grid, plus the regression label.
#[derive(Debug, Clone, PartialEq)]
pub struct CosmoSample {
    /// Grid edge length.
    pub grid: usize,
    /// Channel-major counts: `counts[z * voxels + v]`.
    pub counts: Vec<u16>,
    /// Cosmological parameter label.
    pub label: CosmoParams,
}

impl CosmoSample {
    /// Voxels per channel.
    pub fn voxels(&self) -> usize {
        self.grid * self.grid * self.grid
    }

    /// Total stored values (voxels × redshifts).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True when the sample holds no voxels.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// The 4-tuple of counts at flat voxel index `v`.
    #[inline]
    pub fn group(&self, v: usize) -> [u16; N_REDSHIFTS] {
        let n = self.voxels();
        [
            self.counts[v],
            self.counts[n + v],
            self.counts[2 * n + v],
            self.counts[3 * n + v],
        ]
    }

    /// Size of the sample in raw f32 storage (what the TFRecord baseline
    /// ships: counts widened to f32).
    pub fn raw_f32_bytes(&self) -> usize {
        self.counts.len() * 4
    }
}

/// Procedural universe generator.
#[derive(Debug, Clone)]
pub struct UniverseGenerator {
    cfg: CosmoFlowConfig,
}

#[derive(Debug, Clone, Copy)]
struct Halo {
    x: f32,
    y: f32,
    z: f32,
    mass: f32,
}

impl UniverseGenerator {
    /// Creates a generator over the given configuration.
    pub fn new(cfg: CosmoFlowConfig) -> Self {
        Self { cfg }
    }

    /// Configuration in use.
    pub fn config(&self) -> &CosmoFlowConfig {
        &self.cfg
    }

    /// Generates universe number `index` deterministically.
    pub fn generate(&self, index: u64) -> CosmoSample {
        let mut rng =
            StdRng::seed_from_u64(self.cfg.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let label = CosmoParams::sample(&mut rng);
        let g = self.cfg.grid;
        let voxels = self.cfg.voxels();

        // Halo field: positions uniform; masses power-law with slope set
        // by n_s, amplitude by sigma8. More matter (omega_m) => more halos.
        let n_halos = ((self.cfg.halos as f32) * (label.omega_m / CosmoParams::MEANS.omega_m))
            .round()
            .max(4.0) as usize;
        let halos: Vec<Halo> = (0..n_halos)
            .map(|_| {
                let u: f32 = rng.gen::<f32>().max(1e-4);
                // Pareto-like mass distribution.
                let slope = 1.2 + (CosmoParams::MEANS.n_s - label.n_s) * 2.0;
                // Quantize masses to a coarse lattice: distinct halos then
                // share kernel value sets, which is what keeps the
                // unique-group count low in the real histograms.
                let raw_mass = self.cfg.mass_scale
                    * (label.sigma8 / CosmoParams::MEANS.sigma8)
                    * u.powf(-1.0 / slope).min(8.0);
                let mass = (raw_mass / 8.0).round() * 8.0;
                Halo {
                    x: rng.gen::<f32>() * g as f32,
                    y: rng.gen::<f32>() * g as f32,
                    z: rng.gen::<f32>() * g as f32,
                    mass,
                }
            })
            .collect();

        let mut counts = vec![0u16; voxels * N_REDSHIFTS];
        for (zi, &redshift) in REDSHIFTS.iter().enumerate() {
            // Clustering concentration grows toward z=0: kernel radius
            // shrinks and central density rises (h controls growth rate).
            let growth = (1.0 + redshift).powf(-0.9 * label.h / CosmoParams::MEANS.h);
            let r_scale = (g as f32 / 22.0) * (1.0 - 0.55 * growth).max(0.18);
            let amp = 0.35 + 1.1 * growth;
            let chan = &mut counts[zi * voxels..(zi + 1) * voxels];
            deposit(chan, g, &halos, r_scale, amp);
        }
        // Voids carry scattered unclustered particles: a small count per
        // voxel, correlated across redshifts (it is the same particle),
        // slowly draining into halos toward z = 0. This is what gives the
        // real histograms their gzip-resistant entropy while adding only
        // a bounded set of extra 4-tuples.
        if self.cfg.background > 0 {
            let salt = self.cfg.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F);
            for v in 0..voxels {
                if (0..N_REDSHIFTS).all(|z| counts[z * voxels + v] == 0) {
                    let h = (v as u64 ^ salt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let h = h ^ (h >> 29);
                    // Base void count 0..=3, heavier at the low end.
                    let base = match h & 0xF {
                        0..=6 => 0u16,
                        7..=10 => 1,
                        11..=13 => 2,
                        _ => 3,
                    } * self.cfg.background;
                    let drain = ((h >> 8) & 0x3) as u16;
                    for z in 0..N_REDSHIFTS {
                        // Later snapshots (z index up) lose a particle when
                        // the drain bit for that epoch fires.
                        let lost = u16::from(z as u16 >= 2 && drain == z as u16);
                        counts[z * voxels + v] = base.saturating_sub(lost);
                    }
                }
            }
        }
        CosmoSample {
            grid: g,
            counts,
            label,
        }
    }

    /// Generates `n` universes starting at `first`.
    pub fn generate_batch(&self, first: u64, n: usize) -> Vec<CosmoSample> {
        (0..n as u64).map(|i| self.generate(first + i)).collect()
    }
}

/// Deposits the integer halo kernel into a channel grid.
///
/// Each halo contributes `round(amp * mass / (1 + shell))` where `shell`
/// is the *quantized* squared radius `floor(r²/r_s²)`, within a
/// truncation radius; contributions sum, then saturate at `u16::MAX`.
/// Quantizing the radius into shells (and each contribution rather than
/// the sum) keeps both the unique value set and the unique 4-tuple set
/// small, matching Fig. 5's properties: counts are piecewise constant on
/// shell intersections, so a halo contributes only a handful of distinct
/// values per channel.
fn deposit(chan: &mut [u16], g: usize, halos: &[Halo], r_scale: f32, amp: f32) {
    chan.fill(0);
    let trunc = (2.5 * r_scale).ceil() as i64;
    let r_s2 = r_scale * r_scale;
    let gi = g as i64;
    for h in halos {
        let (hx, hy, hz) = (h.x as i64, h.y as i64, h.z as i64);
        for dz in -trunc..=trunc {
            let z = (hz + dz).rem_euclid(gi) as usize;
            for dy in -trunc..=trunc {
                let y = (hy + dy).rem_euclid(gi) as usize;
                let row = (z * g + y) * g;
                for dx in -trunc..=trunc {
                    let x = (hx + dx).rem_euclid(gi) as usize;
                    let fx = h.x - (hx + dx) as f32;
                    let fy = h.y - (hy + dy) as f32;
                    let fz = h.z - (hz + dz) as f32;
                    let r2 = fx * fx + fy * fy + fz * fz;
                    if r2 > (trunc * trunc) as f32 + 0.0 {
                        continue;
                    }
                    let shell = (r2 / r_s2).floor();
                    let c = (amp * h.mass / (1.0 + shell)).round() as u32;
                    if c == 0 {
                        continue;
                    }
                    let idx = row + x;
                    chan[idx] = (chan[idx] as u32 + c).min(u16::MAX as u32) as u16;
                }
            }
        }
    }
}

/// Summary statistics used by the Fig. 5 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleStats {
    /// Distinct count values across all four channels.
    pub unique_values: usize,
    /// Distinct 4-tuples across voxels.
    pub unique_groups: usize,
    /// Frequency of each unique value, descending (power-law check).
    pub value_frequencies: Vec<(u16, usize)>,
}

/// Computes the Fig. 5 statistics for a sample.
pub fn sample_stats(sample: &CosmoSample) -> SampleStats {
    use std::collections::HashMap;
    let mut value_freq: HashMap<u16, usize> = HashMap::new();
    for &c in &sample.counts {
        *value_freq.entry(c).or_insert(0) += 1;
    }
    let mut groups: HashMap<[u16; N_REDSHIFTS], usize> = HashMap::new();
    for v in 0..sample.voxels() {
        *groups.entry(sample.group(v)).or_insert(0) += 1;
    }
    let mut value_frequencies: Vec<(u16, usize)> =
        value_freq.iter().map(|(&v, &f)| (v, f)).collect();
    value_frequencies.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    SampleStats {
        unique_values: value_freq.len(),
        unique_groups: groups.len(),
        value_frequencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sample() -> CosmoSample {
        UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0)
    }

    #[test]
    fn deterministic_per_index() {
        let g = UniverseGenerator::new(CosmoFlowConfig::test_small());
        assert_eq!(g.generate(3), g.generate(3));
        assert_ne!(g.generate(3).counts, g.generate(4).counts);
    }

    #[test]
    fn labels_within_30_percent_band() {
        let g = UniverseGenerator::new(CosmoFlowConfig::test_small());
        for i in 0..50 {
            let l = g.generate(i).label;
            for (v, m) in l.as_array().iter().zip(CosmoParams::MEANS.as_array()) {
                assert!(*v >= m * 0.699 && *v <= m * 1.301, "{v} vs mean {m}");
            }
        }
    }

    #[test]
    fn unique_values_are_few_relative_to_voxels() {
        let s = small_sample();
        let stats = sample_stats(&s);
        // 32³×4 = 131072 values, unique set must be orders smaller.
        assert!(stats.unique_values < 2000, "{}", stats.unique_values);
        assert!(stats.unique_values > 10, "{}", stats.unique_values);
    }

    #[test]
    fn groups_far_below_permutation_bound() {
        let s = small_sample();
        let stats = sample_stats(&s);
        let bound = (stats.unique_values as u64).pow(4);
        assert!(
            (stats.unique_groups as u64) < bound / 100,
            "{} vs bound {}",
            stats.unique_groups,
            bound
        );
        // And below the voxel count too (coupling, not saturation).
        assert!(stats.unique_groups < s.voxels());
    }

    #[test]
    fn value_histogram_is_heavy_tailed() {
        let s = small_sample();
        let stats = sample_stats(&s);
        // The most frequent values (void counts 0..=3) dominate.
        let top4: usize = stats
            .value_frequencies
            .iter()
            .take(4)
            .map(|&(_, f)| f)
            .sum();
        let total: usize = stats.value_frequencies.iter().map(|&(_, f)| f).sum();
        assert!(top4 * 2 > total, "top4 {top4} of {total}");
        // And the frequencies decay fast: the 10th most frequent value
        // appears at least an order of magnitude less often than the top.
        let top = stats.value_frequencies[0].1;
        let tenth = stats.value_frequencies[9.min(stats.value_frequencies.len() - 1)].1;
        assert!(tenth * 10 < top, "tenth {tenth} vs top {top}");
    }

    #[test]
    fn progressive_clustering_sharpens_peak() {
        // Max count should grow as redshift approaches 0 (channel 3).
        let s = small_sample();
        let n = s.voxels();
        let max_z3 = s.counts[..n].iter().copied().max().unwrap();
        let max_z0 = s.counts[3 * n..].iter().copied().max().unwrap();
        assert!(max_z0 > max_z3, "z0 max {max_z0} vs z3 max {max_z3}");
    }

    #[test]
    fn group_accessor_matches_layout() {
        let s = small_sample();
        let n = s.voxels();
        let g = s.group(17);
        assert_eq!(g[0], s.counts[17]);
        assert_eq!(g[2], s.counts[2 * n + 17]);
    }

    #[test]
    fn raw_f32_size() {
        let s = small_sample();
        assert_eq!(s.raw_f32_bytes(), 32 * 32 * 32 * 4 * 4);
    }

    #[test]
    fn batch_generation_is_indexed() {
        let g = UniverseGenerator::new(CosmoFlowConfig::test_small());
        let batch = g.generate_batch(5, 3);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[1], g.generate(6));
    }
}
