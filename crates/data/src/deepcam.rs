//! Synthetic DeepCAM climate samples.
//!
//! The real dataset holds 16-channel 1152×768 FP32 images from the CAM5
//! climate model (temperature, winds, pressure, humidity at several
//! altitudes) with segmentation masks for extreme weather. The paper's
//! differential codec exploits two properties (§V-A):
//!
//! 1. "the x-direction contains the smoothest changes in values" —
//!    fields vary slowly along longitude;
//! 2. "areas with abrupt changes … potentially carry interesting climate
//!    phenomena" — cyclones and atmospheric rivers create sparse, sharp
//!    gradients that must survive compression unharmed.
//!
//! The generator reproduces both: each channel is a sum of low-frequency
//! waves (lower frequency along x than y) plus a latitudinal gradient,
//! perturbed by localized vortices (cyclones) and narrow curved bands
//! (atmospheric rivers), with small additive sensor noise. Label masks
//! mark the anomaly footprints with the 3-class scheme of the benchmark.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Segmentation classes used by the DeepCAM benchmark.
pub const CLASS_BACKGROUND: u8 = 0;
/// Tropical-cyclone pixels.
pub const CLASS_CYCLONE: u8 = 1;
/// Atmospheric-river pixels.
pub const CLASS_RIVER: u8 = 2;

/// Configuration of the synthetic climate generator.
#[derive(Debug, Clone)]
pub struct DeepCamConfig {
    /// Image width (longitude; the real data uses 1152).
    pub width: usize,
    /// Image height (latitude; the real data uses 768).
    pub height: usize,
    /// Channels per sample (the real data uses 16).
    pub channels: usize,
    /// Cyclones per sample.
    pub cyclones: usize,
    /// Atmospheric rivers per sample.
    pub rivers: usize,
    /// Sensor-noise standard deviation relative to field amplitude.
    pub noise: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for DeepCamConfig {
    fn default() -> Self {
        Self {
            width: 1152,
            height: 768,
            channels: 16,
            cyclones: 3,
            rivers: 2,
            noise: 2.5e-3,
            seed: 0xDEE9_CA55,
        }
    }
}

impl DeepCamConfig {
    /// Small configuration for unit tests.
    pub fn test_small() -> Self {
        Self {
            width: 144,
            height: 96,
            channels: 4,
            cyclones: 2,
            rivers: 1,
            noise: 2.5e-3,
            seed: 11,
        }
    }

    /// Pixels per channel.
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Total f32 values per sample.
    pub fn values(&self) -> usize {
        self.pixels() * self.channels
    }
}

/// One DeepCAM sample: channel-major f32 image stack plus the per-pixel
/// class mask.
#[derive(Debug, Clone, PartialEq)]
pub struct DeepCamSample {
    /// Longitude extent.
    pub width: usize,
    /// Latitude extent.
    pub height: usize,
    /// Channel count.
    pub channels: usize,
    /// `data[c * w * h + y * w + x]`.
    pub data: Vec<f32>,
    /// `mask[y * w + x]` ∈ {0, 1, 2}.
    pub mask: Vec<u8>,
}

impl DeepCamSample {
    /// One channel as a slice.
    pub fn channel(&self, c: usize) -> &[f32] {
        let n = self.width * self.height;
        &self.data[c * n..(c + 1) * n]
    }

    /// One image line (row `y` of channel `c`) — the codec's unit of
    /// independent decode.
    pub fn line(&self, c: usize, y: usize) -> &[f32] {
        let start = c * self.width * self.height + y * self.width;
        &self.data[start..start + self.width]
    }

    /// Raw FP32 sample size in bytes (the baseline's transfer unit).
    pub fn raw_f32_bytes(&self) -> usize {
        self.data.len() * 4
    }
}

/// Procedural climate-field generator.
#[derive(Debug, Clone)]
pub struct ClimateGenerator {
    cfg: DeepCamConfig,
}

#[derive(Debug, Clone, Copy)]
struct Cyclone {
    x: f32,
    y: f32,
    radius: f32,
    strength: f32,
}

#[derive(Debug, Clone, Copy)]
struct River {
    /// Anchor latitude at x = 0.
    y0: f32,
    /// Meander amplitude.
    amp: f32,
    /// Meander wavelength.
    wavelength: f32,
    /// Band half-width.
    halfwidth: f32,
    strength: f32,
}

impl ClimateGenerator {
    /// Creates a generator over the configuration.
    pub fn new(cfg: DeepCamConfig) -> Self {
        Self { cfg }
    }

    /// Configuration in use.
    pub fn config(&self) -> &DeepCamConfig {
        &self.cfg
    }

    /// Generates sample `index` deterministically.
    pub fn generate(&self, index: u64) -> DeepCamSample {
        let c = &self.cfg;
        let mut rng = StdRng::seed_from_u64(c.seed ^ index.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let (w, h) = (c.width as f32, c.height as f32);

        let cyclones: Vec<Cyclone> = (0..c.cyclones)
            .map(|_| Cyclone {
                x: rng.gen::<f32>() * w,
                y: rng.gen::<f32>() * h,
                radius: (0.02 + 0.03 * rng.gen::<f32>()) * w,
                strength: 6.0 + 10.0 * rng.gen::<f32>(),
            })
            .collect();
        let rivers: Vec<River> = (0..c.rivers)
            .map(|_| River {
                y0: (0.15 + 0.7 * rng.gen::<f32>()) * h,
                amp: (0.05 + 0.08 * rng.gen::<f32>()) * h,
                wavelength: (0.4 + 0.6 * rng.gen::<f32>()) * w,
                halfwidth: (0.008 + 0.012 * rng.gen::<f32>()) * h,
                strength: 4.0 + 6.0 * rng.gen::<f32>(),
            })
            .collect();

        let n = c.pixels();
        let mut data = vec![0f32; n * c.channels];
        for ch in 0..c.channels {
            // Channel personality: base level and wave set. Lower spatial
            // frequency along x than y gives the x-smoothness the codec
            // exploits.
            let base = match ch % 4 {
                0 => 270.0 + 20.0 * rng.gen::<f32>(), // temperature-like (K)
                1 => 101.0 + 2.0 * rng.gen::<f32>(),  // pressure-like (kPa)
                2 => 10.0 * (rng.gen::<f32>() - 0.5), // wind-like (m/s)
                _ => 0.02 * rng.gen::<f32>(),         // humidity-like (kg/kg)
            };
            let amp = match ch % 4 {
                0 => 12.0,
                1 => 1.5,
                2 => 8.0,
                _ => 0.008,
            };
            let waves: Vec<(f32, f32, f32, f32, f32)> = (0..4)
                .map(|_| {
                    (
                        (0.5 + 1.5 * rng.gen::<f32>()) * std::f32::consts::TAU / w, // kx (low)
                        (1.0 + 4.0 * rng.gen::<f32>()) * std::f32::consts::TAU / h, // ky
                        rng.gen::<f32>() * std::f32::consts::TAU,                   // phase
                        0.2 + 0.8 * rng.gen::<f32>(),                               // rel amp
                        rng.gen::<f32>() - 0.5,                                     // tilt
                    )
                })
                .collect();
            let lat_grad = amp * (0.5 + rng.gen::<f32>());
            let anomaly_scale = amp / 10.0;

            let chan = &mut data[ch * n..(ch + 1) * n];
            for y in 0..c.height {
                let fy = y as f32;
                for x in 0..c.width {
                    let fx = x as f32;
                    let mut v = base + lat_grad * (fy / h - 0.5);
                    for &(kx, ky, phase, a, tilt) in &waves {
                        v +=
                            amp * a * 0.25 * (kx * fx + ky * fy * (1.0 + tilt * 0.1) + phase).sin();
                    }
                    // Sharp anomalies.
                    for cy in &cyclones {
                        let dx = wrap_dist(fx, cy.x, w);
                        let dy = fy - cy.y;
                        let r2 = dx * dx + dy * dy;
                        let rr = cy.radius * cy.radius;
                        if r2 < 9.0 * rr {
                            // Steep core with ring structure: large local
                            // gradients.
                            let core = (-r2 / (0.25 * rr)).exp();
                            let ring = (-((r2 / rr).sqrt() - 1.5).powi(2) * 4.0).exp();
                            v += anomaly_scale * cy.strength * (2.0 * core - ring);
                        }
                    }
                    for rv in &rivers {
                        let band_y =
                            rv.y0 + rv.amp * (std::f32::consts::TAU * fx / rv.wavelength).sin();
                        let d = (fy - band_y).abs();
                        if d < 4.0 * rv.halfwidth {
                            v += anomaly_scale * rv.strength * (-(d / rv.halfwidth).powi(2)).exp();
                        }
                    }
                    // Sensor noise.
                    let noise = amp * c.noise * (rng.gen::<f32>() * 2.0 - 1.0);
                    chan[y * c.width + x] = v + noise;
                }
            }
        }

        // Label mask from anomaly footprints.
        let mut mask = vec![CLASS_BACKGROUND; n];
        for y in 0..c.height {
            let fy = y as f32;
            for x in 0..c.width {
                let fx = x as f32;
                let idx = y * c.width + x;
                for cy in &cyclones {
                    let dx = wrap_dist(fx, cy.x, w);
                    let dy = fy - cy.y;
                    if dx * dx + dy * dy < cy.radius * cy.radius * 2.25 {
                        mask[idx] = CLASS_CYCLONE;
                    }
                }
                if mask[idx] == CLASS_BACKGROUND {
                    for rv in &rivers {
                        let band_y =
                            rv.y0 + rv.amp * (std::f32::consts::TAU * fx / rv.wavelength).sin();
                        if (fy - band_y).abs() < 2.0 * rv.halfwidth {
                            mask[idx] = CLASS_RIVER;
                        }
                    }
                }
            }
        }

        DeepCamSample {
            width: c.width,
            height: c.height,
            channels: c.channels,
            data,
            mask,
        }
    }

    /// Generates `count` samples starting at `first`.
    pub fn generate_batch(&self, first: u64, count: usize) -> Vec<DeepCamSample> {
        (0..count as u64)
            .map(|i| self.generate(first + i))
            .collect()
    }
}

/// Periodic (wrap-around) distance along the longitude axis.
#[inline]
fn wrap_dist(a: f32, b: f32, period: f32) -> f32 {
    let d = (a - b).abs();
    d.min(period - d)
}

/// Mean absolute x-gradient vs y-gradient of a channel; the generator
/// must produce smaller x-gradients (the property the codec exploits).
pub fn gradient_anisotropy(sample: &DeepCamSample, channel: usize) -> (f32, f32) {
    let (w, h) = (sample.width, sample.height);
    let chan = sample.channel(channel);
    let mut gx = 0f64;
    let mut gy = 0f64;
    let mut nx = 0u64;
    let mut ny = 0u64;
    for y in 0..h {
        for x in 1..w {
            gx += (chan[y * w + x] - chan[y * w + x - 1]).abs() as f64;
            nx += 1;
        }
    }
    for y in 1..h {
        for x in 0..w {
            gy += (chan[y * w + x] - chan[(y - 1) * w + x]).abs() as f64;
            ny += 1;
        }
    }
    ((gx / nx as f64) as f32, (gy / ny as f64) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeepCamSample {
        ClimateGenerator::new(DeepCamConfig::test_small()).generate(0)
    }

    #[test]
    fn deterministic_and_indexed() {
        let g = ClimateGenerator::new(DeepCamConfig::test_small());
        assert_eq!(g.generate(1), g.generate(1));
        assert_ne!(g.generate(1).data, g.generate(2).data);
    }

    #[test]
    fn shapes_are_consistent() {
        let s = sample();
        assert_eq!(s.data.len(), 144 * 96 * 4);
        assert_eq!(s.mask.len(), 144 * 96);
        assert_eq!(s.channel(3).len(), 144 * 96);
        assert_eq!(s.line(2, 10).len(), 144);
    }

    #[test]
    fn x_direction_is_smoother_than_y() {
        let s = sample();
        for c in 0..s.channels {
            let (gx, gy) = gradient_anisotropy(&s, c);
            assert!(gx < gy, "channel {c}: gx={gx} gy={gy}");
        }
    }

    #[test]
    fn mask_has_all_classes() {
        let s = sample();
        let has = |cls: u8| s.mask.contains(&cls);
        assert!(has(CLASS_BACKGROUND));
        assert!(has(CLASS_CYCLONE));
        assert!(has(CLASS_RIVER));
        // Anomalies must be sparse.
        let anom = s.mask.iter().filter(|&&m| m != CLASS_BACKGROUND).count();
        assert!(anom * 4 < s.mask.len(), "{anom} of {}", s.mask.len());
    }

    #[test]
    fn anomalies_create_sharp_gradients() {
        // Max |dx| inside cyclone pixels should exceed the median line
        // gradient by a wide margin.
        let s = sample();
        let w = s.width;
        let chan = s.channel(0);
        let mut anom_max = 0f32;
        let mut bg_sum = 0f64;
        let mut bg_n = 0u64;
        for y in 0..s.height {
            for x in 1..w {
                let g = (chan[y * w + x] - chan[y * w + x - 1]).abs();
                if s.mask[y * w + x] == CLASS_CYCLONE {
                    anom_max = anom_max.max(g);
                } else {
                    bg_sum += g as f64;
                    bg_n += 1;
                }
            }
        }
        let bg_mean = (bg_sum / bg_n as f64) as f32;
        assert!(anom_max > 8.0 * bg_mean, "anom {anom_max} vs bg {bg_mean}");
    }

    #[test]
    fn channel_families_have_distinct_ranges() {
        let s = sample();
        let mean = |c: usize| -> f32 {
            let ch = s.channel(c);
            ch.iter().sum::<f32>() / ch.len() as f32
        };
        // temperature-like channel sits near 270, humidity-like near 0.
        assert!(mean(0) > 200.0);
        assert!(mean(3).abs() < 1.0);
    }

    #[test]
    fn wrap_distance() {
        assert_eq!(wrap_dist(1.0, 9.0, 10.0), 2.0);
        assert_eq!(wrap_dist(3.0, 5.0, 10.0), 2.0);
    }

    #[test]
    fn raw_size_matches_paper_shape() {
        let full = DeepCamConfig::default();
        assert_eq!(full.values() * 4, 1152 * 768 * 16 * 4); // ~56.6 MB
    }
}
