//! `h5lite`: a minimal self-describing binary container standing in for
//! the HDF5 files of the original DeepCAM dataset.
//!
//! Layout (all little-endian):
//!
//! ```text
//! magic "H5LT" | u16 version | u16 dataset count
//! per dataset: u16 name len | name bytes | u8 dtype | u8 ndim |
//!              ndim × u64 shape | u64 payload offset | u64 payload len
//! payload region (offsets relative to start of payload region)
//! u32 CRC-32 of everything above
//! ```
//!
//! Only the features the pipeline needs are implemented: named n-d
//! datasets of f32/u16/u8 and whole-dataset reads. That matches how the
//! benchmarks use HDF5 — one `data` and one `label` dataset per file.

use crate::{DataError, Result};
use sciml_compress::crc32::crc32;

const MAGIC: &[u8; 4] = b"H5LT";
const VERSION: u16 = 1;

/// Element type of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// 32-bit float.
    F32,
    /// 16-bit unsigned integer.
    U16,
    /// 8-bit unsigned integer.
    U8,
}

impl DType {
    fn code(self) -> u8 {
        match self {
            DType::F32 => 0,
            DType::U16 => 1,
            DType::U8 => 2,
        }
    }

    fn from_code(c: u8) -> Result<Self> {
        match c {
            0 => Ok(DType::F32),
            1 => Ok(DType::U16),
            2 => Ok(DType::U8),
            _ => Err(DataError::Format("unknown dtype code")),
        }
    }

    /// Bytes per element.
    pub fn size(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::U16 => 2,
            DType::U8 => 1,
        }
    }
}

/// In-memory dataset description plus raw little-endian payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Dataset name (e.g. `"data"`, `"label"`).
    pub name: String,
    /// Element type.
    pub dtype: DType,
    /// Shape, slowest dimension first.
    pub shape: Vec<u64>,
    /// Raw little-endian element bytes.
    pub payload: Vec<u8>,
}

impl Dataset {
    /// Builds an f32 dataset from values.
    pub fn from_f32(name: &str, shape: &[u64], values: &[f32]) -> Dataset {
        let mut payload = Vec::with_capacity(values.len() * 4);
        for v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        Dataset {
            name: name.to_string(),
            dtype: DType::F32,
            shape: shape.to_vec(),
            payload,
        }
    }

    /// Builds a u16 dataset from values.
    pub fn from_u16(name: &str, shape: &[u64], values: &[u16]) -> Dataset {
        let mut payload = Vec::with_capacity(values.len() * 2);
        for v in values {
            payload.extend_from_slice(&v.to_le_bytes());
        }
        Dataset {
            name: name.to_string(),
            dtype: DType::U16,
            shape: shape.to_vec(),
            payload,
        }
    }

    /// Builds a u8 dataset from values.
    pub fn from_u8(name: &str, shape: &[u64], values: &[u8]) -> Dataset {
        Dataset {
            name: name.to_string(),
            dtype: DType::U8,
            shape: shape.to_vec(),
            payload: values.to_vec(),
        }
    }

    /// Element count implied by the shape.
    pub fn elements(&self) -> u64 {
        self.shape.iter().product()
    }

    /// Decodes the payload as f32 values.
    pub fn as_f32(&self) -> Result<Vec<f32>> {
        if self.dtype != DType::F32 || !self.payload.len().is_multiple_of(4) {
            return Err(DataError::Format("dataset is not f32"));
        }
        Ok(self
            .payload
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Decodes the payload as u16 values.
    pub fn as_u16(&self) -> Result<Vec<u16>> {
        if self.dtype != DType::U16 || !self.payload.len().is_multiple_of(2) {
            return Err(DataError::Format("dataset is not u16"));
        }
        Ok(self
            .payload
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

/// Serializes datasets into an `h5lite` file image.
pub fn write(datasets: &[Dataset]) -> Result<Vec<u8>> {
    let mut header = Vec::new();
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&VERSION.to_le_bytes());
    header.extend_from_slice(&(datasets.len() as u16).to_le_bytes());
    let mut offset = 0u64;
    for d in datasets {
        let expected = d.elements() as usize * d.dtype.size();
        if expected != d.payload.len() {
            return Err(DataError::Format("payload does not match shape"));
        }
        let name = d.name.as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(DataError::Format("dataset name too long"));
        }
        header.extend_from_slice(&(name.len() as u16).to_le_bytes());
        header.extend_from_slice(name);
        header.push(d.dtype.code());
        header.push(d.shape.len() as u8);
        for &s in &d.shape {
            header.extend_from_slice(&s.to_le_bytes());
        }
        header.extend_from_slice(&offset.to_le_bytes());
        header.extend_from_slice(&(d.payload.len() as u64).to_le_bytes());
        offset += d.payload.len() as u64;
    }
    let mut out = header;
    for d in datasets {
        out.extend_from_slice(&d.payload);
    }
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    Ok(out)
}

/// Parses an `h5lite` file image.
pub fn read(data: &[u8]) -> Result<Vec<Dataset>> {
    if data.len() < 12 {
        return Err(DataError::Format("file too short"));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let want = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != want {
        return Err(DataError::Checksum);
    }
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8]> {
        if *pos + n > body.len() {
            return Err(DataError::Format("header overruns file"));
        }
        let s = &body[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(DataError::Format("bad magic"));
    }
    let version = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap());
    if version != VERSION {
        return Err(DataError::Format("unsupported version"));
    }
    let count = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;

    struct Entry {
        name: String,
        dtype: DType,
        shape: Vec<u64>,
        offset: u64,
        len: u64,
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = u16::from_le_bytes(take(&mut pos, 2)?.try_into().unwrap()) as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec())
            .map_err(|_| DataError::Format("dataset name not utf-8"))?;
        let dtype = DType::from_code(take(&mut pos, 1)?[0])?;
        let ndim = take(&mut pos, 1)?[0] as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap()));
        }
        let offset = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        let len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().unwrap());
        entries.push(Entry {
            name,
            dtype,
            shape,
            offset,
            len,
        });
    }
    let payload_region = &body[pos..];
    entries
        .into_iter()
        .map(|e| {
            let start = e.offset as usize;
            let end = start
                .checked_add(e.len as usize)
                .ok_or(DataError::Format("payload range overflow"))?;
            if end > payload_region.len() {
                return Err(DataError::Format("payload out of range"));
            }
            let elems: u64 = e.shape.iter().product();
            if elems as usize * e.dtype.size() != e.len as usize {
                return Err(DataError::Format("payload does not match shape"));
            }
            Ok(Dataset {
                name: e.name,
                dtype: e.dtype,
                shape: e.shape,
                payload: payload_region[start..end].to_vec(),
            })
        })
        .collect()
}

/// Finds a dataset by name.
pub fn find<'a>(datasets: &'a [Dataset], name: &str) -> Result<&'a Dataset> {
    datasets
        .iter()
        .find(|d| d.name == name)
        .ok_or(DataError::Format("dataset not found"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_file() -> Vec<u8> {
        let data = Dataset::from_f32("data", &[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let label = Dataset::from_u8("label", &[6], &[0, 1, 2, 0, 1, 2]);
        write(&[data, label]).unwrap()
    }

    #[test]
    fn roundtrip() {
        let bytes = sample_file();
        let ds = read(&bytes).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(
            find(&ds, "data").unwrap().as_f32().unwrap(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        );
        assert_eq!(find(&ds, "label").unwrap().payload, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn u16_roundtrip() {
        let d = Dataset::from_u16("counts", &[4], &[0, 1, 65535, 42]);
        let ds = read(&write(&[d]).unwrap()).unwrap();
        assert_eq!(ds[0].as_u16().unwrap(), vec![0, 1, 65535, 42]);
    }

    #[test]
    fn shape_payload_mismatch_rejected_on_write() {
        let bad = Dataset {
            name: "x".into(),
            dtype: DType::F32,
            shape: vec![10],
            payload: vec![0; 8],
        };
        assert!(write(&[bad]).is_err());
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample_file();
        bytes[20] ^= 0xAA;
        assert!(matches!(read(&bytes), Err(DataError::Checksum)));
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_file();
        assert!(read(&bytes[..bytes.len() - 9]).is_err());
    }

    #[test]
    fn wrong_dtype_access_fails() {
        let bytes = sample_file();
        let ds = read(&bytes).unwrap();
        assert!(find(&ds, "label").unwrap().as_f32().is_err());
        assert!(find(&ds, "data").unwrap().as_u16().is_err());
    }

    #[test]
    fn missing_dataset() {
        let bytes = sample_file();
        let ds = read(&bytes).unwrap();
        assert!(find(&ds, "nope").is_err());
    }

    #[test]
    fn empty_file_list_roundtrips() {
        let bytes = write(&[]).unwrap();
        assert!(read(&bytes).unwrap().is_empty());
    }
}
