//! Synthetic scientific datasets and storage containers.
//!
//! The paper's encoders exploit statistical structure of two datasets we
//! cannot redistribute: the CAM5 climate snapshots behind **DeepCAM** and
//! the N-body particle histograms behind **CosmoFlow**. This crate builds
//! statistically matched synthetic stand-ins (documented in DESIGN.md §2):
//!
//! * [`cosmoflow`] — procedural "universes": halo placement + kernel
//!   deposit produce 4-redshift voxel count grids with a power-law unique
//!   value histogram and strong cross-redshift coupling (the Fig-5
//!   properties that make the lookup-table codec work);
//! * [`deepcam`] — 16-channel climate-like images that are smooth along
//!   the x (longitude) direction with sparse sharp anomalies (cyclones,
//!   atmospheric rivers) plus sensor noise, and segmentation label masks;
//! * [`tfrecord`] — the TFRecord framing (length + masked CRCs) with an
//!   optional whole-stream gzip variant, mirroring `TFRecordOptions`;
//! * [`h5lite`] — a small self-describing binary container standing in
//!   for the HDF5 files of the original DeepCAM dataset;
//! * [`serialize`] — the raw on-disk layout of both sample types.

pub mod cosmoflow;
pub mod deepcam;
pub mod h5lite;
pub mod serialize;
pub mod tfrecord;

use std::fmt;
use std::io;

/// Errors from container parsing and I/O.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in a container or sample encoding.
    Format(&'static str),
    /// Record or payload checksum failed.
    Checksum,
    /// A gzip-compressed stream failed to decode.
    Compression(sciml_compress::Error),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "io error: {e}"),
            DataError::Format(what) => write!(f, "format error: {what}"),
            DataError::Checksum => write!(f, "checksum mismatch"),
            DataError::Compression(e) => write!(f, "compression error: {e}"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<io::Error> for DataError {
    fn from(e: io::Error) -> Self {
        DataError::Io(e)
    }
}

impl From<sciml_compress::Error> for DataError {
    fn from(e: sciml_compress::Error) -> Self {
        DataError::Compression(e)
    }
}

/// Convenience alias used throughout the data layer.
pub type Result<T> = std::result::Result<T, DataError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        assert!(DataError::Checksum.to_string().contains("checksum"));
        assert!(DataError::Format("bad magic")
            .to_string()
            .contains("bad magic"));
        let io_err: DataError = io::Error::new(io::ErrorKind::NotFound, "nope").into();
        assert!(io_err.to_string().contains("nope"));
    }
}
