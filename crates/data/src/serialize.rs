//! Baseline on-disk layouts for both sample types.
//!
//! These mirror what the real benchmarks read: CosmoFlow samples as
//! TFRecord payloads carrying the voxel histogram widened to f32 (the
//! uncompressed baseline the paper measures against), and DeepCAM samples
//! as HDF5-style files with a `data` f32 dataset and a `label` mask.

use crate::cosmoflow::{CosmoParams, CosmoSample, N_REDSHIFTS};
use crate::deepcam::DeepCamSample;
use crate::h5lite::{self, Dataset};
use crate::{DataError, Result};

const COSMO_MAGIC: &[u8; 4] = b"CFSM";

/// Serializes a CosmoFlow sample to the baseline TFRecord payload:
/// magic, grid size, label, then all counts widened to little-endian f32
/// (channel-major), exactly the tensor the baseline pipeline ships.
pub fn cosmo_to_payload(sample: &CosmoSample) -> Vec<u8> {
    let mut out = Vec::with_capacity(20 + sample.counts.len() * 4);
    out.extend_from_slice(COSMO_MAGIC);
    out.extend_from_slice(&(sample.grid as u32).to_le_bytes());
    for v in sample.label.as_array() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for &c in &sample.counts {
        out.extend_from_slice(&(c as f32).to_le_bytes());
    }
    out
}

/// Parses the baseline CosmoFlow payload back into a sample.
pub fn cosmo_from_payload(data: &[u8]) -> Result<CosmoSample> {
    if data.len() < 24 || &data[0..4] != COSMO_MAGIC {
        return Err(DataError::Format("bad cosmoflow payload header"));
    }
    let grid = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
    let mut label = [0f32; 4];
    for (i, l) in label.iter_mut().enumerate() {
        *l = f32::from_le_bytes(data[8 + 4 * i..12 + 4 * i].try_into().unwrap());
    }
    let expected = grid
        .checked_pow(3)
        .and_then(|v| v.checked_mul(N_REDSHIFTS * 4))
        .ok_or(DataError::Format("grid size overflow"))?;
    let body = &data[24..];
    if body.len() != expected {
        return Err(DataError::Format("cosmoflow payload length mismatch"));
    }
    let counts = body
        .chunks_exact(4)
        .map(|c| {
            let v = f32::from_le_bytes(c.try_into().unwrap());
            if !(0.0..=u16::MAX as f32).contains(&v) || v.fract() != 0.0 {
                return Err(DataError::Format("count not a u16 integer"));
            }
            Ok(v as u16)
        })
        .collect::<Result<Vec<u16>>>()?;
    Ok(CosmoSample {
        grid,
        counts,
        label: CosmoParams {
            omega_m: label[0],
            sigma8: label[1],
            n_s: label[2],
            h: label[3],
        },
    })
}

/// Serializes a DeepCAM sample to an `h5lite` file image with `data`
/// ([C, H, W] f32) and `label` ([H, W] u8) datasets, mirroring the CAM5
/// HDF5 layout.
pub fn deepcam_to_h5(sample: &DeepCamSample) -> Result<Vec<u8>> {
    let data = Dataset::from_f32(
        "data",
        &[
            sample.channels as u64,
            sample.height as u64,
            sample.width as u64,
        ],
        &sample.data,
    );
    let label = Dataset::from_u8(
        "label",
        &[sample.height as u64, sample.width as u64],
        &sample.mask,
    );
    h5lite::write(&[data, label])
}

/// Parses the `h5lite` DeepCAM layout back into a sample.
pub fn deepcam_from_h5(bytes: &[u8]) -> Result<DeepCamSample> {
    let ds = h5lite::read(bytes)?;
    let data = h5lite::find(&ds, "data")?;
    let label = h5lite::find(&ds, "label")?;
    if data.shape.len() != 3 || label.shape.len() != 2 {
        return Err(DataError::Format("unexpected dataset rank"));
    }
    let (c, h, w) = (
        data.shape[0] as usize,
        data.shape[1] as usize,
        data.shape[2] as usize,
    );
    if label.shape[0] as usize != h || label.shape[1] as usize != w {
        return Err(DataError::Format("label shape mismatch"));
    }
    Ok(DeepCamSample {
        width: w,
        height: h,
        channels: c,
        data: data.as_f32()?,
        mask: label.payload.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
    use crate::deepcam::{ClimateGenerator, DeepCamConfig};

    #[test]
    fn cosmo_payload_roundtrip() {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0);
        let payload = cosmo_to_payload(&s);
        assert_eq!(payload.len(), 24 + s.counts.len() * 4);
        let back = cosmo_from_payload(&payload).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn cosmo_payload_rejects_garbage() {
        assert!(cosmo_from_payload(b"nope").is_err());
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(1);
        let mut payload = cosmo_to_payload(&s);
        payload.truncate(payload.len() - 4);
        assert!(cosmo_from_payload(&payload).is_err());
    }

    #[test]
    fn cosmo_payload_rejects_non_integer_counts() {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(2);
        let mut payload = cosmo_to_payload(&s);
        // Overwrite the first count with 0.5.
        payload[24..28].copy_from_slice(&0.5f32.to_le_bytes());
        assert!(cosmo_from_payload(&payload).is_err());
    }

    #[test]
    fn deepcam_h5_roundtrip() {
        let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
        let bytes = deepcam_to_h5(&s).unwrap();
        let back = deepcam_from_h5(&bytes).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn deepcam_h5_detects_corruption() {
        let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
        let mut bytes = deepcam_to_h5(&s).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        assert!(deepcam_from_h5(&bytes).is_err());
    }
}
