//! TFRecord container framing.
//!
//! CosmoFlow ships its decomposed samples as TFRecord files; the framing
//! is `u64 length (LE) | u32 masked-CRC(length) | payload | u32
//! masked-CRC(payload)`. The real format uses CRC-32C; we use CRC-32 with
//! the same masking on both write and read, which preserves every
//! structural behaviour (detection of corruption, framing, streaming).
//!
//! `TFRecordOptions(compression_type="GZIP")` gzips the *whole stream*,
//! not per record — the [`Compression::Gzip`] variant mirrors that, which
//! is why the paper's gzip baseline must decompress on the CPU before any
//! record can be touched.

use crate::{DataError, Result};
use sciml_compress::crc32::masked_crc32;
use sciml_compress::Level;

/// Whole-stream compression mode (mirrors `TFRecordOptions`, which
/// accepts `""`, `"GZIP"`, and `"ZLIB"`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compression {
    /// Plain concatenated records.
    None,
    /// Entire stream gzip-compressed.
    Gzip,
    /// Entire stream zlib-compressed.
    Zlib,
}

/// Serializes records into a TFRecord byte stream.
#[derive(Debug, Default)]
pub struct TfRecordWriter {
    buf: Vec<u8>,
}

impl TfRecordWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one record.
    pub fn write_record(&mut self, payload: &[u8]) {
        let len = payload.len() as u64;
        let len_bytes = len.to_le_bytes();
        self.buf.extend_from_slice(&len_bytes);
        self.buf
            .extend_from_slice(&masked_crc32(&len_bytes).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.buf
            .extend_from_slice(&masked_crc32(payload).to_le_bytes());
    }

    /// Finalizes the stream with the chosen compression.
    pub fn finish(self, compression: Compression) -> Vec<u8> {
        match compression {
            Compression::None => self.buf,
            Compression::Gzip => sciml_compress::gzip_compress(&self.buf, Level::Default),
            Compression::Zlib => sciml_compress::zlib_compress(&self.buf, Level::Default),
        }
    }

    /// Bytes accumulated so far (pre-compression).
    pub fn raw_len(&self) -> usize {
        self.buf.len()
    }
}

/// Parses a TFRecord byte stream.
#[derive(Debug)]
pub struct TfRecordReader {
    data: Vec<u8>,
    pos: usize,
}

impl TfRecordReader {
    /// Opens a stream, decompressing first if `compression` says so.
    pub fn new(data: &[u8], compression: Compression) -> Result<Self> {
        let data = match compression {
            Compression::None => data.to_vec(),
            Compression::Gzip => sciml_compress::gzip_decompress(data)?,
            Compression::Zlib => sciml_compress::zlib_decompress(data)?,
        };
        Ok(Self { data, pos: 0 })
    }

    /// Reads the next record, `Ok(None)` at a clean end of stream.
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>> {
        if self.pos == self.data.len() {
            return Ok(None);
        }
        if self.data.len() - self.pos < 12 {
            return Err(DataError::Format("truncated record header"));
        }
        let len_bytes: [u8; 8] = self.data[self.pos..self.pos + 8].try_into().unwrap();
        let len_crc =
            u32::from_le_bytes(self.data[self.pos + 8..self.pos + 12].try_into().unwrap());
        if masked_crc32(&len_bytes) != len_crc {
            return Err(DataError::Checksum);
        }
        let len = u64::from_le_bytes(len_bytes) as usize;
        let body_start = self.pos + 12;
        if self.data.len() - body_start < len + 4 {
            return Err(DataError::Format("truncated record body"));
        }
        let payload = self.data[body_start..body_start + len].to_vec();
        let data_crc = u32::from_le_bytes(
            self.data[body_start + len..body_start + len + 4]
                .try_into()
                .unwrap(),
        );
        if masked_crc32(&payload) != data_crc {
            return Err(DataError::Checksum);
        }
        self.pos = body_start + len + 4;
        Ok(Some(payload))
    }

    /// Collects every remaining record.
    pub fn read_all(&mut self) -> Result<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records() -> Vec<Vec<u8>> {
        vec![b"first".to_vec(), vec![], vec![7u8; 1000], b"last".to_vec()]
    }

    fn build(compression: Compression) -> Vec<u8> {
        let mut w = TfRecordWriter::new();
        for r in records() {
            w.write_record(&r);
        }
        w.finish(compression)
    }

    #[test]
    fn roundtrip_uncompressed() {
        let bytes = build(Compression::None);
        let mut r = TfRecordReader::new(&bytes, Compression::None).unwrap();
        assert_eq!(r.read_all().unwrap(), records());
    }

    #[test]
    fn roundtrip_gzip() {
        let bytes = build(Compression::Gzip);
        let mut r = TfRecordReader::new(&bytes, Compression::Gzip).unwrap();
        assert_eq!(r.read_all().unwrap(), records());
    }

    #[test]
    fn roundtrip_zlib() {
        let bytes = build(Compression::Zlib);
        let mut r = TfRecordReader::new(&bytes, Compression::Zlib).unwrap();
        assert_eq!(r.read_all().unwrap(), records());
        // Wrong codec must be rejected.
        assert!(TfRecordReader::new(&bytes, Compression::Gzip).is_err());
    }

    #[test]
    fn gzip_shrinks_repetitive_records() {
        let plain = build(Compression::None);
        let gz = build(Compression::Gzip);
        assert!(gz.len() < plain.len());
    }

    #[test]
    fn detects_payload_corruption() {
        let mut bytes = build(Compression::None);
        // Corrupt inside the third record's payload (repeated 7s).
        let pos = bytes.iter().position(|&b| b == 7).unwrap() + 100;
        bytes[pos] ^= 0xFF;
        let mut r = TfRecordReader::new(&bytes, Compression::None).unwrap();
        r.next_record().unwrap();
        r.next_record().unwrap();
        assert!(matches!(r.next_record(), Err(DataError::Checksum)));
    }

    #[test]
    fn detects_length_corruption() {
        let mut bytes = build(Compression::None);
        bytes[0] ^= 1;
        let mut r = TfRecordReader::new(&bytes, Compression::None).unwrap();
        assert!(matches!(r.next_record(), Err(DataError::Checksum)));
    }

    #[test]
    fn detects_truncation() {
        let bytes = build(Compression::None);
        let mut r = TfRecordReader::new(&bytes[..bytes.len() - 2], Compression::None).unwrap();
        let res: Result<Vec<_>> = r.read_all();
        assert!(res.is_err());
    }

    #[test]
    fn empty_stream_yields_no_records() {
        let mut r = TfRecordReader::new(&[], Compression::None).unwrap();
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn bad_gzip_stream_is_a_compression_error() {
        let r = TfRecordReader::new(b"not gzip at all", Compression::Gzip);
        assert!(matches!(r, Err(DataError::Compression(_))));
    }
}
