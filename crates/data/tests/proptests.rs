//! Property tests for the data layer: generator invariants over random
//! configurations, and container robustness.

use proptest::prelude::*;
use sciml_data::cosmoflow::{sample_stats, CosmoFlowConfig, CosmoParams, UniverseGenerator};
use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};
use sciml_data::h5lite::{self, Dataset};
use sciml_data::serialize;
use sciml_data::tfrecord::{Compression, TfRecordReader, TfRecordWriter};

fn cosmo_cfgs() -> impl Strategy<Value = CosmoFlowConfig> {
    (8usize..20, 2usize..20, 20f32..100.0, 0u16..3, any::<u64>()).prop_map(
        |(grid, halos, mass_scale, background, seed)| CosmoFlowConfig {
            grid,
            halos,
            mass_scale,
            background,
            seed,
        },
    )
}

fn cam_cfgs() -> impl Strategy<Value = DeepCamConfig> {
    (
        16usize..64,
        8usize..32,
        1usize..4,
        0usize..3,
        0usize..2,
        any::<u64>(),
    )
        .prop_map(
            |(width, height, channels, cyclones, rivers, seed)| DeepCamConfig {
                width,
                height,
                channels,
                cyclones,
                rivers,
                noise: 2.5e-3,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generation is deterministic and shape-correct for any config.
    #[test]
    fn cosmo_generator_invariants(cfg in cosmo_cfgs(), idx in 0u64..50) {
        let g = UniverseGenerator::new(cfg.clone());
        let s = g.generate(idx);
        prop_assert_eq!(s.counts.len(), cfg.voxels() * 4);
        prop_assert_eq!(g.generate(idx), s.clone());
        // Labels stay inside the ±30 % band.
        for (v, m) in s.label.as_array().iter().zip(CosmoParams::MEANS.as_array()) {
            prop_assert!(*v >= m * 0.699 && *v <= m * 1.301);
        }
        // Unique values are always a tiny fraction of the data.
        let stats = sample_stats(&s);
        prop_assert!(stats.unique_values * 10 < s.counts.len().max(100));
        prop_assert!(stats.unique_groups <= s.voxels());
    }

    /// Serialization round-trips any generated universe.
    #[test]
    fn cosmo_payload_roundtrip(cfg in cosmo_cfgs(), idx in 0u64..10) {
        let s = UniverseGenerator::new(cfg).generate(idx);
        let p = serialize::cosmo_to_payload(&s);
        prop_assert_eq!(serialize::cosmo_from_payload(&p).unwrap(), s);
    }

    /// Climate generator: deterministic, shape-correct, x smoother than y
    /// for every channel of every config.
    #[test]
    fn deepcam_generator_invariants(cfg in cam_cfgs(), idx in 0u64..20) {
        let g = ClimateGenerator::new(cfg.clone());
        let s = g.generate(idx);
        prop_assert_eq!(s.data.len(), cfg.values());
        prop_assert_eq!(s.mask.len(), cfg.pixels());
        prop_assert_eq!(g.generate(idx), s.clone());
        prop_assert!(s.data.iter().all(|v| v.is_finite()));
        prop_assert!(s.mask.iter().all(|&m| m <= 2));
    }

    /// DeepCAM h5lite round-trips any generated sample.
    #[test]
    fn deepcam_h5_roundtrip(cfg in cam_cfgs(), idx in 0u64..5) {
        let s = ClimateGenerator::new(cfg).generate(idx);
        let bytes = serialize::deepcam_to_h5(&s).unwrap();
        prop_assert_eq!(serialize::deepcam_from_h5(&bytes).unwrap(), s);
    }

    /// TFRecord streams round-trip arbitrary record sets under every
    /// compression mode.
    #[test]
    fn tfrecord_roundtrip_any_records(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 0..12),
    ) {
        for compression in [Compression::None, Compression::Gzip, Compression::Zlib] {
            let mut w = TfRecordWriter::new();
            for r in &records {
                w.write_record(r);
            }
            let stream = w.finish(compression);
            let mut reader = TfRecordReader::new(&stream, compression).unwrap();
            prop_assert_eq!(reader.read_all().unwrap(), records.clone());
        }
    }

    /// h5lite never panics on arbitrary bytes.
    #[test]
    fn h5lite_read_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        let _ = h5lite::read(&bytes);
    }

    /// h5lite round-trips arbitrary dataset collections.
    #[test]
    fn h5lite_roundtrip(
        floats in prop::collection::vec(-1e6f32..1e6, 1..64),
        words in prop::collection::vec(any::<u16>(), 1..64),
    ) {
        let ds = vec![
            Dataset::from_f32("f", &[floats.len() as u64], &floats),
            Dataset::from_u16("u", &[words.len() as u64], &words),
        ];
        let bytes = h5lite::write(&ds).unwrap();
        let back = h5lite::read(&bytes).unwrap();
        prop_assert_eq!(back, ds);
    }
}
