//! The GPU decode kernels, run functionally on the warp simulator.

use crate::warp::{KernelStats, MemSpace, WarpCtx, WARP_SIZE};
use crate::Gpu;
use sciml_codec::cosmoflow::EncodedCosmo;
use sciml_codec::deepcam::{decode_line_into, EncodedDeepCam, LineMode};
use sciml_codec::{CodecError, Op};
use sciml_data::cosmoflow::N_REDSHIFTS;
use sciml_half::F16;

/// CosmoFlow LUT-gather kernel.
///
/// Grid: one warp task per 32 voxels of each chunk. Per task:
/// 1. coalesced load of 32 keys;
/// 2. table gather — from shared memory if the chunk's table fits the
///    SM's shared capacity (the common case the encoder aims for), else
///    L2 if it fits there, else DRAM;
/// 3. one coalesced store per channel (4 stores) into the channel-major
///    output — the fused transpose.
///
/// The per-table `log1p` precomputation runs as its own warp tasks
/// (table_len/32 of them), which is where the "apply the operator to
/// unique values only" saving shows up in cycle counts.
pub fn decode_cosmo(
    gpu: &Gpu,
    enc: &EncodedCosmo,
    op: Op,
) -> Result<(Vec<F16>, KernelStats, f64), CodecError> {
    let mut out = vec![F16::ZERO; enc.voxels() * N_REDSHIFTS];
    let (stats, time) = decode_cosmo_into(gpu, enc, op, &mut out)?;
    Ok((out, stats, time))
}

/// [`decode_cosmo`] writing into a caller-provided slice, which must be
/// exactly `voxels × N_REDSHIFTS` long (a typed error otherwise, never a
/// panic). Every slot is written; callers may pass recycled buffers.
pub fn decode_cosmo_into(
    gpu: &Gpu,
    enc: &EncodedCosmo,
    op: Op,
    out: &mut [F16],
) -> Result<(KernelStats, f64), CodecError> {
    let voxels = enc.voxels();
    let covered: u64 = enc.chunks.iter().map(|c| c.n_voxels as u64).sum();
    if covered != voxels as u64 {
        return Err(CodecError::Inconsistent("chunks do not cover grid"));
    }
    if out.len() != voxels * N_REDSHIFTS {
        return Err(CodecError::Inconsistent("output slice length mismatch"));
    }
    let mut stats = KernelStats::default();

    let mut start = 0usize;
    for chunk in &enc.chunks {
        let table_bytes = (chunk.table.len() * 2 * N_REDSHIFTS) as u64;
        let table_space = if table_bytes <= gpu.spec.shared_bytes {
            MemSpace::Shared
        } else if table_bytes <= gpu.spec.l2_bytes {
            MemSpace::L2
        } else {
            MemSpace::Dram
        };

        // Phase 1: fused operator on unique table entries.
        let mut lut: Vec<[F16; N_REDSHIFTS]> = Vec::with_capacity(chunk.table.len());
        for rows in chunk.table.chunks(WARP_SIZE) {
            let mut ctx = WarpCtx::new();
            // Load 8B rows (coalesced: consecutive), apply op (a few ALU
            // ops per channel incl. the transcendental), store back.
            let base = 0x1000_0000u64;
            let addrs: Vec<u64> = (0..rows.len() as u64).map(|i| base + i * 8).collect();
            ctx.access(&addrs, MemSpace::Dram); // first touch streams from DRAM
            ctx.alu(4 * op_cost(op)); // 4 channels
            ctx.access(&addrs, table_space); // write decoded rows
            for g in rows {
                let mut row = [F16::ZERO; N_REDSHIFTS];
                for (z, &c) in g.iter().enumerate() {
                    row[z] = F16::from_f32(op.apply(c as f32));
                }
                lut.push(row);
            }
            stats.absorb(ctx.finish());
        }

        // Phase 2: key gather + channel-major stores.
        let n = chunk.n_voxels as usize;
        if chunk.keys.len() != n * chunk.key_width.bytes() {
            return Err(CodecError::Corrupt("key payload size"));
        }
        let kw = chunk.key_width.bytes() as u64;
        for w0 in (0..n).step_by(WARP_SIZE) {
            let lanes = (n - w0).min(WARP_SIZE);
            let mut ctx = WarpCtx::new();
            // Coalesced key load.
            let key_base = 0x2000_0000u64;
            let key_addrs: Vec<u64> = (0..lanes as u64)
                .map(|i| key_base + (w0 as u64 + i) * kw)
                .collect();
            ctx.access(&key_addrs, MemSpace::Dram);
            // Gather decoded rows: scattered by key value.
            let lut_base = 0x3000_0000u64;
            let mut row_addrs = Vec::with_capacity(lanes);
            for v in 0..lanes {
                let k = chunk.key(w0 + v);
                if k >= lut.len() {
                    return Err(CodecError::Corrupt("key out of table range"));
                }
                row_addrs.push(lut_base + (k as u64) * 8);
            }
            ctx.access(&row_addrs, table_space);
            ctx.alu(1); // unpack/select
                        // Four coalesced channel stores + the functional writes.
            let out_base = 0x4000_0000u64;
            for z in 0..N_REDSHIFTS {
                let store_addrs: Vec<u64> = (0..lanes as u64)
                    .map(|i| out_base + ((z * voxels + start + w0) as u64 + i) * 2)
                    .collect();
                ctx.access(&store_addrs, MemSpace::Dram);
                for v in 0..lanes {
                    let k = chunk.key(w0 + v);
                    out[z * voxels + start + w0 + v] = lut[k][z];
                }
            }
            stats.absorb(ctx.finish());
        }
        start += n;
    }

    let time = gpu.kernel_time(&stats);
    Ok((stats, time))
}

/// DeepCAM hierarchical decode kernel.
///
/// Grid: one warp task per line (the per-line directory makes lines
/// independent). Constant and raw lines are warp-wide copy/broadcast
/// tasks; delta lines serialize the segment walk inside their warp
/// (the loop-carried dependency), while lanes cooperate on unpacking
/// and the f16 stores — the paper's hierarchical assignment.
pub fn decode_deepcam(
    gpu: &Gpu,
    enc: &EncodedDeepCam,
    op: Op,
) -> Result<(Vec<F16>, KernelStats, f64), CodecError> {
    let mut out = vec![F16::ZERO; enc.n_values()];
    let (stats, time) = decode_deepcam_into(gpu, enc, op, &mut out)?;
    Ok((out, stats, time))
}

/// [`decode_deepcam`] writing into a caller-provided slice, which must
/// be exactly [`EncodedDeepCam::n_values`] long (same contract as
/// [`decode_cosmo_into`]).
pub fn decode_deepcam_into(
    gpu: &Gpu,
    enc: &EncodedDeepCam,
    op: Op,
    out: &mut [F16],
) -> Result<(KernelStats, f64), CodecError> {
    let width = enc.width as usize;
    if out.len() != enc.n_values() {
        return Err(CodecError::Inconsistent("output slice length mismatch"));
    }
    let mut stats = KernelStats::default();

    for (idx, dst) in out.chunks_mut(width).enumerate() {
        // Functional part: identical to the CPU decoder by construction.
        decode_line_into(enc, idx, op, dst)?;

        // Timing part: account the SIMT cost of this line's task.
        let mut ctx = WarpCtx::new();
        let payload = line_payload(enc, idx);
        let warp_chunks = width.div_ceil(WARP_SIZE) as u64;
        match enc.lines[idx].mode {
            LineMode::Constant => {
                // One broadcast + coalesced stores.
                ctx.alu(1 + op_cost(op));
                for w in 0..warp_chunks {
                    let addrs: Vec<u64> = (0..WARP_SIZE as u64)
                        .map(|i| 0x5000_0000 + (idx as u64 * width as u64 + w * 32 + i) * 2)
                        .collect();
                    ctx.access(&addrs, MemSpace::Dram);
                }
            }
            LineMode::RawF32 => {
                // Stream loads, convert, stores.
                for w in 0..warp_chunks {
                    let loads: Vec<u64> = (0..WARP_SIZE as u64)
                        .map(|i| 0x6000_0000 + (w * 32 + i) * 4)
                        .collect();
                    ctx.access(&loads, MemSpace::Dram);
                    ctx.alu(1 + op_cost(op)); // convert + op
                    let stores: Vec<u64> = (0..WARP_SIZE as u64)
                        .map(|i| 0x7000_0000 + (idx as u64 * width as u64 + w * 32 + i) * 2)
                        .collect();
                    ctx.access(&stores, MemSpace::Dram);
                }
            }
            LineMode::Delta => {
                let (n_segments, n_literals) = delta_header(payload);
                // Payload streaming: headers + codes, coalesced.
                let payload_sectors = (payload.len() as u64).div_ceil(32).max(1);
                for _ in 0..payload_sectors {
                    let addrs: Vec<u64> = (0..WARP_SIZE as u64).map(|i| 0x8000_0000 + i).collect();
                    ctx.access(&addrs, MemSpace::Dram);
                }
                // The segment walks are loop-carried: each non-head value
                // costs a serialized unpack+add (≈3 instructions). The
                // warp's lanes cooperatively handle unpack/store, but the
                // dependency chain dominates: model as divergent paths,
                // one per segment (segments of one line run back to back
                // in its warp; other lines proceed on other warps).
                let per_value = 3u64;
                let chain = (width as u64 - n_segments) * per_value;
                ctx.diverge(&[chain]);
                // Literal fetches are scattered.
                if n_literals > 0 {
                    let addrs: Vec<u64> = (0..n_literals.min(WARP_SIZE as u64))
                        .map(|i| 0x9000_0000 + i * 128)
                        .collect();
                    ctx.access(&addrs, MemSpace::Dram);
                }
                ctx.alu(op_cost(op) * warp_chunks);
                // Coalesced f16 stores.
                for w in 0..warp_chunks {
                    let stores: Vec<u64> = (0..WARP_SIZE as u64)
                        .map(|i| 0xA000_0000 + (idx as u64 * width as u64 + w * 32 + i) * 2)
                        .collect();
                    ctx.access(&stores, MemSpace::Dram);
                }
            }
        }
        stats.absorb(ctx.finish());
    }

    let time = gpu.kernel_time(&stats);
    Ok((stats, time))
}

/// Ablation kernel: decode **without** table fusion, then run a second
/// per-voxel operator kernel over the expanded tensor — the work order
/// the paper's reordering optimization eliminates. Costs a full extra
/// pass of loads, op ALU per voxel, and stores; the output also differs
/// slightly from the fused path (the op sees FP16-rounded inputs).
pub fn decode_cosmo_unfused(
    gpu: &Gpu,
    enc: &EncodedCosmo,
    op: Op,
) -> Result<(Vec<F16>, KernelStats, f64), CodecError> {
    let (mut out, mut stats, _) = decode_cosmo(gpu, enc, Op::Identity)?;
    let n = out.len();
    for w0 in (0..n).step_by(WARP_SIZE) {
        let lanes = (n - w0).min(WARP_SIZE);
        let mut ctx = WarpCtx::new();
        let loads: Vec<u64> = (0..lanes as u64)
            .map(|i| 0xB000_0000 + (w0 as u64 + i) * 2)
            .collect();
        ctx.access(&loads, MemSpace::Dram);
        ctx.alu(op_cost(op).max(1));
        ctx.access(&loads, MemSpace::Dram); // write back in place
        for v in &mut out[w0..w0 + lanes] {
            *v = F16::from_f32(op.apply(v.to_f32()));
        }
        stats.absorb(ctx.finish());
    }
    let time = gpu.kernel_time(&stats);
    Ok((out, stats, time))
}

/// ALU instructions per operator application.
fn op_cost(op: Op) -> u64 {
    match op {
        Op::Identity => 0,
        Op::Normalize { .. } => 2,
        Op::Log1p => 8,
        Op::Log1pNormalize { .. } => 10,
    }
}

fn line_payload(enc: &EncodedDeepCam, idx: usize) -> &[u8] {
    let l = &enc.lines[idx];
    &enc.payload[l.offset as usize..(l.offset + l.len) as usize]
}

fn delta_header(payload: &[u8]) -> (u64, u64) {
    if payload.len() < 4 {
        return (0, 0);
    }
    (
        u16::from_le_bytes([payload[0], payload[1]]) as u64,
        u16::from_le_bytes([payload[2], payload[3]]) as u64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuSpec;
    use sciml_codec::cosmoflow as cf;
    use sciml_codec::deepcam as dc;
    use sciml_data::cosmoflow::{CosmoFlowConfig, UniverseGenerator};
    use sciml_data::deepcam::{ClimateGenerator, DeepCamConfig};

    #[test]
    fn cosmo_gpu_output_matches_cpu_decoder_exactly() {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0);
        let enc = cf::encode(&s);
        let gpu = Gpu::new(GpuSpec::V100);
        let (out, stats, time) = decode_cosmo(&gpu, &enc, Op::Log1p).unwrap();
        assert_eq!(out, cf::decode(&enc, Op::Log1p).unwrap());
        assert!(stats.cycles > 0 && stats.tasks > 0);
        assert!(time > 0.0 && time < 1.0, "{time}");
    }

    #[test]
    fn deepcam_gpu_output_matches_cpu_decoder_exactly() {
        let s = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
        let (enc, _) = dc::encode(&s, &dc::EncoderConfig::default());
        let gpu = Gpu::new(GpuSpec::V100);
        let (out, stats, time) = decode_deepcam(&gpu, &enc, Op::Identity).unwrap();
        assert_eq!(out, dc::decode(&enc, Op::Identity).unwrap());
        assert!(stats.divergent_steps == 0); // single-chain diverge has no extra
        assert!(stats.longest_task_cycles > 0);
        assert!(time > 0.0 && time < 1.0, "{time}");
    }

    #[test]
    fn into_variants_match_and_check_length() {
        let gpu = Gpu::new(GpuSpec::V100);
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(0);
        let enc = cf::encode(&s);
        let (want, _, _) = decode_cosmo(&gpu, &enc, Op::Log1p).unwrap();
        let mut out = vec![F16::ONE; want.len()];
        decode_cosmo_into(&gpu, &enc, Op::Log1p, &mut out).unwrap();
        assert_eq!(out, want);
        let mut wrong = vec![F16::ZERO; want.len() - 1];
        assert!(decode_cosmo_into(&gpu, &enc, Op::Log1p, &mut wrong).is_err());

        let d = ClimateGenerator::new(DeepCamConfig::test_small()).generate(0);
        let (denc, _) = dc::encode(&d, &dc::EncoderConfig::default());
        let (want, _, _) = decode_deepcam(&gpu, &denc, Op::Identity).unwrap();
        let mut out = vec![F16::ONE; want.len()];
        decode_deepcam_into(&gpu, &denc, Op::Identity, &mut out).unwrap();
        assert_eq!(out, want);
        let mut wrong = vec![F16::ZERO; want.len() + 1];
        assert!(decode_deepcam_into(&gpu, &denc, Op::Identity, &mut wrong).is_err());
    }

    #[test]
    fn a100_decodes_faster_than_v100() {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(1);
        let enc = cf::encode(&s);
        let (_, _, tv) = decode_cosmo(&Gpu::new(GpuSpec::V100), &enc, Op::Log1p).unwrap();
        let (_, _, ta) = decode_cosmo(&Gpu::new(GpuSpec::A100), &enc, Op::Log1p).unwrap();
        assert!(ta <= tv, "A100 {ta} vs V100 {tv}");
    }

    #[test]
    fn gpu_decode_cost_is_small_share_of_reasonable_budget() {
        // §IX-B: "The decode operation overhead is negligible, taking
        // less than 1% of the total processing time of a sample." A
        // CosmoFlow training step is ~10ms at batch 1 on V100; decode
        // should be far below 1ms on the small grid.
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(2);
        let enc = cf::encode(&s);
        let (_, _, t) = decode_cosmo(&Gpu::new(GpuSpec::V100), &enc, Op::Log1p).unwrap();
        assert!(t < 1e-3, "decode took {t}s");
    }

    #[test]
    fn delta_lines_pay_serialization_raw_lines_do_not() {
        // Compare longest-task cycles of an all-delta sample vs an
        // all-constant sample of the same shape.
        let width = 512;
        let smooth: Vec<f32> = (0..width).map(|i| (i as f32 * 0.01).sin() + 10.0).collect();
        let constant = vec![5.0f32; width];
        let mk = |data: Vec<f32>| sciml_data::deepcam::DeepCamSample {
            width,
            height: 1,
            channels: 1,
            data,
            mask: vec![0; width],
        };
        let gpu = Gpu::new(GpuSpec::V100);
        let (e1, st1) = dc::encode(&mk(smooth), &dc::EncoderConfig::default());
        assert_eq!(st1.delta_lines, 1);
        let (e2, st2) = dc::encode(&mk(constant), &dc::EncoderConfig::default());
        assert_eq!(st2.constant_lines, 1);
        let (_, s1, _) = decode_deepcam(&gpu, &e1, Op::Identity).unwrap();
        let (_, s2, _) = decode_deepcam(&gpu, &e2, Op::Identity).unwrap();
        assert!(
            s1.longest_task_cycles > 4 * s2.longest_task_cycles,
            "delta {} vs constant {}",
            s1.longest_task_cycles,
            s2.longest_task_cycles
        );
    }

    #[test]
    fn unfused_device_path_costs_more_and_is_less_accurate() {
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(4);
        let enc = cf::encode(&s);
        let gpu = Gpu::new(GpuSpec::V100);
        let (fused, fused_stats, fused_t) = decode_cosmo(&gpu, &enc, Op::Log1p).unwrap();
        let (unfused, unfused_stats, unfused_t) =
            decode_cosmo_unfused(&gpu, &enc, Op::Log1p).unwrap();
        // Cost: the extra per-voxel pass dominates.
        assert!(unfused_stats.cycles > fused_stats.cycles);
        assert!(unfused_stats.dram_bytes > fused_stats.dram_bytes);
        assert!(unfused_t > fused_t);
        // Accuracy: outputs close, but the fused path tracks the exact
        // f32 op better (unfused applies log1p to FP16-rounded counts).
        let mut fused_err = 0f64;
        let mut unfused_err = 0f64;
        for (v, (f, u)) in s.counts.iter().zip(fused.iter().zip(&unfused)) {
            let exact = (*v as f32).ln_1p();
            fused_err += (f.to_f32() - exact).abs() as f64;
            unfused_err += (u.to_f32() - exact).abs() as f64;
        }
        assert!(fused_err <= unfused_err, "{fused_err} vs {unfused_err}");
    }

    #[test]
    fn table_fusion_saves_cycles_vs_per_voxel_op() {
        // Decode with Log1p vs Identity: the op cost difference must be
        // proportional to the table size, not the voxel count.
        let s = UniverseGenerator::new(CosmoFlowConfig::test_small()).generate(3);
        let enc = cf::encode(&s);
        let gpu = Gpu::new(GpuSpec::V100);
        let (_, st_id, _) = decode_cosmo(&gpu, &enc, Op::Identity).unwrap();
        let (_, st_log, _) = decode_cosmo(&gpu, &enc, Op::Log1p).unwrap();
        let extra = st_log.cycles - st_id.cycles;
        let table_tasks = enc
            .chunks
            .iter()
            .map(|c| c.table.len().div_ceil(WARP_SIZE) as u64)
            .sum::<u64>();
        // 8 ALU per op × 4 channels per table task.
        assert_eq!(extra, table_tasks * 4 * 8);
        // Far less than per-voxel application would cost.
        let per_voxel_cost = (enc.voxels() as u64 / WARP_SIZE as u64) * 4 * 8;
        assert!(extra * 5 < per_voxel_cost, "{extra} vs {per_voxel_cost}");
    }
}
