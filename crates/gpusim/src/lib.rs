//! SIMT warp-level execution simulator and the GPU decode kernels.
//!
//! The paper offloads sample decoding to V100/A100 GPUs via DALI plugins
//! (§VI). We have no GPU, so this crate provides the closest synthetic
//! equivalent that exercises the same code paths: a **functional + timing
//! simulator** of the SIMT execution model, on which the three decode
//! kernels actually run and produce bit-exact outputs:
//!
//! * **LUT gather** (CosmoFlow): coalesced key reads, table gathers that
//!   hit shared memory or L2 depending on table size, coalesced stores
//!   into the channel-major tensor;
//! * **broadcast** (constant lines / repeated values): "we efficiently
//!   parallelize the broadcasting of constants";
//! * **differential decode** (DeepCAM): "loop carried dependencies
//!   complicate the GPU implementation. Our GPU version uses hierarchical
//!   parallelism, where we assign a warp of threads a copy or broadcast
//!   task and assign tasks that create control divergence to different
//!   warps" — delta segments serialize inside their warp while other
//!   warps stay busy on other lines.
//!
//! The timing model is an occupancy model, not a cycle-accurate core
//! model: each warp task accumulates warp-instruction cycles (with
//! divergence serialization) and memory transactions (with coalescing
//! analysis); kernel time is the max of compute throughput, DRAM
//! bandwidth, and the critical path. Machine parameters come from
//! Table I of the paper.

pub mod kernels;
pub mod warp;

pub use kernels::{
    decode_cosmo, decode_cosmo_into, decode_cosmo_unfused, decode_deepcam, decode_deepcam_into,
};
pub use warp::{KernelStats, TaskCounters, WarpCtx, WARP_SIZE};

/// GPU hardware parameters (Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. "V100".
    pub name: &'static str,
    /// Streaming multiprocessors.
    pub sm_count: u32,
    /// Core clock in GHz (sustained boost).
    pub clock_ghz: f64,
    /// HBM bandwidth in bytes/second.
    pub mem_bw: f64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// Shared-memory capacity per SM in bytes.
    pub shared_bytes: u64,
    /// Device memory capacity in bytes.
    pub mem_capacity: u64,
    /// Peak FP32 throughput in FLOP/s (Table I, used by the platform
    /// model for the training-step anchor).
    pub fp32_tflops: f64,
    /// Peak tensor-core throughput in FLOP/s.
    pub tensor_tflops: f64,
}

impl GpuSpec {
    /// NVIDIA V100 (Summit / Cori-V100 nodes).
    pub const V100: GpuSpec = GpuSpec {
        name: "V100",
        sm_count: 80,
        clock_ghz: 1.38,
        mem_bw: 0.9e12,
        l2_bytes: 6 * 1024 * 1024,
        shared_bytes: 96 * 1024,
        mem_capacity: 16 * 1024 * 1024 * 1024,
        fp32_tflops: 15.7e12,
        tensor_tflops: 120.0e12,
    };

    /// NVIDIA A100 (Cori-A100 nodes).
    pub const A100: GpuSpec = GpuSpec {
        name: "A100",
        sm_count: 104,
        clock_ghz: 1.41,
        mem_bw: 1.6e12,
        l2_bytes: 40 * 1024 * 1024,
        shared_bytes: 164 * 1024,
        mem_capacity: 40 * 1024 * 1024 * 1024,
        fp32_tflops: 19.5e12,
        tensor_tflops: 312.0e12,
    };

    /// Aggregate warp-instruction throughput in instructions/second
    /// (one warp instruction per SM per cycle under full occupancy).
    pub fn warp_issue_rate(&self) -> f64 {
        self.sm_count as f64 * self.clock_ghz * 1e9
    }
}

/// A simulated GPU: executes kernels functionally and reports timing.
#[derive(Debug, Clone, Copy)]
pub struct Gpu {
    /// Hardware parameters.
    pub spec: GpuSpec,
}

impl Gpu {
    /// Creates a simulated GPU from a spec.
    pub fn new(spec: GpuSpec) -> Self {
        Self { spec }
    }

    /// Converts accumulated kernel statistics into wall time.
    ///
    /// `time = max(compute, dram, critical path)`:
    /// * compute: total warp-instruction cycles spread across SMs;
    /// * dram: transaction bytes over HBM bandwidth;
    /// * critical path: the longest single task is not divisible.
    pub fn kernel_time(&self, stats: &KernelStats) -> f64 {
        let compute = stats.cycles as f64 / self.warp_issue_rate_with_floor();
        let dram = stats.dram_bytes as f64 / self.spec.mem_bw;
        let critical = stats.longest_task_cycles as f64 / (self.spec.clock_ghz * 1e9);
        compute.max(dram).max(critical)
    }

    fn warp_issue_rate_with_floor(&self) -> f64 {
        self.spec.warp_issue_rate().max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_match_table_one() {
        assert_eq!(GpuSpec::V100.sm_count, 80);
        assert_eq!(GpuSpec::A100.sm_count, 104);
        assert_eq!(GpuSpec::V100.l2_bytes, 6 * 1024 * 1024);
        assert_eq!(GpuSpec::A100.l2_bytes, 40 * 1024 * 1024);
        assert!((GpuSpec::V100.mem_bw - 0.9e12).abs() < 1e9);
        assert!((GpuSpec::A100.mem_bw - 1.6e12).abs() < 1e9);
        assert!((GpuSpec::A100.tensor_tflops / GpuSpec::V100.tensor_tflops - 2.6).abs() < 0.01);
    }

    #[test]
    fn kernel_time_takes_binding_constraint() {
        let gpu = Gpu::new(GpuSpec::V100);
        // Compute-bound.
        let s1 = KernelStats {
            cycles: 1_000_000_000,
            dram_bytes: 0,
            transactions: 0,
            divergent_steps: 0,
            longest_task_cycles: 10,
            tasks: 100,
        };
        let t1 = gpu.kernel_time(&s1);
        assert!((t1 - 1e9 / GpuSpec::V100.warp_issue_rate()).abs() / t1 < 1e-9);
        // Memory-bound.
        let s2 = KernelStats {
            cycles: 1,
            dram_bytes: 9_000_000_000,
            transactions: 0,
            divergent_steps: 0,
            longest_task_cycles: 1,
            tasks: 1,
        };
        assert!((gpu.kernel_time(&s2) - 0.01).abs() < 1e-6);
        // Critical-path-bound.
        let s3 = KernelStats {
            cycles: 100,
            dram_bytes: 0,
            transactions: 0,
            divergent_steps: 0,
            longest_task_cycles: 1_000_000,
            tasks: 1,
        };
        let expect = 1e6 / (GpuSpec::V100.clock_ghz * 1e9);
        assert!((gpu.kernel_time(&s3) - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn a100_is_faster_than_v100_on_equal_work() {
        let s = KernelStats {
            cycles: 1_000_000,
            dram_bytes: 1_000_000_000,
            transactions: 0,
            divergent_steps: 0,
            longest_task_cycles: 100,
            tasks: 10,
        };
        assert!(Gpu::new(GpuSpec::A100).kernel_time(&s) < Gpu::new(GpuSpec::V100).kernel_time(&s));
    }
}
