//! Warp-level cost accounting: coalescing, divergence, task scheduling.

/// Lanes per warp (NVIDIA SIMT width).
pub const WARP_SIZE: usize = 32;

/// Bytes per memory transaction (L2 sector).
pub const TRANSACTION_BYTES: u64 = 32;

/// Cost counters of one warp task.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskCounters {
    /// Warp-instruction cycles issued.
    pub cycles: u64,
    /// Memory transactions that missed on-chip storage (reach DRAM).
    pub dram_transactions: u64,
    /// All memory transactions (including on-chip hits).
    pub transactions: u64,
    /// Extra cycles spent on serialized divergent paths.
    pub divergent_steps: u64,
}

/// Where a memory access is served from; decides whether it costs DRAM
/// bandwidth or only issue cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemSpace {
    /// Off-chip HBM.
    Dram,
    /// On-chip L2 (hit).
    L2,
    /// Per-SM shared memory.
    Shared,
}

/// The accounting context a kernel task runs against.
///
/// Kernels perform their real (functional) work in ordinary Rust and call
/// these methods to account the SIMT cost of each step, mirroring how the
/// hand-written CUDA kernels in the paper behave.
#[derive(Debug, Default)]
pub struct WarpCtx {
    counters: TaskCounters,
}

impl WarpCtx {
    /// Fresh context for one task.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues `n` warp-wide ALU instructions.
    #[inline]
    pub fn alu(&mut self, n: u64) {
        self.counters.cycles += n;
    }

    /// A warp-wide memory access to the given per-lane byte addresses.
    /// Consecutive addresses coalesce into few transactions; scattered
    /// addresses fan out to one transaction per 32-byte sector touched.
    pub fn access(&mut self, addrs: &[u64], space: MemSpace) {
        debug_assert!(addrs.len() <= WARP_SIZE);
        self.counters.cycles += 1; // issue cycle
        if addrs.is_empty() {
            return;
        }
        match space {
            MemSpace::Shared => {
                // Bank conflicts ignored: decode kernels access
                // distinct banks by construction (keys are per-lane).
            }
            _ => {
                let tx = coalesce(addrs);
                self.counters.transactions += tx;
                if space == MemSpace::Dram {
                    self.counters.dram_transactions += tx;
                }
                // Waiting on more transactions costs issue slots.
                self.counters.cycles += tx.saturating_sub(1);
            }
        }
    }

    /// A divergent region: lanes take paths of the given instruction
    /// lengths; SIMT serializes over the distinct paths, so the cost is
    /// the sum of path lengths (not the max).
    pub fn diverge(&mut self, path_lengths: &[u64]) {
        let sum: u64 = path_lengths.iter().sum();
        let max = path_lengths.iter().copied().max().unwrap_or(0);
        self.counters.cycles += sum;
        self.counters.divergent_steps += sum - max;
    }

    /// Consumes the context, yielding its counters.
    pub fn finish(self) -> TaskCounters {
        self.counters
    }
}

/// Number of 32-byte transactions needed to service the addresses.
pub fn coalesce(addrs: &[u64]) -> u64 {
    let mut sectors: Vec<u64> = addrs.iter().map(|a| a / TRANSACTION_BYTES).collect();
    sectors.sort_unstable();
    sectors.dedup();
    sectors.len() as u64
}

/// Aggregate statistics of a kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Total warp-instruction cycles across tasks.
    pub cycles: u64,
    /// Bytes moved over DRAM (transactions × 32).
    pub dram_bytes: u64,
    /// Total memory transactions.
    pub transactions: u64,
    /// Cycles lost to divergence serialization.
    pub divergent_steps: u64,
    /// Longest single task (critical path floor).
    pub longest_task_cycles: u64,
    /// Task count.
    pub tasks: usize,
}

impl KernelStats {
    /// Folds one task's counters into the launch statistics.
    pub fn absorb(&mut self, c: TaskCounters) {
        self.cycles += c.cycles;
        self.dram_bytes += c.dram_transactions * TRANSACTION_BYTES;
        self.transactions += c.transactions;
        self.divergent_steps += c.divergent_steps;
        self.longest_task_cycles = self.longest_task_cycles.max(c.cycles);
        self.tasks += 1;
    }

    /// Merges another launch (e.g. per-chunk sub-launches).
    pub fn merge(&mut self, other: &KernelStats) {
        self.cycles += other.cycles;
        self.dram_bytes += other.dram_bytes;
        self.transactions += other.transactions;
        self.divergent_steps += other.divergent_steps;
        self.longest_task_cycles = self.longest_task_cycles.max(other.longest_task_cycles);
        self.tasks += other.tasks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_access_is_one_transaction_per_sector() {
        // 32 consecutive u8 addresses: one 32-byte sector.
        let addrs: Vec<u64> = (0..32).collect();
        assert_eq!(coalesce(&addrs), 1);
        // 32 consecutive f32 addresses: 128 bytes = 4 sectors.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        assert_eq!(coalesce(&addrs), 4);
        // Fully scattered: one sector each.
        let addrs: Vec<u64> = (0..32).map(|i| i * 4096).collect();
        assert_eq!(coalesce(&addrs), 32);
    }

    #[test]
    fn duplicate_addresses_coalesce() {
        let addrs = vec![64u64; 32];
        assert_eq!(coalesce(&addrs), 1);
    }

    #[test]
    fn access_counts_cycles_and_transactions() {
        let mut ctx = WarpCtx::new();
        let addrs: Vec<u64> = (0..32).map(|i| i * 4).collect();
        ctx.access(&addrs, MemSpace::Dram);
        let c = ctx.finish();
        assert_eq!(c.transactions, 4);
        assert_eq!(c.dram_transactions, 4);
        assert_eq!(c.cycles, 1 + 3); // issue + extra transactions
    }

    #[test]
    fn l2_hits_cost_no_dram() {
        let mut ctx = WarpCtx::new();
        let addrs: Vec<u64> = (0..32).map(|i| i * 256).collect();
        ctx.access(&addrs, MemSpace::L2);
        let c = ctx.finish();
        assert_eq!(c.dram_transactions, 0);
        assert_eq!(c.transactions, 32);
    }

    #[test]
    fn shared_access_is_single_cycle() {
        let mut ctx = WarpCtx::new();
        let addrs: Vec<u64> = (0..32).map(|i| i * 1024).collect();
        ctx.access(&addrs, MemSpace::Shared);
        let c = ctx.finish();
        assert_eq!(c.cycles, 1);
        assert_eq!(c.transactions, 0);
    }

    #[test]
    fn divergence_serializes_paths() {
        let mut ctx = WarpCtx::new();
        ctx.diverge(&[10, 20, 30]);
        let c = ctx.finish();
        assert_eq!(c.cycles, 60);
        assert_eq!(c.divergent_steps, 30); // 60 - max(30)
    }

    #[test]
    fn stats_absorb_and_merge() {
        let mut s = KernelStats::default();
        s.absorb(TaskCounters {
            cycles: 10,
            dram_transactions: 2,
            transactions: 3,
            divergent_steps: 1,
        });
        s.absorb(TaskCounters {
            cycles: 25,
            dram_transactions: 0,
            transactions: 0,
            divergent_steps: 0,
        });
        assert_eq!(s.cycles, 35);
        assert_eq!(s.dram_bytes, 64);
        assert_eq!(s.longest_task_cycles, 25);
        assert_eq!(s.tasks, 2);

        let mut t = KernelStats::default();
        t.merge(&s);
        t.merge(&s);
        assert_eq!(t.cycles, 70);
        assert_eq!(t.tasks, 4);
        assert_eq!(t.longest_task_cycles, 25);
    }
}
