//! Property tests: the simulated GPU kernels must match the CPU
//! decoders bit-for-bit on arbitrary inputs, and the cost accounting
//! must obey basic physical laws.

use proptest::prelude::*;
use sciml_codec::cosmoflow as cf;
use sciml_codec::deepcam as dc;
use sciml_codec::Op;
use sciml_data::cosmoflow::{CosmoParams, CosmoSample};
use sciml_data::deepcam::DeepCamSample;
use sciml_gpusim::warp::coalesce;
use sciml_gpusim::{decode_cosmo, decode_deepcam, Gpu, GpuSpec};

fn cosmo_sample() -> impl Strategy<Value = CosmoSample> {
    (2usize..5).prop_flat_map(|grid| {
        let n = grid * grid * grid * 4;
        prop::collection::vec(0u16..300, n..=n).prop_map(move |counts| CosmoSample {
            grid,
            counts,
            label: CosmoParams::MEANS,
        })
    })
}

fn deepcam_sample() -> impl Strategy<Value = DeepCamSample> {
    (4usize..32, 1usize..3).prop_flat_map(|(w, h)| {
        let n = w * h;
        prop::collection::vec(-500f32..500f32, n..=n).prop_map(move |data| DeepCamSample {
            width: w,
            height: h,
            channels: 1,
            data,
            mask: vec![0; w * h],
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bit-exact equivalence of device and host decoders, any input,
    /// both device generations, both ops.
    #[test]
    fn device_equals_host_for_all_inputs(s in cosmo_sample(), d in deepcam_sample()) {
        let cenc = cf::encode(&s);
        let (denc, _) = dc::encode(&d, &dc::EncoderConfig::default());
        for spec in [GpuSpec::V100, GpuSpec::A100] {
            let gpu = Gpu::new(spec);
            let (cosmo_dev, _, _) = decode_cosmo(&gpu, &cenc, Op::Log1p).unwrap();
            prop_assert_eq!(cosmo_dev, cf::decode(&cenc, Op::Log1p).unwrap());
            let (cam_dev, _, _) = decode_deepcam(&gpu, &denc, Op::Identity).unwrap();
            prop_assert_eq!(cam_dev, dc::decode(&denc, Op::Identity).unwrap());
        }
    }

    /// Simulated time is positive, finite, and weakly decreasing in
    /// machine capability (A100 never slower than V100 on equal work).
    #[test]
    fn sim_time_is_physical(s in cosmo_sample()) {
        let enc = cf::encode(&s);
        let (_, sv, tv) = decode_cosmo(&Gpu::new(GpuSpec::V100), &enc, Op::Log1p).unwrap();
        let (_, sa, ta) = decode_cosmo(&Gpu::new(GpuSpec::A100), &enc, Op::Log1p).unwrap();
        prop_assert!(tv.is_finite() && tv > 0.0);
        prop_assert!(ta <= tv * 1.0001);
        // Same kernel, same work: identical functional counters.
        prop_assert_eq!(sv.tasks, sa.tasks);
    }

    /// Coalescing bounds: between ceil(span/32) and lane count.
    #[test]
    fn coalesce_bounds(addrs in prop::collection::vec(0u64..1_000_000, 1..32)) {
        let tx = coalesce(&addrs);
        prop_assert!(tx >= 1);
        prop_assert!(tx <= addrs.len() as u64);
        let lo = *addrs.iter().min().unwrap() / 32;
        let hi = *addrs.iter().max().unwrap() / 32;
        prop_assert!(tx <= hi - lo + 1);
    }

    /// Coalescing is permutation-invariant.
    #[test]
    fn coalesce_is_order_independent(mut addrs in prop::collection::vec(0u64..10_000, 1..32)) {
        let a = coalesce(&addrs);
        addrs.reverse();
        prop_assert_eq!(a, coalesce(&addrs));
    }

    /// More scattered access never costs fewer transactions: scaling all
    /// addresses apart cannot reduce the sector count.
    #[test]
    fn spreading_addresses_never_coalesces_better(base in prop::collection::vec(0u64..1000, 2..32)) {
        let tight = coalesce(&base);
        let spread: Vec<u64> = base.iter().map(|&a| a * 64).collect();
        prop_assert!(coalesce(&spread) >= tight);
    }
}
