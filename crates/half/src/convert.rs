//! Bit-level conversions between binary32 and binary16.
//!
//! `f32 -> f16` uses round-to-nearest, ties-to-even, the IEEE default mode
//! and what V100/A100 conversion instructions implement. Subnormal halves
//! are produced for small magnitudes; overflow saturates to infinity; NaN
//! payload top bits are preserved and the result is always quiet.

/// Converts an `f32` to binary16 bits with round-to-nearest-even.
pub fn f16_bits_from_f32(v: f32) -> u16 {
    let bits = v.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf or NaN.
        return if man == 0 {
            sign | 0x7C00
        } else {
            // Quiet NaN; keep top mantissa bits so distinct payloads are
            // distinguishable, force the quiet bit to avoid producing inf.
            sign | 0x7C00 | 0x0200 | ((man >> 13) as u16 & 0x01FF)
        };
    }

    // Unbiased exponent of the f32 value.
    let unbiased = exp - 127;
    // Half exponent field = unbiased + 15.
    let half_exp = unbiased + 15;

    if half_exp >= 0x1F {
        // Overflow: round-to-nearest-even of any value >= 65520 is inf.
        // Values in (65504, 65520) round down to MAX.
        let abs = f32::from_bits(bits & 0x7FFF_FFFF);
        if abs >= 65520.0 {
            return sign | 0x7C00;
        }
        return sign | 0x7BFF;
    }

    if half_exp <= 0 {
        // Subnormal half (or zero). The implicit leading 1 (for normal
        // f32 inputs, i.e. exp != 0) joins the mantissa and the whole
        // significand is shifted right.
        if half_exp < -10 {
            // Too small for even the largest subnormal rounding: underflow
            // to (signed) zero. half_exp == -10 can still round up to the
            // smallest subnormal.
            return sign;
        }
        let significand = if exp == 0 {
            // f32 subnormal: magnitude < 2^-126, far below half subnormal
            // range; flush to zero (consistent with half_exp < -10 path).
            return sign;
        } else {
            man | 0x0080_0000
        };
        // We need to shift the 24-bit significand right by (14 + 10 - ...):
        // value = significand * 2^(unbiased - 23); half subnormal unit is
        // 2^-24, so the result mantissa = value / 2^-24
        //        = significand * 2^(unbiased - 23 + 24)
        //        = significand >> (13 - (half_exp - 1))  [derived below]
        // For half_exp in [-10, 0] the shift is 14 - half_exp in [14, 24].
        let shift = (14 - half_exp) as u32;
        let mantissa = significand >> shift;
        let remainder = significand & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let mut m = mantissa as u16;
        if remainder > halfway || (remainder == halfway && (m & 1) == 1) {
            m += 1; // may carry into the exponent field: that is correct
                    // (rounds up to MIN_POSITIVE)
        }
        return sign | m;
    }

    // Normal half. Round the 23-bit mantissa to 10 bits.
    let mut half = sign | ((half_exp as u16) << 10) | ((man >> 13) as u16);
    let remainder = man & 0x1FFF;
    if remainder > 0x1000 || (remainder == 0x1000 && (half & 1) == 1) {
        half += 1; // carry may roll into exponent; IEEE rounding is exactly
                   // this bit-increment (may produce inf from MAX, which is
                   // unreachable here because half_exp < 0x1F pre-rounding
                   // and mantissa carry gives exp 0x1F|man 0 = inf only via
                   // values handled in the overflow branch above... except
                   // values just below 65520 — handled there too).
    }
    half
}

/// Exactly widens binary16 bits to an `f32`.
pub fn f32_from_f16_bits(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x03FF) as u32;

    let bits = if exp == 0 {
        if man == 0 {
            sign // signed zero
        } else {
            // Subnormal: value = man * 2^-24 with the leading set bit of
            // `man` at position p, i.e. 1.xxx * 2^(p-24). Normalize by
            // shifting that leading bit up to f32 mantissa bit 23.
            let p = 31 - man.leading_zeros(); // 0..=9
            let exp32 = p + (127 - 24);
            let shifted = man << (23 - p);
            sign | (exp32 << 23) | (shifted & 0x007F_FFFF)
        }
    } else if exp == 0x1F {
        if man == 0 {
            sign | 0x7F80_0000 // infinity
        } else {
            sign | 0x7FC0_0000 | (man << 13) // quiet NaN, payload preserved
        }
    } else {
        let exp32 = exp + 127 - 15;
        sign | (exp32 << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference conversion via integer-free arithmetic: parse the half
    /// fields and reconstruct the value with powers of two.
    fn reference_to_f32(h: u16) -> f32 {
        let sign = if h & 0x8000 != 0 { -1.0f64 } else { 1.0 };
        let exp = ((h >> 10) & 0x1F) as i32;
        let man = (h & 0x03FF) as f64;
        let v = if exp == 0 {
            sign * man * 2f64.powi(-24)
        } else if exp == 0x1F {
            if man == 0.0 {
                sign * f64::INFINITY
            } else {
                f64::NAN
            }
        } else {
            sign * (1.0 + man / 1024.0) * 2f64.powi(exp - 15)
        };
        v as f32
    }

    #[test]
    fn widen_matches_reference_for_all_bit_patterns() {
        for h in 0..=u16::MAX {
            let ours = f32_from_f16_bits(h);
            let reference = reference_to_f32(h);
            if reference.is_nan() {
                assert!(ours.is_nan(), "bits {h:#06x}: expected NaN, got {ours}");
            } else {
                assert_eq!(ours, reference, "bits {h:#06x}");
            }
        }
    }

    #[test]
    fn narrow_widen_roundtrip_is_identity_for_all_finite_halves() {
        for h in 0..=u16::MAX {
            let f = f32_from_f16_bits(h);
            if f.is_nan() {
                assert!(f32_from_f16_bits(f16_bits_from_f32(f)).is_nan());
                continue;
            }
            let back = f16_bits_from_f32(f);
            // -0.0 and 0.0 keep their signs; everything exact.
            assert_eq!(back, h, "bits {h:#06x} -> {f} -> {back:#06x}");
        }
    }

    #[test]
    fn rounding_ties_to_even() {
        // 1.0 + 2^-11 is exactly halfway between 1.0 and 1.0+2^-10:
        // must round to even mantissa (1.0).
        let halfway = 1.0f32 + 2f32.powi(-11);
        assert_eq!(f16_bits_from_f32(halfway), 0x3C00);
        // 1.0 + 3*2^-11 is halfway between m=1 and m=2: rounds to m=2.
        let halfway_up = 1.0f32 + 3.0 * 2f32.powi(-11);
        assert_eq!(f16_bits_from_f32(halfway_up), 0x3C02);
        // Slightly above halfway rounds up.
        assert_eq!(f16_bits_from_f32(halfway + 1e-7), 0x3C01);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(f16_bits_from_f32(65520.0), 0x7C00);
        assert_eq!(f16_bits_from_f32(1e30), 0x7C00);
        assert_eq!(f16_bits_from_f32(-1e30), 0xFC00);
        // 65519.9 rounds down to MAX
        assert_eq!(f16_bits_from_f32(65519.0), 0x7BFF);
        assert_eq!(f16_bits_from_f32(65504.0), 0x7BFF);
    }

    #[test]
    fn underflow_and_subnormals() {
        // 2^-24 is the smallest subnormal.
        assert_eq!(f16_bits_from_f32(2f32.powi(-24)), 0x0001);
        // Half of that is a tie with zero: ties-to-even gives zero.
        assert_eq!(f16_bits_from_f32(2f32.powi(-25)), 0x0000);
        // Just above the tie rounds up to the smallest subnormal.
        assert_eq!(f16_bits_from_f32(2f32.powi(-25) * 1.0001), 0x0001);
        // Far below: signed zero.
        assert_eq!(f16_bits_from_f32(-1e-30), 0x8000);
        // Largest subnormal.
        let largest_sub = 1023.0 * 2f32.powi(-24);
        assert_eq!(f16_bits_from_f32(largest_sub), 0x03FF);
        // Rounds up into the normal range.
        let just_below_min_normal = 2f32.powi(-14) * (1.0 - 2f32.powi(-12));
        assert_eq!(f16_bits_from_f32(just_below_min_normal), 0x0400);
    }

    #[test]
    fn nan_stays_nan_and_infinity_is_preserved() {
        assert_eq!(f16_bits_from_f32(f32::INFINITY), 0x7C00);
        assert_eq!(f16_bits_from_f32(f32::NEG_INFINITY), 0xFC00);
        let n = f16_bits_from_f32(f32::NAN);
        assert_eq!(n & 0x7C00, 0x7C00);
        assert_ne!(n & 0x03FF, 0);
    }

    #[test]
    fn mantissa_carry_rolls_into_exponent() {
        // Largest f32 below 2.0 rounds up to exactly 2.0 in half.
        let v = 2.0f32 - 2f32.powi(-20);
        assert_eq!(f16_bits_from_f32(v), 0x4000); // 2.0
    }
}
