//! Software IEEE 754 binary16 ("half precision", FP16) support.
//!
//! The paper's decoders perform arithmetic in FP32 and *emit* FP16 samples
//! ("we emit half-precision (FP16) values, the computation is conducted in
//! single-precision"), feeding the frameworks' mixed-precision engines.
//! None of the pre-approved crates provide a half type, so this crate
//! implements one from scratch with:
//!
//! * correctly rounded (round-to-nearest-even) `f32 -> f16` conversion,
//!   including subnormal generation and overflow to infinity;
//! * exact `f16 -> f32` widening;
//! * the small arithmetic surface the decoders need (add/sub/mul/div are
//!   performed by widening to `f32`, operating, and re-rounding — the same
//!   "software emulated addition" scheme described in §V-A of the paper);
//! * ULP / relative-error utilities used by the codec error statistics.
//!
//! The type is a plain `u16` newtype (`repr(transparent)`) so slices of
//! [`F16`] can be shipped across the simulated host/device boundary as raw
//! bytes with no copying.

mod convert;
mod ops;
mod simd;
pub mod slice;

pub use convert::{f16_bits_from_f32, f32_from_f16_bits};

use std::cmp::Ordering;
use std::fmt;

/// An IEEE 754 binary16 floating-point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct F16(pub u16);

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0x0000);
    /// Negative zero.
    pub const NEG_ZERO: F16 = F16(0x8000);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A canonical quiet NaN.
    pub const NAN: F16 = F16(0x7E00);
    /// Largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// Smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Smallest positive subnormal value, 2^-24.
    pub const MIN_POSITIVE_SUBNORMAL: F16 = F16(0x0001);
    /// Machine epsilon (2^-10): difference between 1.0 and the next value.
    pub const EPSILON: F16 = F16(0x1400);

    /// Number of bytes in the wire representation.
    pub const BYTES: usize = 2;

    /// Converts an `f32` with round-to-nearest-even.
    #[inline]
    pub fn from_f32(v: f32) -> F16 {
        F16(f16_bits_from_f32(v))
    }

    /// Widens to `f32`; this conversion is exact for every `F16` value.
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32_from_f16_bits(self.0)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// Little-endian wire encoding.
    #[inline]
    pub fn to_le_bytes(self) -> [u8; 2] {
        self.0.to_le_bytes()
    }

    /// Decodes the little-endian wire encoding.
    #[inline]
    pub fn from_le_bytes(b: [u8; 2]) -> F16 {
        F16(u16::from_le_bytes(b))
    }

    /// True for either signed zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 & 0x7FFF == 0
    }

    /// True if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & 0x7C00) == 0x7C00 && (self.0 & 0x03FF) != 0
    }

    /// True if the value is +inf or -inf.
    #[inline]
    pub fn is_infinite(self) -> bool {
        self.0 & 0x7FFF == 0x7C00
    }

    /// True if the value is neither infinite nor NaN.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0 & 0x7C00 != 0x7C00
    }

    /// True for nonzero values with a zero exponent field (subnormals).
    #[inline]
    pub fn is_subnormal(self) -> bool {
        (self.0 & 0x7C00) == 0 && (self.0 & 0x03FF) != 0
    }

    /// Sign bit as a bool (true = negative, including -0.0 and NaNs with
    /// the sign bit set).
    #[inline]
    pub fn is_sign_negative(self) -> bool {
        self.0 & 0x8000 != 0
    }

    /// Absolute value (clears the sign bit).
    #[inline]
    pub fn abs(self) -> F16 {
        F16(self.0 & 0x7FFF)
    }

    /// Distance in units-in-the-last-place between two finite values.
    ///
    /// Uses the standard monotone integer mapping of IEEE floats: negative
    /// values map below zero so the distance across zero is meaningful.
    /// Returns `u32::MAX` if either value is NaN.
    pub fn ulp_distance(self, other: F16) -> u32 {
        if self.is_nan() || other.is_nan() {
            return u32::MAX;
        }
        fn key(v: F16) -> i32 {
            let b = v.0;
            if b & 0x8000 != 0 {
                -((b & 0x7FFF) as i32)
            } else {
                (b & 0x7FFF) as i32
            }
        }
        (key(self) - key(other)).unsigned_abs()
    }

    /// Relative error of `self` as an approximation of the exact `f32`
    /// reference value. Zero reference with zero value gives 0; zero
    /// reference with nonzero value gives infinity.
    pub fn relative_error(self, reference: f32) -> f32 {
        relative_error(self.to_f32(), reference)
    }
}

/// Relative error |approx - exact| / |exact| with the zero-reference
/// convention used by the codec error statistics.
#[inline]
pub fn relative_error(approx: f32, exact: f32) -> f32 {
    if exact == 0.0 {
        if approx == 0.0 {
            0.0
        } else {
            f32::INFINITY
        }
    } else {
        ((approx - exact) / exact).abs()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &F16) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    #[inline]
    fn from(v: f32) -> F16 {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    #[inline]
    fn from(v: F16) -> f32 {
        v.to_f32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_roundtrip() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), 6.103_515_6e-5);
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.to_f32(), 5.960_464_5e-8);
        assert!(F16::NAN.is_nan());
        assert!(F16::INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_infinite());
        assert!(F16::NEG_INFINITY.is_sign_negative());
    }

    #[test]
    fn classification() {
        assert!(F16::ZERO.is_zero());
        assert!(F16::NEG_ZERO.is_zero());
        assert!(F16::from_f32(1e-6).is_subnormal());
        assert!(F16::ONE.is_finite());
        assert!(!F16::INFINITY.is_finite());
        assert!(!F16::NAN.is_finite());
        assert!(!F16::ONE.is_subnormal());
        assert!(!F16::ZERO.is_subnormal());
    }

    #[test]
    fn abs_clears_sign() {
        assert_eq!(F16::from_f32(-2.5).abs().to_f32(), 2.5);
        assert_eq!(F16::NEG_ZERO.abs(), F16::ZERO);
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(F16::ONE.ulp_distance(F16::ONE), 0);
        assert_eq!(F16::ONE.ulp_distance(F16(0x3C01)), 1);
        // across zero: +min_subnormal and -min_subnormal are 2 apart
        assert_eq!(F16::MIN_POSITIVE_SUBNORMAL.ulp_distance(F16(0x8001)), 2);
        assert_eq!(F16::NAN.ulp_distance(F16::ONE), u32::MAX);
    }

    #[test]
    fn relative_error_conventions() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f32::INFINITY);
        assert!((relative_error(1.1, 1.0) - 0.1).abs() < 1e-6);
        assert!((relative_error(0.9, 1.0) - 0.1).abs() < 1e-6);
    }

    #[test]
    fn wire_encoding() {
        let v = F16::from_f32(std::f32::consts::PI);
        assert_eq!(F16::from_le_bytes(v.to_le_bytes()), v);
    }

    #[test]
    fn ordering_matches_f32() {
        let vals = [-2.0f32, -0.5, 0.0, 0.25, 1.0, 1000.0];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    F16::from_f32(a).partial_cmp(&F16::from_f32(b)),
                    a.partial_cmp(&b)
                );
            }
        }
    }
}
