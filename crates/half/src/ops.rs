//! Arithmetic on [`F16`] by widening to `f32`.
//!
//! This mirrors the paper's decode arithmetic: "the computation is
//! conducted in single-precision (FP32) precision" with FP16 emission,
//! i.e. every operation is `round16(op32(widen(a), widen(b)))`.

use crate::F16;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

macro_rules! widen_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F16 {
            type Output = F16;
            #[inline]
            fn $method(self, rhs: F16) -> F16 {
                F16::from_f32(self.to_f32() $op rhs.to_f32())
            }
        }
    };
}

widen_binop!(Add, add, +);
widen_binop!(Sub, sub, -);
widen_binop!(Mul, mul, *);
widen_binop!(Div, div, /);

impl Neg for F16 {
    type Output = F16;
    #[inline]
    fn neg(self) -> F16 {
        F16(self.0 ^ 0x8000)
    }
}

impl AddAssign for F16 {
    #[inline]
    fn add_assign(&mut self, rhs: F16) {
        *self = *self + rhs;
    }
}

impl Sum for F16 {
    /// Accumulates in `f32` and rounds once at the end — the numerically
    /// sensible reduction for half inputs (and what mixed-precision
    /// tensor hardware does).
    fn sum<I: Iterator<Item = F16>>(iter: I) -> F16 {
        F16::from_f32(iter.map(F16::to_f32).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_rounds_to_half() {
        let a = F16::from_f32(1.0);
        let b = F16::from_f32(2f32.powi(-12)); // below half epsilon at 1.0
        assert_eq!(a + b, a); // absorbed by rounding
        let c = F16::from_f32(2f32.powi(-10));
        assert_eq!((a + c).to_f32(), 1.0 + 2f32.powi(-10));
    }

    #[test]
    fn mul_div_roundtrip() {
        let a = F16::from_f32(3.5);
        let b = F16::from_f32(2.0);
        assert_eq!((a * b).to_f32(), 7.0);
        assert_eq!((a / b).to_f32(), 1.75);
    }

    #[test]
    fn neg_is_sign_flip() {
        assert_eq!((-F16::ONE).to_f32(), -1.0);
        assert_eq!((-F16::ZERO).to_bits(), 0x8000);
        assert!((-F16::NAN).is_nan());
    }

    #[test]
    fn sum_accumulates_in_f32() {
        // 4096 copies of 1.0 sum exactly to 4096 when accumulated in f32;
        // a naive half accumulator would stall at 2048 (where +1 is
        // absorbed by rounding).
        let v = vec![F16::ONE; 4096];
        assert_eq!(v.into_iter().sum::<F16>().to_f32(), 4096.0);
    }

    #[test]
    fn add_assign_matches_add() {
        let mut a = F16::from_f32(1.5);
        a += F16::from_f32(0.25);
        assert_eq!(a.to_f32(), 1.75);
    }

    #[test]
    fn inf_and_nan_propagate() {
        assert!((F16::INFINITY - F16::INFINITY).is_nan());
        assert_eq!(F16::INFINITY + F16::ONE, F16::INFINITY);
        assert!((F16::NAN * F16::ONE).is_nan());
        assert_eq!(F16::MAX + F16::MAX, F16::INFINITY);
    }
}
