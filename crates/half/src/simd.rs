//! Runtime-dispatched vector kernels for bulk F32↔F16 conversion.
//!
//! Every path here is **bit-exact** against the canonical scalar
//! conversions in [`crate::convert`] — same round-to-nearest-even, same
//! subnormal generation, same overflow-to-infinity threshold (65520),
//! same NaN handling (quiet bit forced, top payload bits preserved) and
//! the same flush of f32-subnormal inputs to signed zero. Proptests in
//! `tests/proptests.rs` force every tier and compare against scalar,
//! including an exhaustive sweep of all 2^16 half patterns.
//!
//! * **AVX2 tier** uses the F16C hardware conversions (`vcvtps2ph` /
//!   `vcvtph2ps` with round-to-nearest), which implement exactly the
//!   scalar semantics above.
//! * **SSE4.2 / NEON tiers** use the classic integer+magic-float
//!   algorithm (Giesen-style `float_to_half_fast3_rtne`), modified to
//!   preserve NaN payload top bits and force the quiet bit like the
//!   scalar path does.
//! * Tails shorter than the vector width and the **scalar tier** run the
//!   scalar conversion loop, so `SCIML_SIMD=scalar` output is byte-for-
//!   byte the pre-dispatch behavior.
//!
//! Dispatch is decided per slice call via [`sciml_simd::active_level`]
//! and recorded in the shared dispatch counters so observability can
//! tell which path actually ran.

use crate::convert::{f16_bits_from_f32, f32_from_f16_bits};
use crate::F16;
use sciml_simd::{arch_level as chosen_level, record, Kernel, SimdLevel};

#[inline]
fn narrow_scalar(src: &[f32], dst: &mut [F16]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = F16(f16_bits_from_f32(s));
    }
}

#[inline]
fn narrow_affine_scalar(src: &[f32], scale: f32, offset: f32, dst: &mut [F16]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = F16(f16_bits_from_f32((s - offset) * scale));
    }
}

#[inline]
fn widen_scalar(src: &[F16], dst: &mut [f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = f32_from_f16_bits(s.0);
    }
}

/// Bulk `f32 -> f16`, dispatched. Caller guarantees equal lengths.
pub(crate) fn narrow_dispatch(src: &[f32], dst: &mut [F16]) {
    debug_assert_eq!(src.len(), dst.len());
    let lvl = chosen_level();
    record(Kernel::HalfNarrow, lvl);
    match lvl {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `chosen_level` returns Avx2 only when the probe (or a
        // clamped override) verified avx2+f16c+sse4.2 on this CPU.
        SimdLevel::Avx2 => unsafe { x86::narrow_avx2(src, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Sse42 from `chosen_level` implies sse4.2 (and thus
        // sse2..sse4.1) was detected on this CPU.
        SimdLevel::Sse42 => unsafe { x86::narrow_sse(src, dst) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::narrow_neon(src, dst) },
        _ => narrow_scalar(src, dst),
    }
}

/// Bulk fused `(x - offset) * scale` then `f32 -> f16`, dispatched.
/// Bit-exact versus the scalar expression because the vector sub/mul
/// are the same IEEE single-precision operations. Caller guarantees
/// equal lengths.
pub(crate) fn narrow_affine_dispatch(src: &[f32], scale: f32, offset: f32, dst: &mut [F16]) {
    debug_assert_eq!(src.len(), dst.len());
    let lvl = chosen_level();
    record(Kernel::HalfNarrow, lvl);
    match lvl {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `chosen_level` returns Avx2 only when the probe (or a
        // clamped override) verified avx2+f16c+sse4.2 on this CPU.
        SimdLevel::Avx2 => unsafe { x86::narrow_affine_avx2(src, scale, offset, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Sse42 from `chosen_level` implies sse4.2 was detected.
        SimdLevel::Sse42 => unsafe { x86::narrow_affine_sse(src, scale, offset, dst) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::narrow_affine_neon(src, scale, offset, dst) },
        _ => narrow_affine_scalar(src, scale, offset, dst),
    }
}

/// Bulk `f16 -> f32` (exact), dispatched. Caller guarantees equal
/// lengths.
pub(crate) fn widen_dispatch(src: &[F16], dst: &mut [f32]) {
    debug_assert_eq!(src.len(), dst.len());
    let lvl = chosen_level();
    record(Kernel::HalfWiden, lvl);
    match lvl {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `chosen_level` returns Avx2 only when the probe (or a
        // clamped override) verified avx2+f16c+sse4.2 on this CPU.
        SimdLevel::Avx2 => unsafe { x86::widen_avx2(src, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Sse42 from `chosen_level` implies sse4.2 was detected.
        SimdLevel::Sse42 => unsafe { x86::widen_sse(src, dst) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is baseline on aarch64.
        SimdLevel::Neon => unsafe { neon::widen_neon(src, dst) },
        _ => widen_scalar(src, dst),
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{narrow_affine_scalar, narrow_scalar, widen_scalar};
    use crate::F16;
    use core::arch::x86_64::*;

    /// `f16 := round_to_nearest_even(f32)` for 8 lanes via F16C. The
    /// hardware instruction matches `f16_bits_from_f32` exactly: RTNE,
    /// subnormal generation, 65520 overflow threshold, f32 subnormals
    /// flushed only by the rounding itself (they are < 2^-126, far below
    /// the half subnormal tie at 2^-25, so both produce signed zero),
    /// and NaNs quieted with the top 9 payload bits kept.
    #[target_feature(enable = "avx2,f16c")]
    pub(super) unsafe fn narrow_avx2(src: &[f32], dst: &mut [F16]) {
        let n = src.len();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); unaligned
            // load/store intrinsics have no alignment requirement, and
            // `F16` is repr(transparent) over u16 so 8 lanes fill 16
            // bytes of dst exactly.
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(i));
                let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(v);
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast::<__m128i>(), h);
            }
            i += 8;
        }
        narrow_scalar(&src[i..], &mut dst[i..]);
    }

    /// Fused affine + narrow for 8 lanes (same IEEE sub/mul as scalar,
    /// then the F16C conversion).
    #[target_feature(enable = "avx2,f16c")]
    pub(super) unsafe fn narrow_affine_avx2(src: &[f32], scale: f32, offset: f32, dst: &mut [F16]) {
        let n = src.len();
        let off = _mm256_set1_ps(offset);
        let sc = _mm256_set1_ps(scale);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); unaligned
            // intrinsics, dst writes are 16 bytes of valid F16 slots.
            unsafe {
                let v = _mm256_loadu_ps(src.as_ptr().add(i));
                let y = _mm256_mul_ps(_mm256_sub_ps(v, off), sc);
                let h = _mm256_cvtps_ph::<_MM_FROUND_TO_NEAREST_INT>(y);
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast::<__m128i>(), h);
            }
            i += 8;
        }
        narrow_affine_scalar(&src[i..], scale, offset, &mut dst[i..]);
    }

    /// Exact `f16 -> f32` widening for 8 lanes via F16C. `vcvtph2ps` is
    /// exact and quiets signaling NaNs while preserving the payload —
    /// identical to `f32_from_f16_bits`.
    #[target_feature(enable = "avx2,f16c")]
    pub(super) unsafe fn widen_avx2(src: &[F16], dst: &mut [f32]) {
        let n = src.len();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); unaligned
            // intrinsics; 8 F16 lanes read 16 bytes of valid src.
            unsafe {
                let h = _mm_loadu_si128(src.as_ptr().add(i).cast::<__m128i>());
                let v = _mm256_cvtph_ps(h);
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), v);
            }
            i += 8;
        }
        widen_scalar(&src[i..], &mut dst[i..]);
    }

    // ----- SSE tier: integer + magic-float conversion ----------------
    //
    // Narrowing algorithm per lane (all < 2^31 after sign strip, so
    // signed 32-bit compares are exact):
    //   sign = bits & 0x8000_0000;  a = bits & 0x7FFF_FFFF
    //   a >= 0x4780_0000 (65536):       inf, or NaN with payload kept
    //   a <  0x3880_0000 (2^-14):       subnormal result — float-add
    //       0.5 (exponent 126) so the FP adder performs the shift+RTNE,
    //       then subtract the 0.5 bit pattern to leave the mantissa
    //   otherwise:                      rebias exponent by (15-127)<<23
    //       and add 0xFFF + (bit 13) for RTNE; values in [65520, 65536)
    //       carry into exponent 31 = infinity, exactly like scalar
    //   result |= sign >> 16
    const SIGN32: i32 = 0x8000_0000u32 as i32;
    const NARROW_HI: i32 = 0x4780_0000; // 65536.0f32 bits
    const F32_INF: i32 = 0x7F80_0000;
    const SMALL: i32 = 0x3880_0000; // 2^-14 bits: below => subnormal half
    const HALF_MAGIC: i32 = 126 << 23; // 0.5f32 bits
    const REBIAS_RTNE: i32 = (((15 - 127) << 23) as u32).wrapping_add(0xFFF) as i32;

    /// Narrows 4 f32 lanes to 4 u16-valued u32 lanes (sign applied).
    #[inline]
    #[target_feature(enable = "sse4.2")]
    unsafe fn narrow4_sse(v: __m128) -> __m128i {
        let bits = _mm_castps_si128(v);
        let sign = _mm_and_si128(bits, _mm_set1_epi32(SIGN32));
        let a = _mm_andnot_si128(_mm_set1_epi32(SIGN32), bits);

        // Large magnitudes, infinities and NaNs.
        let is_big = _mm_cmpgt_epi32(a, _mm_set1_epi32(NARROW_HI - 1));
        let is_nan = _mm_cmpgt_epi32(a, _mm_set1_epi32(F32_INF));
        let payload = _mm_or_si128(
            _mm_set1_epi32(0x0200),
            _mm_and_si128(_mm_srli_epi32::<13>(a), _mm_set1_epi32(0x01FF)),
        );
        let big = _mm_or_si128(_mm_set1_epi32(0x7C00), _mm_and_si128(is_nan, payload));

        // Subnormal results: FP add against 0.5 shifts and rounds.
        let is_small = _mm_cmplt_epi32(a, _mm_set1_epi32(SMALL));
        let magic = _mm_castsi128_ps(_mm_set1_epi32(HALF_MAGIC));
        let small_f = _mm_add_ps(_mm_castsi128_ps(a), magic);
        let small = _mm_sub_epi32(_mm_castps_si128(small_f), _mm_set1_epi32(HALF_MAGIC));

        // Normal results: rebias + RTNE increment, then drop 13 bits.
        let odd = _mm_and_si128(_mm_srli_epi32::<13>(a), _mm_set1_epi32(1));
        let adj = _mm_add_epi32(a, _mm_set1_epi32(REBIAS_RTNE));
        let norm = _mm_srli_epi32::<13>(_mm_add_epi32(adj, odd));

        let res = _mm_blendv_epi8(norm, small, is_small);
        let res = _mm_blendv_epi8(res, big, is_big);
        _mm_or_si128(res, _mm_srli_epi32::<16>(sign))
    }

    /// Widens 4 u16 half patterns (in u32 lanes) to 4 f32 lanes.
    /// Normals rebias by (127-15)<<23; subnormals renormalize via one
    /// exact FP subtract (Sterbenz); inf/NaN get exponent 255 with the
    /// quiet bit forced on nonzero mantissas, matching scalar.
    #[inline]
    #[target_feature(enable = "sse4.2")]
    unsafe fn widen4_sse(h32: __m128i) -> __m128 {
        let sign = _mm_slli_epi32::<16>(_mm_and_si128(h32, _mm_set1_epi32(0x8000)));
        let em = _mm_slli_epi32::<13>(_mm_and_si128(h32, _mm_set1_epi32(0x7FFF)));
        let exp = _mm_and_si128(em, _mm_set1_epi32(0x0F80_0000));

        let adjusted = _mm_add_epi32(em, _mm_set1_epi32((127 - 15) << 23));

        // Inf/NaN: exponent field becomes 255; quiet any NaN.
        let is_infnan = _mm_cmpeq_epi32(exp, _mm_set1_epi32(0x0F80_0000));
        let mant = _mm_and_si128(em, _mm_set1_epi32(0x007F_E000));
        let has_mant = _mm_andnot_si128(_mm_cmpeq_epi32(mant, _mm_setzero_si128()), is_infnan);
        let infnan = _mm_or_si128(
            _mm_add_epi32(adjusted, _mm_set1_epi32((128 - 16) << 23)),
            _mm_and_si128(has_mant, _mm_set1_epi32(0x0040_0000)),
        );

        // Zero / subnormal halves: treat the mantissa as a fixed-point
        // offset from 2^-14 and let one exact FP subtract renormalize.
        let is_zero_exp = _mm_cmpeq_epi32(exp, _mm_setzero_si128());
        let sub_bias = _mm_set1_epi32(0x3880_0000); // 2^-14
        let sub_f = _mm_sub_ps(
            _mm_castsi128_ps(_mm_add_epi32(em, sub_bias)),
            _mm_castsi128_ps(sub_bias),
        );
        let subn = _mm_castps_si128(sub_f);

        let res = _mm_blendv_epi8(adjusted, subn, is_zero_exp);
        let res = _mm_blendv_epi8(res, infnan, is_infnan);
        _mm_castsi128_ps(_mm_or_si128(res, sign))
    }

    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn narrow_sse(src: &[f32], dst: &mut [F16]) {
        let n = src.len();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); unaligned
            // load/store intrinsics; both 4-lane results hold u16
            // values so the unsigned pack is exact.
            unsafe {
                let lo = narrow4_sse(_mm_loadu_ps(src.as_ptr().add(i)));
                let hi = narrow4_sse(_mm_loadu_ps(src.as_ptr().add(i + 4)));
                let packed = _mm_packus_epi32(lo, hi);
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast::<__m128i>(), packed);
            }
            i += 8;
        }
        narrow_scalar(&src[i..], &mut dst[i..]);
    }

    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn narrow_affine_sse(src: &[f32], scale: f32, offset: f32, dst: &mut [F16]) {
        let n = src.len();
        let off = _mm_set1_ps(offset);
        let sc = _mm_set1_ps(scale);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); unaligned
            // load/store intrinsics; packed lanes hold u16 values.
            unsafe {
                let a = _mm_mul_ps(_mm_sub_ps(_mm_loadu_ps(src.as_ptr().add(i)), off), sc);
                let b = _mm_mul_ps(_mm_sub_ps(_mm_loadu_ps(src.as_ptr().add(i + 4)), off), sc);
                let packed = _mm_packus_epi32(narrow4_sse(a), narrow4_sse(b));
                _mm_storeu_si128(dst.as_mut_ptr().add(i).cast::<__m128i>(), packed);
            }
            i += 8;
        }
        narrow_affine_scalar(&src[i..], scale, offset, &mut dst[i..]);
    }

    #[target_feature(enable = "sse4.2")]
    pub(super) unsafe fn widen_sse(src: &[F16], dst: &mut [f32]) {
        let n = src.len();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); the 16-byte load
            // covers 8 valid F16 lanes; stores are unaligned.
            unsafe {
                let h8 = _mm_loadu_si128(src.as_ptr().add(i).cast::<__m128i>());
                let lo = widen4_sse(_mm_cvtepu16_epi32(h8));
                let hi = widen4_sse(_mm_cvtepu16_epi32(_mm_srli_si128::<8>(h8)));
                _mm_storeu_ps(dst.as_mut_ptr().add(i), lo);
                _mm_storeu_ps(dst.as_mut_ptr().add(i + 4), hi);
            }
            i += 8;
        }
        widen_scalar(&src[i..], &mut dst[i..]);
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{narrow_affine_scalar, narrow_scalar, widen_scalar};
    use crate::F16;
    use core::arch::aarch64::*;

    // Same integer + magic-float algorithm as the SSE tier (see the
    // comment block there); NEON has unsigned compares so the masks use
    // them directly.

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn narrow4_neon(v: float32x4_t) -> uint32x4_t {
        let bits = vreinterpretq_u32_f32(v);
        let sign = vandq_u32(bits, vdupq_n_u32(0x8000_0000));
        let a = vbicq_u32(bits, vdupq_n_u32(0x8000_0000));

        let is_big = vcgeq_u32(a, vdupq_n_u32(0x4780_0000));
        let is_nan = vcgtq_u32(a, vdupq_n_u32(0x7F80_0000));
        let payload = vorrq_u32(
            vdupq_n_u32(0x0200),
            vandq_u32(vshrq_n_u32::<13>(a), vdupq_n_u32(0x01FF)),
        );
        let big = vorrq_u32(vdupq_n_u32(0x7C00), vandq_u32(is_nan, payload));

        let is_small = vcltq_u32(a, vdupq_n_u32(0x3880_0000));
        let magic = vreinterpretq_f32_u32(vdupq_n_u32(126 << 23));
        let small_f = vaddq_f32(vreinterpretq_f32_u32(a), magic);
        let small = vsubq_u32(vreinterpretq_u32_f32(small_f), vdupq_n_u32(126 << 23));

        let odd = vandq_u32(vshrq_n_u32::<13>(a), vdupq_n_u32(1));
        let rebias = (((15 - 127) << 23) as u32).wrapping_add(0xFFF);
        let adj = vaddq_u32(a, vdupq_n_u32(rebias));
        let norm = vshrq_n_u32::<13>(vaddq_u32(adj, odd));

        let res = vbslq_u32(is_small, small, norm);
        let res = vbslq_u32(is_big, big, res);
        vorrq_u32(res, vshrq_n_u32::<16>(sign))
    }

    #[inline]
    #[target_feature(enable = "neon")]
    unsafe fn widen4_neon(h32: uint32x4_t) -> float32x4_t {
        let sign = vshlq_n_u32::<16>(vandq_u32(h32, vdupq_n_u32(0x8000)));
        let em = vshlq_n_u32::<13>(vandq_u32(h32, vdupq_n_u32(0x7FFF)));
        let exp = vandq_u32(em, vdupq_n_u32(0x0F80_0000));

        let adjusted = vaddq_u32(em, vdupq_n_u32(((127 - 15) << 23) as u32));

        let is_infnan = vceqq_u32(exp, vdupq_n_u32(0x0F80_0000));
        let mant = vandq_u32(em, vdupq_n_u32(0x007F_E000));
        let has_mant = vandq_u32(is_infnan, vmvnq_u32(vceqq_u32(mant, vdupq_n_u32(0))));
        let infnan = vorrq_u32(
            vaddq_u32(adjusted, vdupq_n_u32(((128 - 16) << 23) as u32)),
            vandq_u32(has_mant, vdupq_n_u32(0x0040_0000)),
        );

        let is_zero_exp = vceqq_u32(exp, vdupq_n_u32(0));
        let sub_bias = vdupq_n_u32(0x3880_0000);
        let sub_f = vsubq_f32(
            vreinterpretq_f32_u32(vaddq_u32(em, sub_bias)),
            vreinterpretq_f32_u32(sub_bias),
        );
        let subn = vreinterpretq_u32_f32(sub_f);

        let res = vbslq_u32(is_zero_exp, subn, adjusted);
        let res = vbslq_u32(is_infnan, infnan, res);
        vreinterpretq_f32_u32(vorrq_u32(res, sign))
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn narrow_neon(src: &[f32], dst: &mut [F16]) {
        let n = src.len();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); NEON loads and
            // stores are alignment-free; both 4-lane results hold u16
            // values so the truncating narrow is exact.
            unsafe {
                let lo = narrow4_neon(vld1q_f32(src.as_ptr().add(i)));
                let hi = narrow4_neon(vld1q_f32(src.as_ptr().add(i + 4)));
                let packed = vcombine_u16(vmovn_u32(lo), vmovn_u32(hi));
                vst1q_u16(dst.as_mut_ptr().add(i).cast::<u16>(), packed);
            }
            i += 8;
        }
        narrow_scalar(&src[i..], &mut dst[i..]);
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn narrow_affine_neon(src: &[f32], scale: f32, offset: f32, dst: &mut [F16]) {
        let n = src.len();
        let off = vdupq_n_f32(offset);
        let sc = vdupq_n_f32(scale);
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); alignment-free
            // NEON memory ops; packed lanes hold u16 values.
            unsafe {
                let a = vmulq_f32(vsubq_f32(vld1q_f32(src.as_ptr().add(i)), off), sc);
                let b = vmulq_f32(vsubq_f32(vld1q_f32(src.as_ptr().add(i + 4)), off), sc);
                let packed = vcombine_u16(vmovn_u32(narrow4_neon(a)), vmovn_u32(narrow4_neon(b)));
                vst1q_u16(dst.as_mut_ptr().add(i).cast::<u16>(), packed);
            }
            i += 8;
        }
        narrow_affine_scalar(&src[i..], scale, offset, &mut dst[i..]);
    }

    #[target_feature(enable = "neon")]
    pub(super) unsafe fn widen_neon(src: &[F16], dst: &mut [f32]) {
        let n = src.len();
        let mut i = 0usize;
        while i + 8 <= n {
            // SAFETY: i + 8 <= src.len() == dst.len(); the 16-byte load
            // covers 8 valid F16 lanes; alignment-free NEON memory ops.
            unsafe {
                let h8 = vld1q_u16(src.as_ptr().add(i).cast::<u16>());
                let lo = widen4_neon(vmovl_u16(vget_low_u16(h8)));
                let hi = widen4_neon(vmovl_u16(vget_high_u16(h8)));
                vst1q_f32(dst.as_mut_ptr().add(i), lo);
                vst1q_f32(dst.as_mut_ptr().add(i + 4), hi);
            }
            i += 8;
        }
        widen_scalar(&src[i..], &mut dst[i..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_simd::{force, supported_levels};

    fn edge_f32s() -> Vec<f32> {
        let mut v: Vec<f32> = vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            65504.0,
            65519.0,
            65519.5,
            65520.0,
            65536.0,
            1e30,
            -1e30,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::NAN,
            f32::MIN_POSITIVE,        // f32 min normal: flushes to zero
            f32::MIN_POSITIVE / 2.0,  // f32 subnormal
            -f32::MIN_POSITIVE / 2.0, // negative f32 subnormal
            2f32.powi(-24),
            2f32.powi(-25),
            2f32.powi(-25) * 1.0001,
            1023.0 * 2f32.powi(-24),
            2f32.powi(-14) * (1.0 - 2f32.powi(-12)),
            1.0 + 2f32.powi(-11),
            1.0 + 3.0 * 2f32.powi(-11),
            2.0 - 2f32.powi(-20),
        ];
        // NaN payload variants, including a signaling pattern.
        v.push(f32::from_bits(0x7F80_0001));
        v.push(f32::from_bits(0xFFC0_1234));
        v.push(f32::from_bits(0x7FA0_0000));
        v
    }

    #[test]
    fn vector_narrow_matches_scalar_on_edge_values() {
        // Odd length exercises the tail path at every tier.
        let mut src = edge_f32s();
        src.push(std::f32::consts::PI);
        for lvl in supported_levels() {
            let _g = force(Some(lvl));
            let mut got = vec![F16::ZERO; src.len()];
            narrow_dispatch(&src, &mut got);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(
                    got[i].0,
                    f16_bits_from_f32(s),
                    "lvl {lvl:?} src {:#010x}",
                    s.to_bits()
                );
            }
        }
    }

    #[test]
    fn vector_widen_matches_scalar_for_all_half_patterns() {
        let src: Vec<F16> = (0..=u16::MAX).map(F16).collect();
        let mut want = vec![0.0f32; src.len()];
        widen_scalar(&src, &mut want);
        for lvl in supported_levels() {
            let _g = force(Some(lvl));
            let mut got = vec![0.0f32; src.len()];
            widen_dispatch(&src, &mut got);
            for h in 0..=u16::MAX as usize {
                assert_eq!(
                    got[h].to_bits(),
                    want[h].to_bits(),
                    "lvl {lvl:?} half {h:#06x}"
                );
            }
        }
    }

    #[test]
    fn vector_narrow_matches_scalar_for_all_half_neighborhoods() {
        // Every exactly-representable half value plus the f32 values one
        // ULP either side: covers every rounding boundary class.
        let mut src = Vec::with_capacity(3 * (1 << 16));
        for h in 0..=u16::MAX {
            let f = f32_from_f16_bits(h);
            src.push(f);
            src.push(f32::from_bits(f.to_bits().wrapping_add(1)));
            src.push(f32::from_bits(f.to_bits().wrapping_sub(1)));
        }
        let mut want = vec![F16::ZERO; src.len()];
        narrow_scalar(&src, &mut want);
        for lvl in supported_levels() {
            let _g = force(Some(lvl));
            let mut got = vec![F16::ZERO; src.len()];
            narrow_dispatch(&src, &mut got);
            for i in 0..src.len() {
                assert_eq!(
                    got[i].0,
                    want[i].0,
                    "lvl {lvl:?} src {:#010x}",
                    src[i].to_bits()
                );
            }
        }
    }

    #[test]
    fn affine_matches_scalar_expression() {
        let src = edge_f32s();
        for lvl in supported_levels() {
            let _g = force(Some(lvl));
            let mut got = vec![F16::ZERO; src.len()];
            narrow_affine_dispatch(&src, 0.25, 1.5, &mut got);
            for (i, &s) in src.iter().enumerate() {
                assert_eq!(
                    got[i].0,
                    f16_bits_from_f32((s - 1.5) * 0.25),
                    "lvl {lvl:?} src {s}"
                );
            }
        }
    }
}
