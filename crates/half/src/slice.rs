//! Bulk slice conversions and byte reinterpretation for [`F16`].
//!
//! Decoded samples travel through the pipeline as `Vec<F16>`; the storage
//! and simulated-device layers treat them as raw bytes. Because [`F16`] is
//! `repr(transparent)` over `u16`, the casts here are layout-safe.
//!
//! The bulk conversions dispatch through the runtime-selected SIMD tier
//! (see the private `simd` module); every vector path is bit-exact against the
//! scalar conversions, so results never depend on the host ISA.

use crate::F16;

/// Converts a slice of `f32` to a newly allocated `Vec<F16>` with
/// round-to-nearest-even.
pub fn narrow(values: &[f32]) -> Vec<F16> {
    let mut out = vec![F16::ZERO; values.len()];
    crate::simd::narrow_dispatch(values, &mut out);
    out
}

/// Widens a slice of `F16` to a newly allocated `Vec<f32>` (exact).
pub fn widen(values: &[F16]) -> Vec<f32> {
    let mut out = vec![0.0f32; values.len()];
    crate::simd::widen_dispatch(values, &mut out);
    out
}

/// Narrows `src` into the preallocated `dst`.
///
/// # Panics
/// Panics if the lengths differ.
pub fn narrow_into(src: &[f32], dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "narrow_into length mismatch");
    crate::simd::narrow_dispatch(src, dst);
}

/// Fused `(x - offset) * scale` followed by the narrowing conversion,
/// equivalent to `F16::from_f32((x - offset) * scale)` per element
/// (bit-exact at every SIMD tier — the vector sub/mul are the same IEEE
/// single-precision operations). This is the DeepCAM `Normalize` decode
/// finish.
///
/// # Panics
/// Panics if the lengths differ.
pub fn narrow_affine_into(src: &[f32], scale: f32, offset: f32, dst: &mut [F16]) {
    assert_eq!(src.len(), dst.len(), "narrow_affine_into length mismatch");
    crate::simd::narrow_affine_dispatch(src, scale, offset, dst);
}

/// Widens `src` into the preallocated `dst`.
///
/// # Panics
/// Panics if the lengths differ.
pub fn widen_into(src: &[F16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len(), "widen_into length mismatch");
    crate::simd::widen_dispatch(src, dst);
}

/// Reinterprets a half slice as little-endian bytes (allocates; portable
/// across endianness because it serializes explicitly).
pub fn to_le_bytes(values: &[F16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 2);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses little-endian bytes into halves.
///
/// Returns `None` if the byte length is odd.
pub fn from_le_bytes(bytes: &[u8]) -> Option<Vec<F16>> {
    if !bytes.len().is_multiple_of(2) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(2)
            .map(|c| F16::from_le_bytes([c[0], c[1]]))
            .collect(),
    )
}

/// Maximum ULP distance between two half slices; `u32::MAX` on NaN or
/// length mismatch.
pub fn max_ulp_distance(a: &[F16], b: &[F16]) -> u32 {
    if a.len() != b.len() {
        return u32::MAX;
    }
    a.iter()
        .zip(b)
        .map(|(x, y)| x.ulp_distance(*y))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn narrow_widen_roundtrip() {
        let src = vec![0.0f32, 1.0, -2.5, 1000.0, 6.1e-5];
        let halves = narrow(&src);
        let back = widen(&halves);
        for (a, b) in src.iter().zip(&back) {
            assert!((a - b).abs() <= a.abs() * 0.001, "{a} vs {b}");
        }
    }

    #[test]
    fn into_variants_match_allocating() {
        let src = vec![0.5f32, 2.25, -8.0];
        let mut dst = vec![F16::ZERO; 3];
        narrow_into(&src, &mut dst);
        assert_eq!(dst, narrow(&src));
        let mut wide = vec![0.0f32; 3];
        widen_into(&dst, &mut wide);
        assert_eq!(wide, widen(&dst));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn narrow_into_length_mismatch_panics() {
        let mut dst = vec![F16::ZERO; 2];
        narrow_into(&[1.0], &mut dst);
    }

    #[test]
    fn byte_roundtrip() {
        let halves = narrow(&[1.0, -0.5, 2.72]);
        let bytes = to_le_bytes(&halves);
        assert_eq!(bytes.len(), 6);
        assert_eq!(from_le_bytes(&bytes).unwrap(), halves);
        assert!(from_le_bytes(&bytes[..5]).is_none());
    }

    #[test]
    fn max_ulp() {
        let a = narrow(&[1.0, 2.0]);
        let mut b = a.clone();
        assert_eq!(max_ulp_distance(&a, &b), 0);
        b[1] = F16(b[1].0 + 3);
        assert_eq!(max_ulp_distance(&a, &b), 3);
        assert_eq!(max_ulp_distance(&a, &a[..1]), u32::MAX);
    }
}
