//! Property tests for the binary16 implementation.

use proptest::prelude::*;
use sciml_half::slice::{narrow, narrow_affine_into, widen};
use sciml_half::{f16_bits_from_f32, f32_from_f16_bits, relative_error, F16};
use sciml_simd::{force, supported_levels};

/// Hand-picked conversion edges: the f16 subnormal boundary, the
/// overflow boundary, round-to-nearest-even tie points, and NaN
/// payload patterns. Every SIMD tier must narrow these exactly like
/// the scalar reference.
fn edge_vector() -> Vec<f32> {
    let mut v = vec![
        0.0,
        -0.0,
        1.0,
        -1.0,
        // Overflow boundary: 65504 is the max half; 65520 is the first
        // f32 that rounds (RTNE) to infinity; 65519.996 still rounds in.
        65504.0,
        65519.0,
        f32::from_bits(0x477F_EFFF), // just below 65519.996…
        65520.0,
        65536.0,
        -65520.0,
        1e30,
        -1e30,
        f32::INFINITY,
        f32::NEG_INFINITY,
        // Subnormal half range and its boundaries.
        6.103_515_6e-5,              // 2^-14: smallest normal half
        6.097_6e-5,                  // just below: subnormal result
        5.960_464_5e-8,              // 2^-24: smallest subnormal half
        2.980_232_2e-8,              // 2^-25: ties to even -> 0
        f32::from_bits(0x3300_0001), // 2^-25 + ulp: rounds up
        8.940_697e-8,                // 3 * 2^-25: ties to even -> 2^-23
        f32::MIN_POSITIVE,           // f32 normal, far below half subnormals
        f32::MIN_POSITIVE / 2.0,     // f32 subnormal -> signed zero
        -f32::MIN_POSITIVE / 2.0,
        // Ties-to-even inside the normal range: exactly halfway between
        // consecutive halves (1.0 + k * 2^-11).
        1.0 + 0.000_488_281_25,
        1.0 + 3.0 * 0.000_488_281_25,
        2048.5, // halfway between 2048 and 2049… -> even
        2049.5,
    ];
    // NaN payload patterns: quiet, signaling-looking, negative, all-ones.
    for bits in [
        0x7FC0_0000u32,
        0x7F80_0001,
        0xFFC0_1234,
        0x7FA0_0000,
        0xFFFF_FFFF,
    ] {
        v.push(f32::from_bits(bits));
    }
    v
}

/// Narrow the edge vector at every supported tier and require bit
/// equality with the scalar reference, tails included (odd length).
#[test]
fn edge_vector_narrows_identically_at_every_tier() {
    let mut vals = edge_vector();
    vals.push(0.5); // odd length -> exercises the scalar tail
    let want: Vec<u16> = vals.iter().map(|&v| f16_bits_from_f32(v)).collect();
    for lvl in supported_levels() {
        let _g = force(Some(lvl));
        let got: Vec<u16> = narrow(&vals).iter().map(|h| h.to_bits()).collect();
        assert_eq!(got, want, "tier {lvl:?}");
    }
}

proptest! {
    /// Widening then narrowing any half bit pattern is the identity
    /// (modulo NaN payload quieting).
    #[test]
    fn widen_narrow_identity(bits in any::<u16>()) {
        let f = f32_from_f16_bits(bits);
        if f.is_nan() {
            prop_assert!(f32_from_f16_bits(f16_bits_from_f32(f)).is_nan());
        } else {
            prop_assert_eq!(f16_bits_from_f32(f), bits);
        }
    }

    /// Narrowing is monotone: a <= b implies narrow(a) <= narrow(b).
    #[test]
    fn narrowing_is_monotone(a in -1e5f32..1e5, b in -1e5f32..1e5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let l = F16::from_f32(lo).to_f32();
        let h = F16::from_f32(hi).to_f32();
        prop_assert!(l <= h, "{lo} -> {l}, {hi} -> {h}");
    }

    /// Conversion error is within half a ULP for the normal range
    /// (relative error bounded by 2^-11).
    #[test]
    fn conversion_error_bound(mag in 6.2e-5f32..65504.0, negate in any::<bool>()) {
        let v = if negate { -mag } else { mag };
        let h = F16::from_f32(v);
        prop_assert!(relative_error(h.to_f32(), v) <= 2f32.powi(-11) * 1.0001,
            "{v} -> {h:?}");
    }

    /// Narrowing never produces NaN from a finite input.
    #[test]
    fn finite_in_never_nan_out(v in any::<f32>()) {
        prop_assume!(v.is_finite());
        prop_assert!(!F16::from_f32(v).is_nan());
    }

    /// Sign is always preserved exactly.
    #[test]
    fn sign_preserved(v in any::<f32>()) {
        prop_assume!(!v.is_nan());
        prop_assert_eq!(F16::from_f32(v).is_sign_negative(), v.is_sign_negative());
    }

    /// Widened addition then rounding equals F16 Add operator.
    #[test]
    fn add_matches_widen_scheme(a in -1e3f32..1e3, b in -1e3f32..1e3) {
        let ha = F16::from_f32(a);
        let hb = F16::from_f32(b);
        let expect = F16::from_f32(ha.to_f32() + hb.to_f32());
        prop_assert_eq!(ha + hb, expect);
    }

    /// Byte serialization round-trips arbitrary half vectors.
    #[test]
    fn slice_byte_roundtrip(vals in prop::collection::vec(any::<u16>(), 0..256)) {
        let halves: Vec<F16> = vals.iter().map(|&b| F16::from_bits(b)).collect();
        let bytes = sciml_half::slice::to_le_bytes(&halves);
        prop_assert_eq!(sciml_half::slice::from_le_bytes(&bytes).unwrap(), halves);
    }

    /// Bulk narrowing is bit-identical to the scalar reference at every
    /// SIMD tier, over arbitrary f32 bit patterns (NaN payloads,
    /// subnormals, infinities) and lengths that leave vector tails.
    #[test]
    fn narrow_matches_scalar_at_every_tier(
        bits in prop::collection::vec(any::<u32>(), 0..67),
    ) {
        let vals: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let want: Vec<u16> = vals.iter().map(|&v| f16_bits_from_f32(v)).collect();
        for lvl in supported_levels() {
            let _g = force(Some(lvl));
            let got: Vec<u16> = narrow(&vals).iter().map(|h| h.to_bits()).collect();
            prop_assert_eq!(&got, &want, "tier {:?}", lvl);
        }
    }

    /// Bulk widening is bit-identical to the scalar reference at every
    /// SIMD tier for arbitrary half patterns, NaN payloads included.
    #[test]
    fn widen_matches_scalar_at_every_tier(
        bits in prop::collection::vec(any::<u16>(), 0..67),
    ) {
        let halves: Vec<F16> = bits.iter().map(|&b| F16::from_bits(b)).collect();
        let want: Vec<u32> = bits.iter().map(|&b| f32_from_f16_bits(b).to_bits()).collect();
        for lvl in supported_levels() {
            let _g = force(Some(lvl));
            let got: Vec<u32> = widen(&halves).iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(&got, &want, "tier {:?}", lvl);
        }
    }

    /// The fused affine narrow equals the per-element scalar expression
    /// `F16::from_f32((x - offset) * scale)` bit for bit at every tier.
    #[test]
    fn affine_narrow_matches_scalar_at_every_tier(
        bits in prop::collection::vec(any::<u32>(), 0..67),
        scale in -16f32..16.0,
        offset in -1000f32..1000.0,
    ) {
        let vals: Vec<f32> = bits.iter().map(|&b| f32::from_bits(b)).collect();
        let want: Vec<u16> = vals
            .iter()
            .map(|&v| f16_bits_from_f32((v - offset) * scale))
            .collect();
        for lvl in supported_levels() {
            let _g = force(Some(lvl));
            let mut dst = vec![F16::ZERO; vals.len()];
            narrow_affine_into(&vals, scale, offset, &mut dst);
            let got: Vec<u16> = dst.iter().map(|h| h.to_bits()).collect();
            prop_assert_eq!(&got, &want, "tier {:?}", lvl);
        }
    }
}
