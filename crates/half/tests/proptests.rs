//! Property tests for the binary16 implementation.

use proptest::prelude::*;
use sciml_half::{f16_bits_from_f32, f32_from_f16_bits, relative_error, F16};

proptest! {
    /// Widening then narrowing any half bit pattern is the identity
    /// (modulo NaN payload quieting).
    #[test]
    fn widen_narrow_identity(bits in any::<u16>()) {
        let f = f32_from_f16_bits(bits);
        if f.is_nan() {
            prop_assert!(f32_from_f16_bits(f16_bits_from_f32(f)).is_nan());
        } else {
            prop_assert_eq!(f16_bits_from_f32(f), bits);
        }
    }

    /// Narrowing is monotone: a <= b implies narrow(a) <= narrow(b).
    #[test]
    fn narrowing_is_monotone(a in -1e5f32..1e5, b in -1e5f32..1e5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let l = F16::from_f32(lo).to_f32();
        let h = F16::from_f32(hi).to_f32();
        prop_assert!(l <= h, "{lo} -> {l}, {hi} -> {h}");
    }

    /// Conversion error is within half a ULP for the normal range
    /// (relative error bounded by 2^-11).
    #[test]
    fn conversion_error_bound(mag in 6.2e-5f32..65504.0, negate in any::<bool>()) {
        let v = if negate { -mag } else { mag };
        let h = F16::from_f32(v);
        prop_assert!(relative_error(h.to_f32(), v) <= 2f32.powi(-11) * 1.0001,
            "{v} -> {h:?}");
    }

    /// Narrowing never produces NaN from a finite input.
    #[test]
    fn finite_in_never_nan_out(v in any::<f32>()) {
        prop_assume!(v.is_finite());
        prop_assert!(!F16::from_f32(v).is_nan());
    }

    /// Sign is always preserved exactly.
    #[test]
    fn sign_preserved(v in any::<f32>()) {
        prop_assume!(!v.is_nan());
        prop_assert_eq!(F16::from_f32(v).is_sign_negative(), v.is_sign_negative());
    }

    /// Widened addition then rounding equals F16 Add operator.
    #[test]
    fn add_matches_widen_scheme(a in -1e3f32..1e3, b in -1e3f32..1e3) {
        let ha = F16::from_f32(a);
        let hb = F16::from_f32(b);
        let expect = F16::from_f32(ha.to_f32() + hb.to_f32());
        prop_assert_eq!(ha + hb, expect);
    }

    /// Byte serialization round-trips arbitrary half vectors.
    #[test]
    fn slice_byte_roundtrip(vals in prop::collection::vec(any::<u16>(), 0..256)) {
        let halves: Vec<F16> = vals.iter().map(|&b| F16::from_bits(b)).collect();
        let bytes = sciml_half::slice::to_le_bytes(&halves);
        prop_assert_eq!(sciml_half::slice::from_le_bytes(&bytes).unwrap(), halves);
    }
}
