//! Layers with hand-written backprop.
//!
//! Every layer caches what it needs during `forward` and consumes it in
//! `backward`. Shapes are batched: the leading dimension is always the
//! batch. Convolutions are "valid" padding, stride 1; pooling is 2×
//! non-overlapping max.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rayon::prelude::*;

/// A differentiable layer.
pub trait Layer: Send {
    /// Forward pass; caches activations needed by backward.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Backward pass for the most recent forward; returns grad wrt input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits (parameter, gradient) pairs for the optimizer.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor));
}

/// A sequential stack of layers.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Builds from boxed layers.
    pub fn new(layers: Vec<Box<dyn Layer>>) -> Self {
        Self { layers }
    }

    /// Forward through all layers.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        for l in &mut self.layers {
            x = l.forward(&x);
        }
        x
    }

    /// Backward through all layers.
    pub fn backward(&mut self, grad: &Tensor) {
        let mut g = grad.clone();
        for l in self.layers.iter_mut().rev() {
            g = l.backward(&g);
        }
    }

    /// Visits every parameter of the stack.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    /// Total trainable parameters.
    pub fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p, _| n += p.len());
        n
    }
}

// ---------------------------------------------------------------------

/// Fully connected layer: `y = x W^T + b` with `x: [B, in]`.
pub struct Dense {
    w: Tensor, // [out, in]
    b: Tensor, // [out]
    gw: Tensor,
    gb: Tensor,
    input: Option<Tensor>,
}

impl Dense {
    /// New dense layer with Kaiming init.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Self {
            w: Tensor::kaiming(&[out_dim, in_dim], in_dim, rng),
            b: Tensor::zeros(&[out_dim]),
            gw: Tensor::zeros(&[out_dim, in_dim]),
            gb: Tensor::zeros(&[out_dim]),
            input: None,
        }
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let batch = input.shape[0];
        let in_dim = self.w.shape[1];
        let out_dim = self.w.shape[0];
        debug_assert_eq!(input.len(), batch * in_dim, "dense input shape");
        let mut out = Tensor::zeros(&[batch, out_dim]);
        out.data
            .par_chunks_mut(out_dim)
            .zip(input.data.par_chunks(in_dim))
            .for_each(|(orow, xrow)| {
                for (o, (wrow, &bias)) in orow
                    .iter_mut()
                    .zip(self.w.data.chunks(in_dim).zip(&self.b.data))
                {
                    let mut acc = bias;
                    for (w, x) in wrow.iter().zip(xrow) {
                        acc += w * x;
                    }
                    *o = acc;
                }
            });
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.input.take().expect("backward before forward");
        let batch = input.shape[0];
        let in_dim = self.w.shape[1];
        let out_dim = self.w.shape[0];
        // Parameter grads.
        for (xrow, grow) in input.data.chunks(in_dim).zip(grad_out.data.chunks(out_dim)) {
            for (o, &g) in grow.iter().enumerate() {
                self.gb.data[o] += g;
                let wrow = &mut self.gw.data[o * in_dim..(o + 1) * in_dim];
                for (wg, &x) in wrow.iter_mut().zip(xrow) {
                    *wg += g * x;
                }
            }
        }
        // Input grad: g W.
        let mut gin = Tensor::zeros(&[batch, in_dim]);
        gin.data
            .par_chunks_mut(in_dim)
            .zip(grad_out.data.par_chunks(out_dim))
            .for_each(|(gi, grow)| {
                for (o, &g) in grow.iter().enumerate() {
                    let wrow = &self.w.data[o * in_dim..(o + 1) * in_dim];
                    for (gi_v, &w) in gi.iter_mut().zip(wrow) {
                        *gi_v += g * w;
                    }
                }
            });
        gin
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

// ---------------------------------------------------------------------

/// ReLU activation.
#[derive(Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// New ReLU.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.mask = input.data.iter().map(|&v| v > 0.0).collect();
        Tensor {
            shape: input.shape.clone(),
            data: input.data.iter().map(|&v| v.max(0.0)).collect(),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        Tensor {
            shape: grad_out.shape.clone(),
            data: grad_out
                .data
                .iter()
                .zip(&self.mask)
                .map(|(&g, &m)| if m { g } else { 0.0 })
                .collect(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
}

// ---------------------------------------------------------------------

/// Flatten everything but the batch dimension.
#[derive(Default)]
pub struct Flatten {
    in_shape: Vec<usize>,
}

impl Flatten {
    /// New flatten layer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.in_shape = input.shape.clone();
        let batch = input.shape[0];
        let rest = input.len() / batch;
        input.clone().reshape(&[batch, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone().reshape(&self.in_shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
}

// ---------------------------------------------------------------------

/// Inverted dropout with its own deterministic RNG stream.
///
/// The paper attributes part of CosmoFlow's run-to-run convergence
/// variance to "internal DNN processing, such as random weight
/// drop-offs" (§VIII-A); this layer reproduces that source of
/// stochasticity under seed control so base-vs-decoded comparisons can
/// hold it fixed or vary it deliberately.
pub struct Dropout {
    /// Probability of zeroing an activation.
    p: f32,
    rng: StdRng,
    mask: Vec<f32>,
    /// Training mode: when false the layer is the identity.
    pub training: bool,
}

impl Dropout {
    /// New dropout layer with drop probability `p` and its own seed.
    pub fn new(p: f32, seed: u64) -> Self {
        use rand::SeedableRng;
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1)");
        Self {
            p,
            rng: StdRng::seed_from_u64(seed),
            mask: Vec::new(),
            training: true,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.mask.clear();
            return input.clone();
        }
        use rand::Rng;
        let keep = 1.0 - self.p;
        self.mask = (0..input.len())
            .map(|_| {
                if self.rng.gen::<f32>() < keep {
                    1.0 / keep // inverted scaling keeps expectations equal
                } else {
                    0.0
                }
            })
            .collect();
        Tensor {
            shape: input.shape.clone(),
            data: input
                .data
                .iter()
                .zip(&self.mask)
                .map(|(&v, &m)| v * m)
                .collect(),
        }
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        if self.mask.is_empty() {
            return grad_out.clone();
        }
        Tensor {
            shape: grad_out.shape.clone(),
            data: grad_out
                .data
                .iter()
                .zip(&self.mask)
                .map(|(&g, &m)| g * m)
                .collect(),
        }
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
}

// ---------------------------------------------------------------------

/// 2-D convolution, valid padding, stride 1. Input `[B, C, H, W]`,
/// kernels `[O, C, K, K]`, output `[B, O, H-K+1, W-K+1]`.
pub struct Conv2d {
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    k: usize,
    input: Option<Tensor>,
}

impl Conv2d {
    /// New conv layer.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut StdRng) -> Self {
        let fan_in = in_ch * k * k;
        Self {
            w: Tensor::kaiming(&[out_ch, in_ch, k, k], fan_in, rng),
            b: Tensor::zeros(&[out_ch]),
            gw: Tensor::zeros(&[out_ch, in_ch, k, k]),
            gb: Tensor::zeros(&[out_ch]),
            k,
            input: None,
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (b, c, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
        );
        let o = self.w.shape[0];
        let k = self.k;
        let (oh, ow) = (h - k + 1, w - k + 1);
        let mut out = Tensor::zeros(&[b, o, oh, ow]);
        let in_plane = h * w;
        let out_plane = oh * ow;
        out.data
            .par_chunks_mut(o * out_plane)
            .zip(input.data.par_chunks(c * in_plane))
            .for_each(|(ob, xb)| {
                for oc in 0..o {
                    let bias = self.b.data[oc];
                    let dst = &mut ob[oc * out_plane..(oc + 1) * out_plane];
                    dst.fill(bias);
                    for ic in 0..c {
                        let src = &xb[ic * in_plane..(ic + 1) * in_plane];
                        let ker =
                            &self.w.data[((oc * c + ic) * k * k)..((oc * c + ic + 1) * k * k)];
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut acc = 0.0;
                                for ky in 0..k {
                                    let row = &src[(oy + ky) * w + ox..(oy + ky) * w + ox + k];
                                    let krow = &ker[ky * k..ky * k + k];
                                    for (s, kv) in row.iter().zip(krow) {
                                        acc += s * kv;
                                    }
                                }
                                dst[oy * ow + ox] += acc;
                            }
                        }
                    }
                }
            });
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.input.take().expect("backward before forward");
        let (b, c, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
        );
        let o = self.w.shape[0];
        let k = self.k;
        let (oh, ow) = (h - k + 1, w - k + 1);
        let in_plane = h * w;
        let out_plane = oh * ow;
        let mut gin = Tensor::zeros(&input.shape);

        for bi in 0..b {
            let xb = &input.data[bi * c * in_plane..(bi + 1) * c * in_plane];
            let gb_ = &grad_out.data[bi * o * out_plane..(bi + 1) * o * out_plane];
            let gi = &mut gin.data[bi * c * in_plane..(bi + 1) * c * in_plane];
            for oc in 0..o {
                let gplane = &gb_[oc * out_plane..(oc + 1) * out_plane];
                self.gb.data[oc] += gplane.iter().sum::<f32>();
                for ic in 0..c {
                    let src = &xb[ic * in_plane..(ic + 1) * in_plane];
                    let kbase = (oc * c + ic) * k * k;
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = gplane[oy * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            for ky in 0..k {
                                for kx in 0..k {
                                    self.gw.data[kbase + ky * k + kx] +=
                                        g * src[(oy + ky) * w + ox + kx];
                                    gi[ic * in_plane + (oy + ky) * w + ox + kx] +=
                                        g * self.w.data[kbase + ky * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
        gin
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

// ---------------------------------------------------------------------

/// 3-D convolution, valid padding, stride 1. Input `[B, C, D, H, W]`,
/// kernels `[O, C, K, K, K]`.
pub struct Conv3d {
    w: Tensor,
    b: Tensor,
    gw: Tensor,
    gb: Tensor,
    k: usize,
    input: Option<Tensor>,
}

impl Conv3d {
    /// New 3-D conv layer.
    pub fn new(in_ch: usize, out_ch: usize, k: usize, rng: &mut StdRng) -> Self {
        let fan_in = in_ch * k * k * k;
        Self {
            w: Tensor::kaiming(&[out_ch, in_ch, k, k, k], fan_in, rng),
            b: Tensor::zeros(&[out_ch]),
            gw: Tensor::zeros(&[out_ch, in_ch, k, k, k]),
            gb: Tensor::zeros(&[out_ch]),
            k,
            input: None,
        }
    }
}

impl Layer for Conv3d {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (b, c, d, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
            input.shape[4],
        );
        let o = self.w.shape[0];
        let k = self.k;
        let (od, oh, ow) = (d - k + 1, h - k + 1, w - k + 1);
        let in_vol = d * h * w;
        let out_vol = od * oh * ow;
        let mut out = Tensor::zeros(&[b, o, od, oh, ow]);
        out.data
            .par_chunks_mut(o * out_vol)
            .zip(input.data.par_chunks(c * in_vol))
            .for_each(|(ob, xb)| {
                for oc in 0..o {
                    let dst = &mut ob[oc * out_vol..(oc + 1) * out_vol];
                    dst.fill(self.b.data[oc]);
                    for ic in 0..c {
                        let src = &xb[ic * in_vol..(ic + 1) * in_vol];
                        let kvol = k * k * k;
                        let ker = &self.w.data[(oc * c + ic) * kvol..(oc * c + ic + 1) * kvol];
                        for oz in 0..od {
                            for oy in 0..oh {
                                for ox in 0..ow {
                                    let mut acc = 0.0;
                                    for kz in 0..k {
                                        for ky in 0..k {
                                            let base = ((oz + kz) * h + oy + ky) * w + ox;
                                            let krow =
                                                &ker[(kz * k + ky) * k..(kz * k + ky) * k + k];
                                            let srow = &src[base..base + k];
                                            for (s, kv) in srow.iter().zip(krow) {
                                                acc += s * kv;
                                            }
                                        }
                                    }
                                    dst[(oz * oh + oy) * ow + ox] += acc;
                                }
                            }
                        }
                    }
                }
            });
        self.input = Some(input.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self.input.take().expect("backward before forward");
        let (b, c, d, h, w) = (
            input.shape[0],
            input.shape[1],
            input.shape[2],
            input.shape[3],
            input.shape[4],
        );
        let o = self.w.shape[0];
        let k = self.k;
        let (od, oh, ow) = (d - k + 1, h - k + 1, w - k + 1);
        let in_vol = d * h * w;
        let out_vol = od * oh * ow;
        let kvol = k * k * k;
        let mut gin = Tensor::zeros(&input.shape);
        for bi in 0..b {
            let xb = &input.data[bi * c * in_vol..(bi + 1) * c * in_vol];
            let gob = &grad_out.data[bi * o * out_vol..(bi + 1) * o * out_vol];
            let gi = &mut gin.data[bi * c * in_vol..(bi + 1) * c * in_vol];
            for oc in 0..o {
                let gplane = &gob[oc * out_vol..(oc + 1) * out_vol];
                self.gb.data[oc] += gplane.iter().sum::<f32>();
                for ic in 0..c {
                    let src = &xb[ic * in_vol..(ic + 1) * in_vol];
                    let kbase = (oc * c + ic) * kvol;
                    for oz in 0..od {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let g = gplane[(oz * oh + oy) * ow + ox];
                                if g == 0.0 {
                                    continue;
                                }
                                for kz in 0..k {
                                    for ky in 0..k {
                                        for kx in 0..k {
                                            let si = ((oz + kz) * h + oy + ky) * w + ox + kx;
                                            let ki = kbase + (kz * k + ky) * k + kx;
                                            self.gw.data[ki] += g * src[si];
                                            gi[ic * in_vol + si] += g * self.w.data[ki];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        gin
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {
        f(&mut self.w, &mut self.gw);
        f(&mut self.b, &mut self.gb);
    }
}

// ---------------------------------------------------------------------

/// 2× max pooling over the trailing `DIMS` spatial dimensions
/// (`DIMS = 2` for images, `3` for volumes). Truncates odd extents.
pub struct MaxPool<const DIMS: usize> {
    in_shape: Vec<usize>,
    argmax: Vec<usize>,
}

impl<const DIMS: usize> MaxPool<DIMS> {
    /// New pooling layer.
    pub fn new() -> Self {
        Self {
            in_shape: Vec::new(),
            argmax: Vec::new(),
        }
    }
}

impl<const DIMS: usize> Default for MaxPool<DIMS> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const DIMS: usize> Layer for MaxPool<DIMS> {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let nd = input.shape.len();
        assert!(nd > DIMS, "maxpool needs batch + spatial dims");
        self.in_shape = input.shape.clone();
        let spatial = &input.shape[nd - DIMS..];
        let lead: usize = input.shape[..nd - DIMS].iter().product();
        let out_spatial: Vec<usize> = spatial.iter().map(|&s| s / 2).collect();
        let mut out_shape = input.shape[..nd - DIMS].to_vec();
        out_shape.extend_from_slice(&out_spatial);
        let in_vol: usize = spatial.iter().product();
        let out_vol: usize = out_spatial.iter().product();
        let mut out = Tensor::zeros(&out_shape);
        self.argmax = vec![0; lead * out_vol];

        // Iterate output cells; scan the 2^DIMS window.
        for l in 0..lead {
            let src = &input.data[l * in_vol..(l + 1) * in_vol];
            for oc in 0..out_vol {
                // Decompose oc into coordinates.
                let mut rem = oc;
                let mut coord = [0usize; 8];
                for dim in (0..DIMS).rev() {
                    coord[dim] = rem % out_spatial[dim];
                    rem /= out_spatial[dim];
                }
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for corner in 0..(1usize << DIMS) {
                    let mut idx = 0usize;
                    for (dim, &os) in out_spatial.iter().enumerate().take(DIMS) {
                        let _ = os;
                        let c = coord[dim] * 2 + ((corner >> dim) & 1);
                        idx = idx * spatial[dim] + c;
                    }
                    if src[idx] > best {
                        best = src[idx];
                        best_idx = idx;
                    }
                }
                out.data[l * out_vol + oc] = best;
                self.argmax[l * out_vol + oc] = best_idx;
            }
        }
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut gin = Tensor::zeros(&self.in_shape);
        let nd = self.in_shape.len();
        let spatial: usize = self.in_shape[nd - DIMS..].iter().product();
        let lead: usize = self.in_shape[..nd - DIMS].iter().product();
        let out_vol = grad_out.len() / lead;
        for l in 0..lead {
            for oc in 0..out_vol {
                let idx = self.argmax[l * out_vol + oc];
                gin.data[l * spatial + idx] += grad_out.data[l * out_vol + oc];
            }
        }
        gin
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Tensor, &mut Tensor)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Numerical gradient check of a layer's input gradient.
    fn grad_check(layer: &mut dyn Layer, input: &Tensor, tol: f32) {
        let out = layer.forward(input);
        // Loss = sum(out); dL/dout = 1.
        let ones = Tensor::from_vec(&out.shape, vec![1.0; out.len()]);
        let gin = layer.backward(&ones);
        let eps = 1e-2f32;
        for probe in [0, input.len() / 2, input.len() - 1] {
            let mut plus = input.clone();
            plus.data[probe] += eps;
            let mut minus = input.clone();
            minus.data[probe] -= eps;
            let lp: f32 = layer.forward(&plus).data.iter().sum();
            let _ = layer.backward(&Tensor::from_vec(&out.shape, vec![1.0; out.len()]));
            let lm: f32 = layer.forward(&minus).data.iter().sum();
            let _ = layer.backward(&Tensor::from_vec(&out.shape, vec![1.0; out.len()]));
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - gin.data[probe]).abs() <= tol * (1.0 + num.abs()),
                "probe {probe}: numeric {num} vs analytic {}",
                gin.data[probe]
            );
        }
    }

    #[test]
    fn dense_forward_shapes_and_grad() {
        let mut rng = Tensor::rng(1);
        let mut d = Dense::new(6, 4, &mut rng);
        let x = Tensor::kaiming(&[3, 6], 6, &mut rng);
        let y = d.forward(&x);
        assert_eq!(y.shape, vec![3, 4]);
        grad_check(&mut d, &x, 1e-2);
    }

    #[test]
    fn dense_accumulates_param_grads() {
        let mut rng = Tensor::rng(2);
        let mut d = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]);
        let y = d.forward(&x);
        d.backward(&Tensor::from_vec(&y.shape, vec![1.0, 1.0]));
        let mut saw = 0;
        d.visit_params(&mut |_, g| {
            saw += 1;
            assert!(g.data.iter().any(|&v| v != 0.0));
        });
        assert_eq!(saw, 2);
    }

    #[test]
    fn relu_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[1, 4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = r.forward(&x);
        assert_eq!(y.data, vec![0.0, 2.0, 0.0, 4.0]);
        let g = r.backward(&Tensor::from_vec(&[1, 4], vec![1.0; 4]));
        assert_eq!(g.data, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4]);
        let y = f.forward(&x);
        assert_eq!(y.shape, vec![2, 12]);
        let g = f.backward(&y);
        assert_eq!(g.shape, vec![2, 3, 4]);
    }

    #[test]
    fn conv2d_shapes_and_grad() {
        let mut rng = Tensor::rng(3);
        let mut c = Conv2d::new(2, 3, 3, &mut rng);
        let x = Tensor::kaiming(&[2, 2, 6, 6], 4, &mut rng);
        let y = c.forward(&x);
        assert_eq!(y.shape, vec![2, 3, 4, 4]);
        grad_check(&mut c, &x, 2e-2);
    }

    #[test]
    fn conv3d_shapes_and_grad() {
        let mut rng = Tensor::rng(4);
        let mut c = Conv3d::new(2, 2, 2, &mut rng);
        let x = Tensor::kaiming(&[1, 2, 4, 4, 4], 8, &mut rng);
        let y = c.forward(&x);
        assert_eq!(y.shape, vec![1, 2, 3, 3, 3]);
        grad_check(&mut c, &x, 2e-2);
    }

    #[test]
    fn maxpool2_forward_and_routing() {
        let mut p = MaxPool::<2>::new();
        let x = Tensor::from_vec(&[1, 1, 2, 4], vec![1.0, 5.0, 2.0, 0.0, 3.0, 4.0, 1.0, 9.0]);
        let y = p.forward(&x);
        assert_eq!(y.shape, vec![1, 1, 1, 2]);
        assert_eq!(y.data, vec![5.0, 9.0]);
        let g = p.backward(&Tensor::from_vec(&[1, 1, 1, 2], vec![1.0, 2.0]));
        assert_eq!(g.data, vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn maxpool3_shapes() {
        let mut p = MaxPool::<3>::new();
        let x = Tensor::kaiming(&[2, 3, 4, 4, 4], 10, &mut Tensor::rng(5));
        let y = p.forward(&x);
        assert_eq!(y.shape, vec![2, 3, 2, 2, 2]);
        let g = p.backward(&y);
        assert_eq!(g.shape, x.shape);
    }

    #[test]
    fn dropout_scales_and_masks_deterministically() {
        let mut d = Dropout::new(0.5, 42);
        let x = Tensor::from_vec(&[1, 8], vec![1.0; 8]);
        let y = d.forward(&x);
        // Inverted dropout: survivors are scaled by 1/keep = 2.0.
        assert!(y.data.iter().all(|&v| v == 0.0 || v == 2.0));
        assert!(y.data.contains(&0.0));
        assert!(y.data.contains(&2.0));
        // Gradient routes through the same mask.
        let g = d.backward(&Tensor::from_vec(&[1, 8], vec![1.0; 8]));
        assert_eq!(g.data, y.data);
        // Same seed reproduces the same masks.
        let mut d2 = Dropout::new(0.5, 42);
        assert_eq!(d2.forward(&x).data, y.data);
    }

    #[test]
    fn dropout_eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        d.training = false;
        let x = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(d.forward(&x), x);
        let g = Tensor::from_vec(&[2, 2], vec![0.5; 4]);
        assert_eq!(d.backward(&g), g);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let mut d = Dropout::new(0.3, 7);
        let x = Tensor::from_vec(&[1, 10_000], vec![1.0; 10_000]);
        let y = d.forward(&x);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "{mean}");
    }

    #[test]
    fn sequential_composes_and_counts_params() {
        let mut rng = Tensor::rng(6);
        let mut net = Sequential::new(vec![
            Box::new(Dense::new(8, 4, &mut rng)),
            Box::new(Relu::new()),
            Box::new(Dense::new(4, 2, &mut rng)),
        ]);
        let x = Tensor::kaiming(&[5, 8], 8, &mut rng);
        let y = net.forward(&x);
        assert_eq!(y.shape, vec![5, 2]);
        net.backward(&Tensor::from_vec(&y.shape, vec![1.0; y.len()]));
        assert_eq!(net.param_count(), 8 * 4 + 4 + 4 * 2 + 2);
    }
}
