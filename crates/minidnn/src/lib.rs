//! Minimal CPU deep-learning framework for the convergence experiments.
//!
//! The paper's Figs. 6–7 compare training-loss trajectories when the
//! model is fed FP32 baseline samples versus FP16 decoded samples. The
//! claim under test is *statistical*: the decoders preserve convergence.
//! Reproducing it does not require TensorFlow — it requires training the
//! same optimizer on the same schedule over both input paths. This crate
//! provides exactly that at laptop scale:
//!
//! * [`tensor`] — shaped f32 buffers with the few ops training needs;
//! * [`layers`] — Dense, Conv2d, Conv3d, ReLU, MaxPool, Flatten with
//!   hand-written backprop, and [`layers::Sequential`] to compose them;
//! * [`loss`] — MSE (CosmoFlow's parameter regression) and softmax
//!   cross-entropy over pixels (DeepCAM's segmentation);
//! * [`optim`] — SGD with momentum and Adam;
//! * [`models`] — the scaled-down CosmoFlow and DeepCAM networks;
//! * [`train`] — the training loop with a fixed learning schedule and
//!   FP32/FP16 input paths.
//!
//! Determinism: every weight init and shuffle takes an explicit seed, so
//! base-vs-decoded runs differ *only* in their input bytes.

pub mod layers;
pub mod loss;
pub mod metrics;
pub mod models;
pub mod optim;
pub mod schedule;
pub mod telemetry;
pub mod tensor;
pub mod train;

pub use telemetry::TrainTelemetry;
pub use tensor::Tensor;

/// Input numeric path: the baseline feeds FP32 samples, the decoded path
/// feeds FP16 (widened at the framework boundary, as mixed-precision
/// engines do).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputPath {
    /// FP32 samples straight from storage.
    Fp32Base,
    /// FP16 samples produced by a decoder plugin.
    Fp16Decoded,
}
