//! Loss functions: value + gradient wrt predictions.

use crate::tensor::Tensor;

/// Mean squared error over all elements (CosmoFlow regression).
///
/// Returns `(loss, dL/dpred)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape, target.shape, "mse shape mismatch");
    let n = pred.len() as f32;
    let mut grad = Tensor::zeros(&pred.shape);
    let mut loss = 0.0;
    for ((g, &p), &t) in grad.data.iter_mut().zip(&pred.data).zip(&target.data) {
        let d = p - t;
        loss += d * d;
        *g = 2.0 * d / n;
    }
    (loss / n, grad)
}

/// Pixel-wise softmax cross-entropy (DeepCAM segmentation).
///
/// `logits: [B, CLASSES, P]`, `labels: [B, P]` of class ids.
/// Returns `(mean loss, dL/dlogits)`.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[u8], classes: usize) -> (f32, Tensor) {
    let b = logits.shape[0];
    debug_assert_eq!(logits.shape[1], classes);
    let p = logits.len() / (b * classes);
    assert_eq!(labels.len(), b * p, "label count mismatch");
    let mut grad = Tensor::zeros(&logits.shape);
    let mut loss = 0.0f64;
    for bi in 0..b {
        for pi in 0..p {
            // Collect logits of this pixel across classes.
            let mut maxv = f32::NEG_INFINITY;
            for c in 0..classes {
                maxv = maxv.max(logits.data[(bi * classes + c) * p + pi]);
            }
            let mut denom = 0.0f32;
            for c in 0..classes {
                denom += (logits.data[(bi * classes + c) * p + pi] - maxv).exp();
            }
            let label = labels[bi * p + pi] as usize;
            debug_assert!(label < classes, "label out of range");
            let logit_y = logits.data[(bi * classes + label) * p + pi];
            loss += (denom.ln() - (logit_y - maxv)) as f64;
            let scale = 1.0 / (b * p) as f32;
            for c in 0..classes {
                let soft = (logits.data[(bi * classes + c) * p + pi] - maxv).exp() / denom;
                let indicator = if c == label { 1.0 } else { 0.0 };
                grad.data[(bi * classes + c) * p + pi] = (soft - indicator) * scale;
            }
        }
    }
    ((loss / (b * p) as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_perfect_prediction() {
        let p = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let (l, g) = mse(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mse_value_and_gradient() {
        let p = Tensor::from_vec(&[1, 2], vec![1.0, 3.0]);
        let t = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let (l, g) = mse(&p, &t);
        assert!((l - 5.0).abs() < 1e-6);
        assert_eq!(g.data, vec![1.0, 3.0]);
    }

    #[test]
    fn cross_entropy_uniform_logits() {
        // 3 classes, uniform logits => loss = ln(3), grads push toward label.
        let logits = Tensor::zeros(&[1, 3, 2]);
        let labels = vec![0u8, 2u8];
        let (l, g) = softmax_cross_entropy(&logits, &labels, 3);
        assert!((l - 3f32.ln()).abs() < 1e-5);
        // Gradient at label class is negative, others positive.
        assert!(g.data[0] < 0.0); // class 0, pixel 0 (label 0)
        assert!(g.data[2] > 0.0); // class 1, pixel 0
        assert!(g.data[5] < 0.0); // class 2, pixel 1 (label 2)
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut logits = Tensor::zeros(&[1, 2, 1]);
        logits.data[0] = 10.0; // class 0 strongly predicted
        let (l_correct, _) = softmax_cross_entropy(&logits, &[0], 2);
        let (l_wrong, _) = softmax_cross_entropy(&logits, &[1], 2);
        assert!(l_correct < 1e-3);
        assert!(l_wrong > 5.0);
    }

    #[test]
    fn cross_entropy_gradient_is_numerically_correct() {
        let logits = Tensor::from_vec(&[1, 3, 1], vec![0.5, -0.2, 0.1]);
        let labels = vec![1u8];
        let (_, g) = softmax_cross_entropy(&logits, &labels, 3);
        let eps = 1e-3;
        for i in 0..3 {
            let mut lp = logits.clone();
            lp.data[i] += eps;
            let mut lm = logits.clone();
            lm.data[i] -= eps;
            let (vp, _) = softmax_cross_entropy(&lp, &labels, 3);
            let (vm, _) = softmax_cross_entropy(&lm, &labels, 3);
            let num = (vp - vm) / (2.0 * eps);
            assert!(
                (num - g.data[i]).abs() < 1e-3,
                "i={i}: {num} vs {}",
                g.data[i]
            );
        }
    }
}
