//! Quality metrics beyond the loss: mean absolute error for the
//! CosmoFlow regression and per-class intersection-over-union for the
//! DeepCAM segmentation (the benchmark's target metric).

use crate::layers::Sequential;
use crate::tensor::Tensor;

/// Mean absolute error per regression target dimension.
pub fn regression_mae(
    net: &mut Sequential,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    labels: &[[f32; 4]],
) -> [f32; 4] {
    let mut sums = [0f64; 4];
    for (x, y) in samples.iter().zip(labels) {
        let mut shape = vec![1usize];
        shape.extend_from_slice(input_shape);
        let pred = net.forward(&Tensor::from_vec(&shape, x.clone()));
        for d in 0..4 {
            sums[d] += (pred.data[d] - y[d]).abs() as f64;
        }
    }
    let n = samples.len().max(1) as f64;
    [
        (sums[0] / n) as f32,
        (sums[1] / n) as f32,
        (sums[2] / n) as f32,
        (sums[3] / n) as f32,
    ]
}

/// Argmax class per pixel from `[B, classes, P]` logits.
pub fn predict_classes(logits: &Tensor, classes: usize) -> Vec<u8> {
    let b = logits.shape[0];
    let p = logits.len() / (b * classes);
    let mut out = Vec::with_capacity(b * p);
    for bi in 0..b {
        for pi in 0..p {
            let mut best = 0usize;
            let mut best_v = f32::NEG_INFINITY;
            for c in 0..classes {
                let v = logits.data[(bi * classes + c) * p + pi];
                if v > best_v {
                    best_v = v;
                    best = c;
                }
            }
            out.push(best as u8);
        }
    }
    out
}

/// Per-class IoU between predictions and ground truth.
///
/// Classes absent from both prediction and truth get IoU = NaN (skip in
/// means); the DeepCAM benchmark reports the mean over present classes.
pub fn iou_per_class(pred: &[u8], truth: &[u8], classes: usize) -> Vec<f32> {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    let mut inter = vec![0u64; classes];
    let mut union = vec![0u64; classes];
    for (&p, &t) in pred.iter().zip(truth) {
        let (p, t) = (p as usize, t as usize);
        if p == t {
            inter[p] += 1;
            union[p] += 1;
        } else {
            union[p] += 1;
            union[t] += 1;
        }
    }
    (0..classes)
        .map(|c| {
            if union[c] == 0 {
                f32::NAN
            } else {
                inter[c] as f32 / union[c] as f32
            }
        })
        .collect()
}

/// Mean IoU over classes present in prediction or truth.
pub fn mean_iou(pred: &[u8], truth: &[u8], classes: usize) -> f32 {
    let per = iou_per_class(pred, truth, classes);
    let present: Vec<f32> = per.into_iter().filter(|v| !v.is_nan()).collect();
    if present.is_empty() {
        f32::NAN
    } else {
        present.iter().sum::<f32>() / present.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Dense;

    #[test]
    fn perfect_prediction_gives_iou_one() {
        let truth = vec![0u8, 1, 2, 1, 0];
        assert_eq!(iou_per_class(&truth, &truth, 3), vec![1.0, 1.0, 1.0]);
        assert_eq!(mean_iou(&truth, &truth, 3), 1.0);
    }

    #[test]
    fn disjoint_prediction_gives_iou_zero() {
        let pred = vec![0u8; 4];
        let truth = vec![1u8; 4];
        let per = iou_per_class(&pred, &truth, 3);
        assert_eq!(per[0], 0.0);
        assert_eq!(per[1], 0.0);
        assert!(per[2].is_nan());
        assert_eq!(mean_iou(&pred, &truth, 3), 0.0);
    }

    #[test]
    fn partial_overlap() {
        // class 0: pred {0,1}, truth {0,2} -> inter {0}, union {0,1,2} = 1/3.
        let pred = vec![0u8, 0, 1];
        let truth = vec![0u8, 1, 0];
        let per = iou_per_class(&pred, &truth, 2);
        assert!((per[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((per[1] - 0.0).abs() < 1e-6);
    }

    #[test]
    fn predict_classes_takes_argmax() {
        // 2 classes, 3 pixels.
        let logits = Tensor::from_vec(&[1, 2, 3], vec![1.0, -1.0, 0.0, 0.0, 2.0, 0.5]);
        assert_eq!(predict_classes(&logits, 2), vec![0, 1, 1]);
    }

    #[test]
    fn regression_mae_zero_for_identity_fit() {
        // A 4->4 identity-ish check: with a zero network the MAE equals
        // the mean |label|.
        let mut rng = Tensor::rng(1);
        let mut net = Sequential::new(vec![Box::new(Dense::new(4, 4, &mut rng))]);
        // Zero all params: predictions are 0.
        net.visit_params(&mut |p, _| p.zero());
        let samples = vec![vec![1.0, 2.0, 3.0, 4.0]];
        let labels = vec![[0.5f32, -0.5, 1.0, 0.0]];
        let mae = regression_mae(&mut net, &samples, &[4], &labels);
        assert_eq!(mae, [0.5, 0.5, 1.0, 0.0]);
    }
}
