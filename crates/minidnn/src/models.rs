//! Scaled-down CosmoFlow and DeepCAM networks.
//!
//! The real CosmoFlow net is five 3-D conv layers + three dense layers
//! on 128³×4 inputs; the real DeepCAM is DeepLabv3+ on 1152×768×16. The
//! convergence experiments only need the same *task types* under the
//! same optimizer; these miniatures keep the layer structure (conv
//! feature extraction → head) at tractable sizes.

use crate::layers::{Conv2d, Conv3d, Dense, Dropout, Flatten, MaxPool, Relu, Sequential};
use crate::tensor::Tensor;

/// CosmoFlow-mini: 2 × (Conv3d + ReLU + MaxPool) → Dense → ReLU → Dense(4).
///
/// Input `[B, 4, S, S, S]` (4 redshift channels over an S³ crop),
/// output `[B, 4]` (the cosmological parameters).
pub fn cosmoflow_mini(crop: usize, seed: u64) -> Sequential {
    let mut rng = Tensor::rng(seed);
    let c1 = 8;
    let c2 = 16;
    // Shapes: S -> S-2 -> (S-2)/2 -> (S-2)/2-2 -> ((S-2)/2-2)/2
    let s1 = (crop - 2) / 2;
    let s2 = (s1 - 2) / 2;
    assert!(s2 >= 1, "crop {crop} too small for the network");
    let flat = c2 * s2 * s2 * s2;
    Sequential::new(vec![
        Box::new(Conv3d::new(4, c1, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool::<3>::new()),
        Box::new(Conv3d::new(c1, c2, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool::<3>::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(flat, 64, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dense::new(64, 4, &mut rng)),
    ])
}

/// [`cosmoflow_mini`] with dropout before the dense head — the real
/// CosmoFlow network regularizes this way, and the paper points at
/// "random weight drop-offs" as a source of its Fig.-7 run variance.
/// `dropout_seed` controls the stochastic stream independently of the
/// weight init.
pub fn cosmoflow_mini_dropout(crop: usize, seed: u64, p: f32, dropout_seed: u64) -> Sequential {
    let mut rng = Tensor::rng(seed);
    let c1 = 8;
    let c2 = 16;
    let s1 = (crop - 2) / 2;
    let s2 = (s1 - 2) / 2;
    assert!(s2 >= 1, "crop {crop} too small for the network");
    let flat = c2 * s2 * s2 * s2;
    Sequential::new(vec![
        Box::new(Conv3d::new(4, c1, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool::<3>::new()),
        Box::new(Conv3d::new(c1, c2, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(MaxPool::<3>::new()),
        Box::new(Flatten::new()),
        Box::new(Dense::new(flat, 64, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Dropout::new(p, dropout_seed)),
        Box::new(Dense::new(64, 4, &mut rng)),
    ])
}

/// DeepCAM-mini: Conv2d(3×3) stack with a 3-class 1×1 head, operating on
/// `[B, C, H, W]` crops. Output logits `[B, 3, H-4, W-4]` (valid padding
/// trims 2 pixels per conv).
pub fn deepcam_mini(channels: usize, seed: u64) -> Sequential {
    let mut rng = Tensor::rng(seed);
    Sequential::new(vec![
        Box::new(Conv2d::new(channels, 8, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(8, 8, 3, &mut rng)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(8, 3, 1, &mut rng)),
    ])
}

/// Crops the center of a DeepCAM mask to match the valid-padding logits
/// (`trim` pixels lost per side).
pub fn crop_mask(mask: &[u8], width: usize, height: usize, trim: usize) -> Vec<u8> {
    let (ow, oh) = (width - 2 * trim, height - 2 * trim);
    let mut out = Vec::with_capacity(ow * oh);
    for y in 0..oh {
        let row = (y + trim) * width + trim;
        out.extend_from_slice(&mask[row..row + ow]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmoflow_mini_shapes() {
        let mut net = cosmoflow_mini(16, 0);
        let x = Tensor::zeros(&[2, 4, 16, 16, 16]);
        let y = net.forward(&x);
        assert_eq!(y.shape, vec![2, 4]);
        assert!(net.param_count() > 1000);
    }

    #[test]
    fn deepcam_mini_shapes() {
        let mut net = deepcam_mini(4, 0);
        let x = Tensor::zeros(&[1, 4, 24, 32]);
        let y = net.forward(&x);
        assert_eq!(y.shape, vec![1, 3, 20, 28]);
    }

    #[test]
    fn dropout_variant_matches_baseline_at_p_zero() {
        let mut a = cosmoflow_mini(16, 3);
        let mut b = cosmoflow_mini_dropout(16, 3, 0.0, 99);
        let x = Tensor::kaiming(&[1, 4, 16, 16, 16], 10, &mut Tensor::rng(2));
        assert_eq!(a.forward(&x).data, b.forward(&x).data);
    }

    #[test]
    fn dropout_variant_is_stochastic_across_dropout_seeds() {
        let x = Tensor::kaiming(&[1, 4, 16, 16, 16], 10, &mut Tensor::rng(2));
        let mut a = cosmoflow_mini_dropout(16, 3, 0.5, 1);
        let mut b = cosmoflow_mini_dropout(16, 3, 0.5, 2);
        assert_ne!(a.forward(&x).data, b.forward(&x).data);
    }

    #[test]
    fn same_seed_same_weights() {
        let mut a = cosmoflow_mini(16, 9);
        let mut b = cosmoflow_mini(16, 9);
        let x = Tensor::kaiming(&[1, 4, 16, 16, 16], 10, &mut Tensor::rng(1));
        assert_eq!(a.forward(&x).data, b.forward(&x).data);
    }

    #[test]
    fn crop_mask_trims_borders() {
        // 4x3 mask, trim 1 -> 2x1.
        let mask = vec![
            0, 1, 2, 3, //
            4, 5, 6, 7, //
            8, 9, 10, 11,
        ];
        assert_eq!(crop_mask(&mask, 4, 3, 1), vec![5, 6]);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn cosmoflow_mini_rejects_tiny_crops() {
        cosmoflow_mini(6, 0);
    }
}
