//! Optimizers: SGD with momentum, and Adam.

use crate::layers::Sequential;
use crate::tensor::Tensor;

/// Optimizer interface: applies accumulated gradients and zeroes them.
pub trait Optimizer {
    /// One update step over every parameter of the network.
    fn step(&mut self, net: &mut Sequential);

    /// Current learning rate (after schedule adjustments).
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (used by warmup/decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// SGD with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32, momentum: f32) -> Self {
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Sequential) {
        let mut i = 0;
        let lr = self.lr;
        let mu = self.momentum;
        let velocity = &mut self.velocity;
        net.visit_params(&mut |p, g| {
            if velocity.len() == i {
                velocity.push(Tensor::zeros(&p.shape));
            }
            let v = &mut velocity[i];
            for ((vv, pv), gv) in v.data.iter_mut().zip(&mut p.data).zip(&g.data) {
                *vv = mu * *vv - lr * gv;
                *pv += *vv;
            }
            g.zero();
            i += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (the CosmoFlow reference uses SGD; Adam is provided
/// for the DeepCAM-style schedule and ablations).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// New Adam optimizer with standard betas.
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Sequential) {
        self.t += 1;
        let (b1, b2) = (self.beta1, self.beta2);
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let mut i = 0;
        let (ms, vs) = (&mut self.m, &mut self.v);
        net.visit_params(&mut |p, g| {
            if ms.len() == i {
                ms.push(Tensor::zeros(&p.shape));
                vs.push(Tensor::zeros(&p.shape));
            }
            let m = &mut ms[i];
            let v = &mut vs[i];
            for (((mv, vv), pv), gv) in m
                .data
                .iter_mut()
                .zip(&mut v.data)
                .zip(&mut p.data)
                .zip(&g.data)
            {
                *mv = b1 * *mv + (1.0 - b1) * gv;
                *vv = b2 * *vv + (1.0 - b2) * gv * gv;
                let mhat = *mv / bc1;
                let vhat = *vv / bc2;
                *pv -= lr * mhat / (vhat.sqrt() + eps);
            }
            g.zero();
            i += 1;
        });
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Dense, Sequential};
    use crate::loss::mse;

    fn quadratic_fit(optimizer: &mut dyn Optimizer) -> f32 {
        // Fit y = 2x with a single linear unit.
        let mut rng = Tensor::rng(1);
        let mut net = Sequential::new(vec![Box::new(Dense::new(1, 1, &mut rng))]);
        let x = Tensor::from_vec(&[4, 1], vec![-1.0, 0.0, 1.0, 2.0]);
        let y = Tensor::from_vec(&[4, 1], vec![-2.0, 0.0, 2.0, 4.0]);
        let mut last = f32::MAX;
        for _ in 0..200 {
            let pred = net.forward(&x);
            let (l, g) = mse(&pred, &y);
            net.backward(&g);
            optimizer.step(&mut net);
            last = l;
        }
        last
    }

    #[test]
    fn sgd_converges_on_linear_problem() {
        let mut opt = Sgd::new(0.05, 0.9);
        assert!(quadratic_fit(&mut opt) < 1e-3);
    }

    #[test]
    fn adam_converges_on_linear_problem() {
        let mut opt = Adam::new(0.05);
        assert!(quadratic_fit(&mut opt) < 1e-3);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut rng = Tensor::rng(2);
        let mut net = Sequential::new(vec![Box::new(Dense::new(2, 1, &mut rng))]);
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let pred = net.forward(&x);
        let (_, g) = mse(&pred, &Tensor::zeros(&pred.shape));
        net.backward(&g);
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut net);
        net.visit_params(&mut |_, g| assert!(g.data.iter().all(|&v| v == 0.0)));
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Sgd::new(0.1, 0.9);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
