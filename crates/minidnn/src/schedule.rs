//! Learning-rate schedules.
//!
//! The paper holds "the learning schedule (warmup, learning rate change
//! with rank count and phases, etc.)" fixed between the base and decoded
//! runs; this module provides the schedule family those references use:
//! linear warmup composed with constant, step-decay, or cosine phases,
//! plus the linear rank scaling of distributed training.

/// A learning-rate schedule: step number → learning rate.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear warmup from 0 to `lr` over `warmup_steps`, then constant.
    WarmupConstant {
        /// Peak rate.
        lr: f32,
        /// Warmup length in steps.
        warmup_steps: usize,
    },
    /// Warmup, then multiply by `gamma` at each milestone step.
    WarmupStepDecay {
        /// Peak rate.
        lr: f32,
        /// Warmup length in steps.
        warmup_steps: usize,
        /// Steps at which the rate decays.
        milestones: Vec<usize>,
        /// Multiplicative decay per milestone.
        gamma: f32,
    },
    /// Warmup, then cosine annealing to `min_lr` at `total_steps`.
    WarmupCosine {
        /// Peak rate.
        lr: f32,
        /// Warmup length in steps.
        warmup_steps: usize,
        /// Horizon of the anneal.
        total_steps: usize,
        /// Floor rate.
        min_lr: f32,
    },
}

impl Schedule {
    /// The learning rate at optimizer step `step` (0-based).
    pub fn at(&self, step: usize) -> f32 {
        match self {
            Schedule::Constant { lr } => *lr,
            Schedule::WarmupConstant { lr, warmup_steps } => {
                warmup(*lr, *warmup_steps, step).unwrap_or(*lr)
            }
            Schedule::WarmupStepDecay {
                lr,
                warmup_steps,
                milestones,
                gamma,
            } => {
                if let Some(w) = warmup(*lr, *warmup_steps, step) {
                    return w;
                }
                let decays = milestones.iter().filter(|&&m| step >= m).count() as i32;
                lr * gamma.powi(decays)
            }
            Schedule::WarmupCosine {
                lr,
                warmup_steps,
                total_steps,
                min_lr,
            } => {
                if let Some(w) = warmup(*lr, *warmup_steps, step) {
                    return w;
                }
                let t = (step - warmup_steps) as f32
                    / (total_steps.saturating_sub(*warmup_steps)).max(1) as f32;
                let t = t.min(1.0);
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }

    /// Scales the peak rate linearly with the number of ranks — the
    /// standard large-batch rule the paper's "learning rate change with
    /// rank count" refers to.
    pub fn scaled_by_ranks(self, ranks: usize) -> Schedule {
        let f = ranks.max(1) as f32;
        match self {
            Schedule::Constant { lr } => Schedule::Constant { lr: lr * f },
            Schedule::WarmupConstant { lr, warmup_steps } => Schedule::WarmupConstant {
                lr: lr * f,
                warmup_steps,
            },
            Schedule::WarmupStepDecay {
                lr,
                warmup_steps,
                milestones,
                gamma,
            } => Schedule::WarmupStepDecay {
                lr: lr * f,
                warmup_steps,
                milestones,
                gamma,
            },
            Schedule::WarmupCosine {
                lr,
                warmup_steps,
                total_steps,
                min_lr,
            } => Schedule::WarmupCosine {
                lr: lr * f,
                warmup_steps,
                total_steps,
                min_lr: min_lr * f,
            },
        }
    }
}

fn warmup(lr: f32, warmup_steps: usize, step: usize) -> Option<f32> {
    if step < warmup_steps {
        Some(lr * (step + 1) as f32 / warmup_steps as f32)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = Schedule::Constant { lr: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(10_000), 0.1);
    }

    #[test]
    fn warmup_ramps_linearly() {
        let s = Schedule::WarmupConstant {
            lr: 1.0,
            warmup_steps: 4,
        };
        assert_eq!(s.at(0), 0.25);
        assert_eq!(s.at(1), 0.5);
        assert_eq!(s.at(3), 1.0);
        assert_eq!(s.at(100), 1.0);
    }

    #[test]
    fn step_decay_applies_at_milestones() {
        let s = Schedule::WarmupStepDecay {
            lr: 1.0,
            warmup_steps: 0,
            milestones: vec![10, 20],
            gamma: 0.1,
        };
        assert_eq!(s.at(5), 1.0);
        assert!((s.at(10) - 0.1).abs() < 1e-7);
        assert!((s.at(25) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn cosine_anneals_to_floor() {
        let s = Schedule::WarmupCosine {
            lr: 1.0,
            warmup_steps: 2,
            total_steps: 102,
            min_lr: 0.01,
        };
        assert_eq!(s.at(1), 1.0); // end of warmup
        assert!((s.at(2) - 1.0).abs() < 1e-6); // anneal start at peak
        let mid = s.at(52);
        assert!((mid - 0.505).abs() < 0.01, "{mid}");
        assert!((s.at(102) - 0.01).abs() < 1e-6);
        assert!((s.at(1000) - 0.01).abs() < 1e-6); // clamped past horizon
    }

    #[test]
    fn cosine_is_monotone_after_warmup() {
        let s = Schedule::WarmupCosine {
            lr: 1.0,
            warmup_steps: 5,
            total_steps: 50,
            min_lr: 0.0,
        };
        for step in 5..49 {
            assert!(s.at(step + 1) <= s.at(step) + 1e-7, "step {step}");
        }
    }

    #[test]
    fn rank_scaling_multiplies_peak() {
        let s = Schedule::WarmupConstant {
            lr: 0.1,
            warmup_steps: 2,
        }
        .scaled_by_ranks(8);
        assert!((s.at(100) - 0.8).abs() < 1e-6);
        // Warmup still ramps from zero-ish.
        assert!(s.at(0) < s.at(100));
    }
}
