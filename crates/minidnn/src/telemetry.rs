//! Training-loop instruments on the shared `sciml-obs` registry.
//!
//! Before the unified telemetry layer each experiment harness kept its
//! own ad-hoc step/sample tallies; `TrainTelemetry` replaces those with
//! `train.*` instruments registered alongside the pipeline and serving
//! metrics, so one registry snapshot covers ingest and optimization.

use sciml_obs::{Counter, Histogram, MetricsRegistry};
use std::sync::Arc;
use std::time::Duration;

/// Optimizer-step instruments registered under `train.*` names.
#[derive(Debug)]
pub struct TrainTelemetry {
    registry: Arc<MetricsRegistry>,
    steps: Arc<Counter>,
    samples: Arc<Counter>,
    step_ns: Arc<Histogram>,
}

impl Default for TrainTelemetry {
    fn default() -> Self {
        Self::with_registry(&MetricsRegistry::new())
    }
}

impl TrainTelemetry {
    /// Instruments registering into `registry`.
    pub fn with_registry(registry: &Arc<MetricsRegistry>) -> Self {
        Self {
            registry: Arc::clone(registry),
            steps: registry.counter("train.steps"),
            samples: registry.counter("train.samples"),
            step_ns: registry.histogram("train.step_ns"),
        }
    }

    /// The registry these instruments live in.
    pub fn registry(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.registry)
    }

    /// Records one optimizer step over `batch` samples.
    pub fn record_step(&self, batch: u64, elapsed: Duration) {
        self.steps.inc();
        self.samples.add(batch);
        self.step_ns.record_duration(elapsed);
    }

    /// Optimizer steps recorded so far.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Samples consumed by recorded steps.
    pub fn samples(&self) -> u64 {
        self.samples.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_land_on_shared_registry() {
        let reg = MetricsRegistry::new();
        let tel = TrainTelemetry::with_registry(&reg);
        tel.record_step(4, Duration::from_nanos(250));
        tel.record_step(2, Duration::from_nanos(750));
        assert_eq!(tel.steps(), 2);
        assert_eq!(tel.samples(), 6);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("train.steps"), 2);
        assert_eq!(snap.counter("train.samples"), 6);
        let h = snap.histogram("train.step_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 1000);
    }
}
