//! Shaped f32 buffers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major f32 tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Dimensions, slowest first.
    pub shape: Vec<usize>,
    /// Row-major data, `len == shape.iter().product()`.
    pub data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Tensor {
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; shape.iter().product()],
        }
    }

    /// Tensor from existing data.
    ///
    /// # Panics
    /// Panics if the data length does not match the shape.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// He/Kaiming-style init: uniform in ±sqrt(6/fan_in), deterministic.
    pub fn kaiming(shape: &[usize], fan_in: usize, rng: &mut StdRng) -> Tensor {
        let bound = (6.0 / fan_in.max(1) as f32).sqrt();
        let data = (0..shape.iter().product())
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Reinterprets with a new shape of equal volume.
    ///
    /// # Panics
    /// Panics on volume mismatch.
    pub fn reshape(mut self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "reshape volume mismatch"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Sets every element to zero (gradient reset).
    pub fn zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f32>() / self.data.len() as f32
        }
    }

    /// Deterministic seeded RNG helper for initializers.
    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(!t.is_empty());
        assert_eq!(t.mean(), 0.0);
    }

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_panics_on_mismatch() {
        Tensor::from_vec(&[3], vec![1.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[4], vec![1.0, 2.0, 3.0, 4.0]).reshape(&[2, 2]);
        assert_eq!(t.shape, vec![2, 2]);
        assert_eq!(t.data[3], 4.0);
    }

    #[test]
    fn kaiming_is_deterministic_and_bounded() {
        let mut r1 = Tensor::rng(7);
        let mut r2 = Tensor::rng(7);
        let a = Tensor::kaiming(&[10, 10], 10, &mut r1);
        let b = Tensor::kaiming(&[10, 10], 10, &mut r2);
        assert_eq!(a, b);
        let bound = (6.0f32 / 10.0).sqrt();
        assert!(a.data.iter().all(|v| v.abs() <= bound));
    }
}
