//! Training loops with a fixed learning schedule, for the Fig. 6/7
//! convergence-preservation experiments.

use crate::layers::Sequential;
use crate::loss::{mse, softmax_cross_entropy};
use crate::optim::Optimizer;
use crate::telemetry::TrainTelemetry;
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sciml_half::F16;
use std::time::Instant;

/// Training-schedule parameters ("we merely used the same learning
/// schedule — warmup, learning rate — for both classes of samples").
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Samples per step.
    pub batch: usize,
    /// Full passes over the sample set.
    pub epochs: usize,
    /// Base learning rate after warmup.
    pub base_lr: f32,
    /// Linear warmup steps from 0 to `base_lr`.
    pub warmup_steps: usize,
    /// Shuffle seed (per-epoch shuffles derive from it).
    pub shuffle_seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            batch: 2,
            epochs: 4,
            base_lr: 1e-3,
            warmup_steps: 8,
            shuffle_seed: 0,
        }
    }
}

/// Loss history of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct History {
    /// Loss at every optimizer step.
    pub step_losses: Vec<f32>,
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation loss per epoch (empty when no validation set given).
    pub val_losses: Vec<f32>,
}

impl History {
    /// Final epoch's mean loss.
    pub fn final_loss(&self) -> f32 {
        *self.epoch_losses.last().unwrap_or(&f32::NAN)
    }

    /// Final epoch's validation loss.
    pub fn final_val_loss(&self) -> f32 {
        *self.val_losses.last().unwrap_or(&f32::NAN)
    }
}

/// Forward-only mean MSE over a sample set (no gradient, no update).
pub fn evaluate_regression(
    net: &mut Sequential,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    labels: &[[f32; 4]],
) -> f32 {
    let mut sum = 0f64;
    for (x, y) in samples.iter().zip(labels) {
        let mut shape = vec![1usize];
        shape.extend_from_slice(input_shape);
        let xt = Tensor::from_vec(&shape, x.clone());
        let yt = Tensor::from_vec(&[1, 4], y.to_vec());
        let pred = net.forward(&xt);
        let (l, _) = mse(&pred, &yt);
        sum += l as f64;
    }
    (sum / samples.len().max(1) as f64) as f32
}

/// Forward-only mean pixel cross-entropy over a sample set.
pub fn evaluate_segmentation(
    net: &mut Sequential,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    masks: &[Vec<u8>],
    classes: usize,
) -> f32 {
    let mut sum = 0f64;
    for (x, m) in samples.iter().zip(masks) {
        let mut shape = vec![1usize];
        shape.extend_from_slice(input_shape);
        let xt = Tensor::from_vec(&shape, x.clone());
        let logits = net.forward(&xt);
        let p = logits.len() / classes;
        let logits = logits.reshape(&[1, classes, p]);
        let (l, _) = softmax_cross_entropy(&logits, m, classes);
        sum += l as f64;
    }
    (sum / samples.len().max(1) as f64) as f32
}

/// Simulates the mixed-precision input boundary: rounds every value
/// through FP16 (what the decoded-sample path feeds the framework).
pub fn fp16_roundtrip(values: &[f32]) -> Vec<f32> {
    values.iter().map(|&v| F16::from_f32(v).to_f32()).collect()
}

fn lr_at(cfg: &TrainConfig, step: usize) -> f32 {
    if step < cfg.warmup_steps {
        cfg.base_lr * (step + 1) as f32 / cfg.warmup_steps as f32
    } else {
        cfg.base_lr
    }
}

fn epoch_order(cfg: &TrainConfig, epoch: usize, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed.wrapping_add(epoch as u64));
    order.shuffle(&mut rng);
    order
}

/// Trains a regression network (CosmoFlow-mini): `samples[i]` is a
/// flattened input of shape `input_shape`, `labels[i]` the 4-parameter
/// target.
pub fn train_regression(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    labels: &[[f32; 4]],
    cfg: &TrainConfig,
) -> History {
    train_regression_val(net, opt, samples, input_shape, labels, cfg, None)
}

/// [`train_regression`] with an optional held-out validation set,
/// evaluated after every epoch (the paper tracked validation loss too:
/// "the same behavior is also seen in the loss function of the
/// validation samples").
#[allow(clippy::type_complexity)]
pub fn train_regression_val(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    labels: &[[f32; 4]],
    cfg: &TrainConfig,
    validation: Option<(&[Vec<f32>], &[[f32; 4]])>,
) -> History {
    train_regression_impl(
        net,
        opt,
        samples,
        input_shape,
        labels,
        cfg,
        validation,
        None,
    )
}

/// [`train_regression_val`] recording every optimizer step into
/// `telemetry` (`train.steps`, `train.samples`, `train.step_ns`).
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn train_regression_observed(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    labels: &[[f32; 4]],
    cfg: &TrainConfig,
    validation: Option<(&[Vec<f32>], &[[f32; 4]])>,
    telemetry: &TrainTelemetry,
) -> History {
    train_regression_impl(
        net,
        opt,
        samples,
        input_shape,
        labels,
        cfg,
        validation,
        Some(telemetry),
    )
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn train_regression_impl(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    labels: &[[f32; 4]],
    cfg: &TrainConfig,
    validation: Option<(&[Vec<f32>], &[[f32; 4]])>,
    telemetry: Option<&TrainTelemetry>,
) -> History {
    assert_eq!(samples.len(), labels.len(), "sample/label count mismatch");
    let per_sample: usize = input_shape.iter().product();
    let mut history = History::default();
    let mut step = 0usize;
    for epoch in 0..cfg.epochs {
        let order = epoch_order(cfg, epoch, samples.len());
        let mut epoch_sum = 0f64;
        let mut epoch_batches = 0usize;
        for chunk in order.chunks(cfg.batch) {
            let mut shape = vec![chunk.len()];
            shape.extend_from_slice(input_shape);
            let mut data = Vec::with_capacity(chunk.len() * per_sample);
            let mut target = Vec::with_capacity(chunk.len() * 4);
            for &i in chunk {
                assert_eq!(samples[i].len(), per_sample, "sample shape mismatch");
                data.extend_from_slice(&samples[i]);
                target.extend_from_slice(&labels[i]);
            }
            let x = Tensor::from_vec(&shape, data);
            let y = Tensor::from_vec(&[chunk.len(), 4], target);
            opt.set_learning_rate(lr_at(cfg, step));
            let step_start = telemetry.map(|_| Instant::now());
            let pred = net.forward(&x);
            let (l, g) = mse(&pred, &y);
            net.backward(&g);
            opt.step(net);
            if let (Some(tel), Some(start)) = (telemetry, step_start) {
                tel.record_step(chunk.len() as u64, start.elapsed());
            }
            history.step_losses.push(l);
            epoch_sum += l as f64;
            epoch_batches += 1;
            step += 1;
        }
        history
            .epoch_losses
            .push((epoch_sum / epoch_batches.max(1) as f64) as f32);
        if let Some((vx, vy)) = validation {
            history
                .val_losses
                .push(evaluate_regression(net, vx, input_shape, vy));
        }
    }
    history
}

/// Trains a segmentation network (DeepCAM-mini): `samples[i]` is a
/// flattened `[C, H, W]` input, `masks[i]` the per-pixel class ids
/// already cropped to the logits' spatial size.
#[allow(clippy::too_many_arguments)]
pub fn train_segmentation(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    masks: &[Vec<u8>],
    classes: usize,
    cfg: &TrainConfig,
) -> History {
    train_segmentation_val(net, opt, samples, input_shape, masks, classes, cfg, None)
}

/// [`train_segmentation`] with an optional held-out validation set.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn train_segmentation_val(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    masks: &[Vec<u8>],
    classes: usize,
    cfg: &TrainConfig,
    validation: Option<(&[Vec<f32>], &[Vec<u8>])>,
) -> History {
    train_segmentation_impl(
        net,
        opt,
        samples,
        input_shape,
        masks,
        classes,
        cfg,
        validation,
        None,
    )
}

/// [`train_segmentation_val`] recording every optimizer step into
/// `telemetry` (`train.steps`, `train.samples`, `train.step_ns`).
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub fn train_segmentation_observed(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    masks: &[Vec<u8>],
    classes: usize,
    cfg: &TrainConfig,
    validation: Option<(&[Vec<f32>], &[Vec<u8>])>,
    telemetry: &TrainTelemetry,
) -> History {
    train_segmentation_impl(
        net,
        opt,
        samples,
        input_shape,
        masks,
        classes,
        cfg,
        validation,
        Some(telemetry),
    )
}

#[allow(clippy::too_many_arguments, clippy::type_complexity)]
fn train_segmentation_impl(
    net: &mut Sequential,
    opt: &mut dyn Optimizer,
    samples: &[Vec<f32>],
    input_shape: &[usize],
    masks: &[Vec<u8>],
    classes: usize,
    cfg: &TrainConfig,
    validation: Option<(&[Vec<f32>], &[Vec<u8>])>,
    telemetry: Option<&TrainTelemetry>,
) -> History {
    assert_eq!(samples.len(), masks.len(), "sample/mask count mismatch");
    let per_sample: usize = input_shape.iter().product();
    let mut history = History::default();
    let mut step = 0usize;
    for epoch in 0..cfg.epochs {
        let order = epoch_order(cfg, epoch, samples.len());
        let mut epoch_sum = 0f64;
        let mut epoch_batches = 0usize;
        for chunk in order.chunks(cfg.batch) {
            let mut shape = vec![chunk.len()];
            shape.extend_from_slice(input_shape);
            let mut data = Vec::with_capacity(chunk.len() * per_sample);
            let mut labels: Vec<u8> = Vec::new();
            for &i in chunk {
                data.extend_from_slice(&samples[i]);
                labels.extend_from_slice(&masks[i]);
            }
            let x = Tensor::from_vec(&shape, data);
            opt.set_learning_rate(lr_at(cfg, step));
            let step_start = telemetry.map(|_| Instant::now());
            let logits = net.forward(&x);
            // Flatten spatial dims: [B, classes, P].
            let b = chunk.len();
            let p = logits.len() / (b * classes);
            let logits = logits.reshape(&[b, classes, p]);
            let (l, g) = softmax_cross_entropy(&logits, &labels, classes);
            net.backward(&g);
            opt.step(net);
            if let (Some(tel), Some(start)) = (telemetry, step_start) {
                tel.record_step(chunk.len() as u64, start.elapsed());
            }
            history.step_losses.push(l);
            epoch_sum += l as f64;
            epoch_batches += 1;
            step += 1;
        }
        history
            .epoch_losses
            .push((epoch_sum / epoch_batches.max(1) as f64) as f32);
        if let Some((vx, vm)) = validation {
            history
                .val_losses
                .push(evaluate_segmentation(net, vx, input_shape, vm, classes));
        }
    }
    history
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{cosmoflow_mini, deepcam_mini};
    use crate::optim::Sgd;
    use rand::Rng;

    fn toy_regression_data(n: usize) -> (Vec<Vec<f32>>, Vec<[f32; 4]>) {
        let mut rng = Tensor::rng(3);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let x: Vec<f32> = (0..4 * 12 * 12 * 12)
                .map(|_| rng.gen_range(0.0..1.0))
                .collect();
            let m = x.iter().sum::<f32>() / x.len() as f32;
            ys.push([m, m * 0.5, 0.3, 0.1]);
            xs.push(x);
        }
        (xs, ys)
    }

    #[test]
    fn regression_loss_decreases() {
        let (xs, ys) = toy_regression_data(8);
        let mut net = cosmoflow_mini(12, 0);
        let mut opt = Sgd::new(2e-3, 0.9);
        let cfg = TrainConfig {
            batch: 2,
            epochs: 5,
            base_lr: 2e-3,
            warmup_steps: 4,
            shuffle_seed: 1,
        };
        let h = train_regression(&mut net, &mut opt, &xs, &[4, 12, 12, 12], &ys, &cfg);
        assert_eq!(h.epoch_losses.len(), 5);
        assert_eq!(h.step_losses.len(), 5 * 4);
        assert!(
            h.final_loss() < h.epoch_losses[0] * 0.9,
            "{:?}",
            h.epoch_losses
        );
    }

    #[test]
    fn segmentation_loss_decreases() {
        let mut rng = Tensor::rng(4);
        let (w, h_, c) = (20, 16, 2);
        let mut xs = Vec::new();
        let mut ms = Vec::new();
        for _ in 0..6 {
            let x: Vec<f32> = (0..c * w * h_).map(|_| rng.gen_range(-1.0..1.0)).collect();
            // Mask correlated with channel 0 sign, cropped 2 px per side.
            let mut m = Vec::new();
            for y in 2..h_ - 2 {
                for xx in 2..w - 2 {
                    m.push(if x[y * w + xx] > 0.0 { 1u8 } else { 0 });
                }
            }
            xs.push(x);
            ms.push(m);
        }
        let mut net = deepcam_mini(c, 0);
        let mut opt = Sgd::new(0.05, 0.9);
        let cfg = TrainConfig {
            batch: 2,
            epochs: 6,
            base_lr: 0.05,
            warmup_steps: 3,
            shuffle_seed: 2,
        };
        let hist = train_segmentation(&mut net, &mut opt, &xs, &[c, h_, w], &ms, 3, &cfg);
        assert!(
            hist.final_loss() < hist.epoch_losses[0] * 0.9,
            "{:?}",
            hist.epoch_losses
        );
    }

    #[test]
    fn validation_tracking_populates_and_tracks_training() {
        let (xs, ys) = toy_regression_data(10);
        let (train_x, val_x) = xs.split_at(8);
        let (train_y, val_y) = ys.split_at(8);
        let mut net = cosmoflow_mini(12, 0);
        let mut opt = Sgd::new(2e-3, 0.9);
        let cfg = TrainConfig {
            batch: 2,
            epochs: 5,
            base_lr: 2e-3,
            warmup_steps: 4,
            shuffle_seed: 1,
        };
        let h = train_regression_val(
            &mut net,
            &mut opt,
            train_x,
            &[4, 12, 12, 12],
            train_y,
            &cfg,
            Some((val_x, val_y)),
        );
        assert_eq!(h.val_losses.len(), 5);
        // Validation loss on the same distribution should also fall.
        assert!(h.final_val_loss() < h.val_losses[0], "{:?}", h.val_losses);
    }

    #[test]
    fn no_validation_leaves_val_losses_empty() {
        let (xs, ys) = toy_regression_data(4);
        let mut net = cosmoflow_mini(12, 0);
        let mut opt = Sgd::new(1e-3, 0.9);
        let h = train_regression(
            &mut net,
            &mut opt,
            &xs,
            &[4, 12, 12, 12],
            &ys,
            &TrainConfig::default(),
        );
        assert!(h.val_losses.is_empty());
    }

    #[test]
    fn fp16_roundtrip_changes_little() {
        let vals = vec![0.1f32, 100.0, -3.5, 0.0];
        let r = fp16_roundtrip(&vals);
        for (a, b) in vals.iter().zip(&r) {
            assert!((a - b).abs() <= a.abs() * 0.001 + 1e-6);
        }
    }

    #[test]
    fn identical_inputs_identical_history() {
        let (xs, ys) = toy_regression_data(4);
        let cfg = TrainConfig::default();
        let run = || {
            let mut net = cosmoflow_mini(12, 7);
            let mut opt = Sgd::new(1e-3, 0.9);
            train_regression(&mut net, &mut opt, &xs, &[4, 12, 12, 12], &ys, &cfg)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observed_training_matches_history_and_counts_steps() {
        let (xs, ys) = toy_regression_data(4);
        let cfg = TrainConfig::default();
        let plain = {
            let mut net = cosmoflow_mini(12, 7);
            let mut opt = Sgd::new(1e-3, 0.9);
            train_regression(&mut net, &mut opt, &xs, &[4, 12, 12, 12], &ys, &cfg)
        };
        let tel = TrainTelemetry::default();
        let observed = {
            let mut net = cosmoflow_mini(12, 7);
            let mut opt = Sgd::new(1e-3, 0.9);
            train_regression_observed(
                &mut net,
                &mut opt,
                &xs,
                &[4, 12, 12, 12],
                &ys,
                &cfg,
                None,
                &tel,
            )
        };
        assert_eq!(plain, observed, "telemetry must not perturb training");
        assert_eq!(tel.steps() as usize, observed.step_losses.len());
        assert_eq!(tel.samples() as usize, xs.len() * cfg.epochs);
        let snap = tel.registry().snapshot();
        assert_eq!(
            snap.histogram("train.step_ns").unwrap().count,
            tel.steps(),
            "one latency record per step"
        );
    }

    #[test]
    fn warmup_schedule_ramps() {
        let cfg = TrainConfig {
            warmup_steps: 4,
            base_lr: 1.0,
            ..Default::default()
        };
        assert_eq!(lr_at(&cfg, 0), 0.25);
        assert_eq!(lr_at(&cfg, 3), 1.0);
        assert_eq!(lr_at(&cfg, 10), 1.0);
    }
}
