//! Property tests: every layer's analytic input gradient must match the
//! numerical gradient on random inputs, and training must be invariant
//! to things that shouldn't matter.

use proptest::prelude::*;
use sciml_minidnn::layers::{Conv2d, Conv3d, Dense, Layer, MaxPool, Relu};
use sciml_minidnn::loss::{mse, softmax_cross_entropy};
use sciml_minidnn::Tensor;

/// Numerical gradient check against `loss = sum(forward(x))`.
fn grad_matches(layer: &mut dyn Layer, input: &Tensor, probes: &[usize], tol: f32) -> bool {
    let out = layer.forward(input);
    let ones = Tensor::from_vec(&out.shape, vec![1.0; out.len()]);
    let gin = layer.backward(&ones);
    let eps = 1e-2f32;
    for &p in probes {
        let p = p % input.len();
        let mut plus = input.clone();
        plus.data[p] += eps;
        let mut minus = input.clone();
        minus.data[p] -= eps;
        let lp: f32 = layer.forward(&plus).data.iter().sum();
        layer.backward(&ones);
        let lm: f32 = layer.forward(&minus).data.iter().sum();
        layer.backward(&ones);
        let num = (lp - lm) / (2.0 * eps);
        if (num - gin.data[p]).abs() > tol * (1.0 + num.abs()) {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn dense_gradients_are_correct(seed in any::<u64>(), probe in any::<usize>()) {
        let mut rng = Tensor::rng(seed);
        let mut layer = Dense::new(5, 3, &mut rng);
        let x = Tensor::kaiming(&[2, 5], 5, &mut rng);
        prop_assert!(grad_matches(&mut layer, &x, &[probe, probe / 3 + 1], 2e-2));
    }

    #[test]
    fn conv2d_gradients_are_correct(seed in any::<u64>(), probe in any::<usize>()) {
        let mut rng = Tensor::rng(seed);
        let mut layer = Conv2d::new(2, 2, 3, &mut rng);
        let x = Tensor::kaiming(&[1, 2, 5, 5], 4, &mut rng);
        prop_assert!(grad_matches(&mut layer, &x, &[probe], 3e-2));
    }

    #[test]
    fn conv3d_gradients_are_correct(seed in any::<u64>(), probe in any::<usize>()) {
        let mut rng = Tensor::rng(seed);
        let mut layer = Conv3d::new(1, 2, 2, &mut rng);
        let x = Tensor::kaiming(&[1, 1, 4, 4, 4], 4, &mut rng);
        prop_assert!(grad_matches(&mut layer, &x, &[probe], 3e-2));
    }

    #[test]
    fn relu_and_maxpool_gradients_route_correctly(seed in any::<u64>()) {
        // ReLU and MaxPool are non-differentiable at kinks/ties, where a
        // finite-difference probe flips the active branch. Use values
        // spaced far apart relative to eps (1e-2) and away from zero so
        // every probe stays on one branch.
        use rand::seq::SliceRandom;
        let mut rng = Tensor::rng(seed);
        let mut vals: Vec<f32> = (0..32)
            .map(|i| (i as f32 - 15.6) * 0.31) // distinct, |v| >= 0.06
            .collect();
        vals.shuffle(&mut rng);
        let x = Tensor::from_vec(&[1, 2, 4, 4], vals);
        let mut relu = Relu::new();
        prop_assert!(grad_matches(&mut relu, &x, &[0, 7, 13], 1e-3));
        let mut pool = MaxPool::<2>::new();
        prop_assert!(grad_matches(&mut pool, &x, &[0, 9, 21], 1e-3));
    }

    /// MSE is non-negative, zero exactly at equality, symmetric.
    #[test]
    fn mse_properties(vals in prop::collection::vec(-10f32..10.0, 4..16)) {
        let n = vals.len();
        let a = Tensor::from_vec(&[1, n], vals.clone());
        let b = Tensor::from_vec(&[1, n], vals.iter().map(|v| v + 1.0).collect());
        let (zero, _) = mse(&a, &a);
        prop_assert_eq!(zero, 0.0);
        let (lab, _) = mse(&a, &b);
        let (lba, _) = mse(&b, &a);
        prop_assert!((lab - lba).abs() < 1e-5);
        prop_assert!(lab > 0.0);
    }

    /// Cross-entropy is minimized by the true label and its gradient
    /// sums to ~0 across classes at every pixel.
    #[test]
    fn cross_entropy_properties(
        logits in prop::collection::vec(-3f32..3.0, 6..=6),
        label in 0u8..3,
    ) {
        let t = Tensor::from_vec(&[1, 3, 2], logits);
        let labels = vec![label, (label + 1) % 3];
        let (l, g) = softmax_cross_entropy(&t, &labels, 3);
        prop_assert!(l >= 0.0);
        for pi in 0..2 {
            let col_sum: f32 = (0..3).map(|c| g.data[c * 2 + pi]).sum();
            prop_assert!(col_sum.abs() < 1e-5, "{col_sum}");
        }
    }

    /// Softmax-CE loss decreases when the true logit is raised.
    #[test]
    fn raising_true_logit_lowers_loss(base in -2f32..2.0) {
        let mk = |boost: f32| {
            Tensor::from_vec(&[1, 3, 1], vec![base + boost, 0.0, 0.0])
        };
        let (l0, _) = softmax_cross_entropy(&mk(0.0), &[0], 3);
        let (l1, _) = softmax_cross_entropy(&mk(1.0), &[0], 3);
        prop_assert!(l1 < l0);
    }
}
