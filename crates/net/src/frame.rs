//! Frame-boundary detection for the sciml wire layout.
//!
//! The reactor splits the inbound byte stream into frames without
//! understanding their contents: a frame is `[payload_len: u32 LE]`
//! `[payload]` `[crc32: u32 LE]`, exactly the layout `sciml-serve`'s
//! protocol writes. CRC verification and message decoding stay in the
//! service layer — the reactor only needs to know where one request
//! ends and the next begins, plus a hard payload cap so a hostile
//! 4 GiB length prefix cannot balloon the inbound buffer.

/// Bytes of length prefix before the payload.
pub const HEADER_BYTES: usize = 4;
/// Bytes of CRC trailer after the payload.
pub const TRAILER_BYTES: usize = 4;

/// Frame-boundary errors (the only protocol knowledge the reactor has).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds the configured cap.
    Oversized {
        /// Payload length claimed by the prefix.
        claimed: u32,
        /// Configured maximum payload length.
        max: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { claimed, max } => {
                write!(f, "frame payload {claimed} bytes exceeds cap {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Length-prefixed framing with a payload cap.
#[derive(Debug, Clone, Copy)]
pub struct Framing {
    /// Maximum accepted payload length in bytes.
    pub max_payload: u32,
}

impl Framing {
    /// Total on-wire size of the frame starting at `buf[0]`, if the
    /// length prefix is complete. `Ok(None)` means "need more bytes".
    pub fn frame_len(&self, buf: &[u8]) -> Result<Option<usize>, FrameError> {
        if buf.len() < HEADER_BYTES {
            return Ok(None);
        }
        let claimed = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
        if claimed > self.max_payload {
            return Err(FrameError::Oversized {
                claimed,
                max: self.max_payload,
            });
        }
        Ok(Some(HEADER_BYTES + claimed as usize + TRAILER_BYTES))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_header_wants_more() {
        let f = Framing { max_payload: 100 };
        assert_eq!(f.frame_len(&[]), Ok(None));
        assert_eq!(f.frame_len(&[5, 0, 0]), Ok(None));
    }

    #[test]
    fn complete_header_reports_total() {
        let f = Framing { max_payload: 100 };
        assert_eq!(f.frame_len(&[5, 0, 0, 0, 1, 2]), Ok(Some(4 + 5 + 4)));
        assert_eq!(f.frame_len(&[0, 0, 0, 0]), Ok(Some(8)));
    }

    #[test]
    fn oversized_prefix_is_an_error() {
        let f = Framing { max_payload: 16 };
        assert_eq!(
            f.frame_len(&[17, 0, 0, 0]),
            Err(FrameError::Oversized {
                claimed: 17,
                max: 16
            })
        );
    }
}
