//! sciml-net — std-only readiness reactor for the serving tier.
//!
//! The paper's disaggregated-preprocessing argument needs a serving
//! front-end that scales in *connections*, not threads: one training
//! fleet can hold thousands of mostly-idle sockets open against a
//! preprocessing node, and a thread-per-connection server burns a
//! stack and a scheduler slot on each. This crate provides the
//! event-driven alternative with zero external dependencies:
//!
//! * [`poller`] — level-triggered readiness backends: epoll on Linux
//!   (via direct `extern "C"` declarations; std already links libc),
//!   portable `poll(2)` on other Unixes, and a timed-scan degraded
//!   mode elsewhere. One [`Poller`](poller::Poller) API over all
//!   three, plus the loop-wakeup channel.
//! * [`frame`] — frame-boundary detection for the length-prefixed wire
//!   layout (`[len u32 LE][payload][crc32 LE]`). The reactor splits
//!   streams into frames; CRC checks and message parsing stay in the
//!   service layer.
//! * [`reactor`] — the event loop itself: non-blocking accept with
//!   admission control, per-connection state machines (read-frame →
//!   dispatch → write-with-backpressure), a worker pool running the
//!   [`Service`] callback, bounded outbound buffers,
//!   idle timeouts, and graceful drain (stop accepting, finish
//!   in-flight, flush, then close).
//!
//! `sciml-serve` plugs its protocol in as a [`reactor::Service`]; this
//! crate knows nothing about datasets or messages beyond the frame
//! envelope.

#![deny(missing_docs)]

pub mod frame;
pub mod poller;
pub mod reactor;

pub use frame::{FrameError, Framing, HEADER_BYTES, TRAILER_BYTES};
pub use reactor::{ConnId, Reactor, ReactorConfig, ReactorHandle, ReactorMetrics, Reply, Service};
