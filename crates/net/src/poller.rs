//! Readiness pollers: epoll on Linux, `poll(2)` on other Unixes, and a
//! degraded timed scan elsewhere.
//!
//! All three backends present one level-triggered API: register a
//! socket under a `token` with a read/write [`Interest`], then
//! [`Poller::wait`] fills an [`Event`] list. The reactor never touches
//! platform types directly — it hands the poller a raw descriptor via
//! [`fd_of`] and consumes tokens back.
//!
//! The syscall surface is declared with `extern "C"` directly: std
//! already links the platform C library, so no external crate is
//! needed. Only the epoll backend is Linux-specific; the `poll(2)`
//! backend compiles on every Unix (including Linux, where the test
//! suite exercises it as the forced fallback).

use std::io;
use std::time::Duration;

/// What readiness a registration wants to hear about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the socket is readable (or closed by the peer).
    pub readable: bool,
    /// Wake when the socket accepts more outbound bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Read + write interest.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Neither direction (keeps the registration alive for errors).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered under.
    pub token: usize,
    /// Socket has bytes (or EOF) to read.
    pub readable: bool,
    /// Socket can take more bytes.
    pub writable: bool,
    /// Peer hung up or the socket errored; the connection is dead.
    pub hangup: bool,
}

/// Raw descriptor handed to the poller.
#[cfg(unix)]
pub type SysFd = std::os::raw::c_int;
/// Raw descriptor handed to the poller (unused off-Unix).
#[cfg(not(unix))]
pub type SysFd = i64;

/// Extracts the pollable descriptor from a socket.
#[cfg(unix)]
pub fn fd_of<T: std::os::unix::io::AsRawFd>(t: &T) -> SysFd {
    t.as_raw_fd()
}

/// Extracts the pollable descriptor from a socket. The degraded
/// backend ignores it, so any stand-in value works.
#[cfg(not(unix))]
pub fn fd_of<T>(_t: &T) -> SysFd {
    0
}

#[cfg(target_os = "linux")]
mod epoll_backend {
    use super::{Event, Interest, SysFd};
    use std::io;
    use std::os::raw::c_int;
    use std::time::Duration;

    // The kernel packs epoll_event on x86-64 (and x32); other
    // architectures use natural C layout.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Level-triggered epoll instance.
    pub struct Epoll {
        epfd: c_int,
        scratch: Vec<EpollEvent>,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: epoll_create1 takes a flags integer and returns a
            // new descriptor or -1; no memory is exchanged.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                scratch: vec![EpollEvent { events: 0, data: 0 }; 256],
            })
        }

        fn mask(interest: Interest) -> u32 {
            let mut m = EPOLLRDHUP;
            if interest.readable {
                m |= EPOLLIN;
            }
            if interest.writable {
                m |= EPOLLOUT;
            }
            m
        }

        fn ctl(&self, op: c_int, fd: SysFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: Self::mask(interest),
                data: token as u64,
            };
            // SAFETY: `ev` is a live, properly laid out epoll_event for
            // the duration of the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&mut self, fd: SysFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn reregister(
            &mut self,
            fd: SysFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&mut self, fd: SysFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::NONE)
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) => duration_to_ms(d),
            };
            let cap = self.scratch.len() as c_int;
            // SAFETY: `scratch` is a live buffer of `cap` epoll_events;
            // the kernel writes at most `cap` entries and returns how
            // many it filled.
            let n = unsafe { epoll_wait(self.epfd, self.scratch.as_mut_ptr(), cap, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for ev in self.scratch.iter().take(n as usize) {
                let bits = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data as usize,
                    readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: epfd is a descriptor this struct owns exclusively;
            // closing it twice is impossible because drop runs once.
            unsafe {
                let _ = close(self.epfd);
            }
        }
    }

    fn duration_to_ms(d: Duration) -> c_int {
        if d.is_zero() {
            return 0;
        }
        // Round up so a 100µs deadline does not busy-spin at 0ms.
        let ms = d.as_millis().saturating_add(1);
        c_int::try_from(ms).unwrap_or(c_int::MAX)
    }
}

#[cfg(unix)]
mod poll_backend {
    use super::{Event, Interest, SysFd};
    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;
    const POLLNVAL: c_short = 0x020;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// `poll(2)`-based fallback: keeps the registration table in user
    /// space and rebuilds the pollfd array per wait. O(n) per call —
    /// fine as a portability fallback, not the fast path.
    pub struct PollSet {
        entries: Vec<(SysFd, usize, Interest)>,
    }

    impl PollSet {
        pub fn new() -> PollSet {
            PollSet {
                entries: Vec::new(),
            }
        }

        pub fn register(&mut self, fd: SysFd, token: usize, interest: Interest) -> io::Result<()> {
            if self.entries.iter().any(|&(f, _, _)| f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }

        pub fn reregister(
            &mut self,
            fd: SysFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            for e in &mut self.entries {
                if e.0 == fd {
                    e.1 = token;
                    e.2 = interest;
                    return Ok(());
                }
            }
            Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
        }

        pub fn deregister(&mut self, fd: SysFd) -> io::Result<()> {
            let before = self.entries.len();
            self.entries.retain(|&(f, _, _)| f != fd);
            if self.entries.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let mut fds: Vec<PollFd> = self
                .entries
                .iter()
                .map(|&(fd, _, interest)| {
                    let mut events: c_short = 0;
                    if interest.readable {
                        events |= POLLIN;
                    }
                    if interest.writable {
                        events |= POLLOUT;
                    }
                    PollFd {
                        fd,
                        events,
                        revents: 0,
                    }
                })
                .collect();
            let timeout_ms: c_int = match timeout {
                None => -1,
                Some(d) if d.is_zero() => 0,
                Some(d) => c_int::try_from(d.as_millis().saturating_add(1)).unwrap_or(c_int::MAX),
            };
            // SAFETY: `fds` is a live array of len() pollfds for the
            // duration of the call; poll only writes `revents` within it.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(err);
            }
            for (pfd, &(_, token, _)) in fds.iter().zip(self.entries.iter()) {
                if pfd.revents == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    // POLLNVAL (fd invalid while registered) must close
                    // the connection too, or poll returns instantly on
                    // every wait and the loop busy-spins.
                    hangup: pfd.revents & (POLLERR | POLLHUP | POLLNVAL) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
mod degraded_backend {
    use super::{Event, Interest, SysFd};
    use std::io;
    use std::time::Duration;

    /// Last-resort backend for platforms with neither epoll nor
    /// `poll(2)`: every registered token is reported ready for its
    /// interests after a short sleep, and the connection state
    /// machines absorb the resulting `WouldBlock`s. Correct but
    /// latency-bound at the scan interval.
    pub struct Scan {
        entries: Vec<(SysFd, usize, Interest)>,
    }

    impl Scan {
        pub fn new() -> Scan {
            Scan {
                entries: Vec::new(),
            }
        }
        pub fn register(&mut self, fd: SysFd, token: usize, interest: Interest) -> io::Result<()> {
            self.entries.push((fd, token, interest));
            Ok(())
        }
        pub fn reregister(
            &mut self,
            fd: SysFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            for e in &mut self.entries {
                if e.0 == fd && e.1 == token {
                    e.2 = interest;
                    return Ok(());
                }
            }
            self.entries.push((fd, token, interest));
            Ok(())
        }
        pub fn deregister(&mut self, fd: SysFd) -> io::Result<()> {
            self.entries.retain(|&(f, _, _)| f != fd);
            Ok(())
        }
        pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            let nap = timeout
                .unwrap_or(Duration::from_millis(2))
                .min(Duration::from_millis(2));
            std::thread::sleep(nap);
            for &(_, token, interest) in &self.entries {
                if interest.readable || interest.writable {
                    out.push(Event {
                        token,
                        readable: interest.readable,
                        writable: interest.writable,
                        hangup: false,
                    });
                }
            }
            Ok(())
        }
    }
}

/// A readiness poller over one of the platform backends.
pub enum Poller {
    /// Linux epoll (the production path).
    #[cfg(target_os = "linux")]
    Epoll(epoll_backend::Epoll),
    /// POSIX `poll(2)` fallback.
    #[cfg(unix)]
    Poll(poll_backend::PollSet),
    /// Timed-scan degraded mode (non-Unix).
    #[cfg(not(unix))]
    Degraded(degraded_backend::Scan),
}

impl Poller {
    /// Opens the best backend available on this platform.
    pub fn new() -> io::Result<Poller> {
        #[cfg(target_os = "linux")]
        {
            Ok(Poller::Epoll(epoll_backend::Epoll::new()?))
        }
        #[cfg(all(unix, not(target_os = "linux")))]
        {
            Ok(Poller::Poll(poll_backend::PollSet::new()))
        }
        #[cfg(not(unix))]
        {
            Ok(Poller::Degraded(degraded_backend::Scan::new()))
        }
    }

    /// Opens the portable fallback backend (`poll(2)` on Unix), used by
    /// tests to exercise the non-epoll path on any host.
    pub fn new_fallback() -> io::Result<Poller> {
        #[cfg(unix)]
        {
            Ok(Poller::Poll(poll_backend::PollSet::new()))
        }
        #[cfg(not(unix))]
        {
            Ok(Poller::Degraded(degraded_backend::Scan::new()))
        }
    }

    /// The active backend's name, for logs and stats.
    pub fn backend(&self) -> &'static str {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => "epoll",
            #[cfg(unix)]
            Poller::Poll(_) => "poll",
            #[cfg(not(unix))]
            Poller::Degraded(_) => "degraded-scan",
        }
    }

    /// Adds a descriptor under `token`.
    pub fn register(&mut self, fd: SysFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.register(fd, token, interest),
            #[cfg(unix)]
            Poller::Poll(p) => p.register(fd, token, interest),
            #[cfg(not(unix))]
            Poller::Degraded(p) => p.register(fd, token, interest),
        }
    }

    /// Changes a registration's interest set.
    pub fn reregister(&mut self, fd: SysFd, token: usize, interest: Interest) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.reregister(fd, token, interest),
            #[cfg(unix)]
            Poller::Poll(p) => p.reregister(fd, token, interest),
            #[cfg(not(unix))]
            Poller::Degraded(p) => p.reregister(fd, token, interest),
        }
    }

    /// Removes a descriptor.
    pub fn deregister(&mut self, fd: SysFd) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.deregister(fd),
            #[cfg(unix)]
            Poller::Poll(p) => p.deregister(fd),
            #[cfg(not(unix))]
            Poller::Degraded(p) => p.deregister(fd),
        }
    }

    /// Blocks until readiness or `timeout`, appending events to `out`
    /// (which is cleared first). A spurious empty return is allowed.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        out.clear();
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(out, timeout),
            #[cfg(unix)]
            Poller::Poll(p) => p.wait(out, timeout),
            #[cfg(not(unix))]
            Poller::Degraded(p) => p.wait(out, timeout),
        }
    }
}

/// The loop-wakeup handle: lets worker threads (and external shutdown)
/// interrupt a blocked [`Poller::wait`].
#[cfg(unix)]
pub struct Waker {
    tx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl Waker {
    /// Interrupts the poller. Never blocks: if the pipe is full a wake
    /// is already pending, which is all that matters.
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&self.tx).write(&[1]);
    }
}

/// The readable end of the wakeup channel, registered in the poller.
#[cfg(unix)]
pub struct WakeReceiver {
    rx: std::os::unix::net::UnixStream,
}

#[cfg(unix)]
impl WakeReceiver {
    /// Descriptor to register under the reactor's wake token.
    pub fn fd(&self) -> SysFd {
        fd_of(&self.rx)
    }

    /// Discards all pending wake bytes.
    pub fn drain(&self) {
        use std::io::Read;
        let mut buf = [0u8; 64];
        loop {
            match (&self.rx).read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }
    }
}

/// Creates the wakeup channel.
#[cfg(unix)]
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    let (tx, rx) = std::os::unix::net::UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx }, WakeReceiver { rx }))
}

/// No-op waker for the degraded backend: its short scan interval
/// bounds wake latency instead.
#[cfg(not(unix))]
pub struct Waker;
#[cfg(not(unix))]
impl Waker {
    /// No-op; the degraded poller wakes on its own scan interval.
    pub fn wake(&self) {}
}
/// Dummy wake receiver (never registered) for the degraded backend.
#[cfg(not(unix))]
pub struct WakeReceiver;
#[cfg(not(unix))]
impl WakeReceiver {
    /// Stand-in descriptor; the degraded backend ignores it.
    pub fn fd(&self) -> SysFd {
        0
    }
    /// Nothing to drain.
    pub fn drain(&self) {}
}
/// Creates the (no-op) wakeup channel on non-Unix platforms.
#[cfg(not(unix))]
pub fn wake_pair() -> io::Result<(Waker, WakeReceiver)> {
    Ok((Waker, WakeReceiver))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn roundtrip_on(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller
            .register(fd_of(&listener), 7, Interest::READ)
            .unwrap();

        let mut events = Vec::new();
        // Nothing pending: a zero-timeout wait returns no listener event.
        poller
            .wait(&mut events, Some(Duration::from_millis(0)))
            .unwrap();
        assert!(events.iter().all(|e| e.token != 7) || !events[0].readable);

        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        // The pending connection must surface as readability on token 7.
        let mut saw = false;
        for _ in 0..100 {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 7 && e.readable) {
                saw = true;
                break;
            }
        }
        assert!(saw, "listener readiness never reported");

        let (mut server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .register(fd_of(&server_side), 9, Interest::BOTH)
            .unwrap();
        client.write_all(b"ping").unwrap();
        let mut saw_read = false;
        for _ in 0..100 {
            poller
                .wait(&mut events, Some(Duration::from_millis(50)))
                .unwrap();
            if events.iter().any(|e| e.token == 9 && e.readable) {
                saw_read = true;
                break;
            }
        }
        assert!(saw_read, "stream readability never reported");
        let mut buf = [0u8; 4];
        server_side.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        poller.deregister(fd_of(&server_side)).unwrap();
        poller.deregister(fd_of(&listener)).unwrap();
    }

    #[test]
    fn default_backend_reports_readiness() {
        roundtrip_on(Poller::new().unwrap());
    }

    #[test]
    fn fallback_backend_reports_readiness() {
        let p = Poller::new_fallback().unwrap();
        #[cfg(unix)]
        assert_eq!(p.backend(), "poll");
        roundtrip_on(p);
    }

    #[cfg(unix)]
    #[test]
    fn waker_interrupts_wait() {
        let mut poller = Poller::new().unwrap();
        let (waker, rx) = wake_pair().unwrap();
        poller.register(rx.fd(), 1, Interest::READ).unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            waker.wake();
        });
        let mut events = Vec::new();
        let start = std::time::Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        rx.drain();
        handle.join().unwrap();
    }
}
