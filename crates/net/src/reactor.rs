//! The readiness reactor: one event-loop thread multiplexing every
//! connection, a small worker pool running the service callback.
//!
//! ```text
//!             ┌────────────────────────── event loop ─────────────────────────┐
//!  accept ───►│ admit / reject-busy                                           │
//!             │     │                                                         │
//!  readable ─►│ read ─► frame split ─► pending queue ─► dispatch (1 in flight)│──► job channel
//!             │                                              ▲                │        │
//!  writable ─►│ flush ◄── outbound buffer ◄── completions ◄──┘ (waker)        │◄── worker pool
//!             └───────────────────────────────────────────────────────────────┘
//! ```
//!
//! Invariants the loop maintains per connection:
//!
//! * at most one request is dispatched at a time (replies are written
//!   in request order; a pipelining client queues in `pending`);
//! * reading pauses when `pending` or the outbound buffer exceed their
//!   caps — inbound backpressure falls through to the kernel socket
//!   buffer and, eventually, the client;
//! * the next request is not dispatched while more than
//!   `max_outbound_bytes` are still unflushed — outbound backpressure;
//! * a connection idle past `idle_timeout` (no read/write progress and
//!   nothing queued) is closed.
//!
//! Graceful drain (`ReactorHandle::begin_drain`, or a service reply
//! with `shutdown: true`): the listener keeps accepting only to emit
//! the service's typed "draining" reject frame, reads stop, idle
//! connections close immediately, connections with queued or in-flight
//! work finish and flush, and everything is force-closed at
//! `drain_timeout`.

use crate::frame::{FrameError, Framing};
use crate::poller::{fd_of, wake_pair, Event, Interest, Poller, WakeReceiver, Waker};
use sciml_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stable identifier of one accepted connection (never reused).
pub type ConnId = u64;

/// What the service wants done after handling one frame.
pub struct Reply {
    /// Frame to write back (already encoded), if any.
    pub frame: Option<Vec<u8>>,
    /// Close the connection once the reply has been flushed.
    pub close: bool,
    /// Begin graceful drain of the whole reactor after this reply.
    pub shutdown: bool,
}

impl Reply {
    /// Reply with `bytes` and keep the connection open.
    pub fn send(bytes: Vec<u8>) -> Reply {
        Reply {
            frame: Some(bytes),
            close: false,
            shutdown: false,
        }
    }

    /// Reply with `bytes`, then close this connection.
    pub fn send_close(bytes: Vec<u8>) -> Reply {
        Reply {
            frame: Some(bytes),
            close: true,
            shutdown: false,
        }
    }

    /// Close without replying.
    pub fn close() -> Reply {
        Reply {
            frame: None,
            close: true,
            shutdown: false,
        }
    }
}

/// The application layer plugged into the reactor. Called from worker
/// threads (`handle`) and the loop thread (everything else), so
/// implementations must be `Sync`.
pub trait Service: Send + Sync + 'static {
    /// Handles one complete frame (exactly as read off the wire,
    /// length prefix and CRC trailer included) and returns the reply.
    fn handle(&self, conn: ConnId, frame: Vec<u8>) -> Reply;

    /// Frame to send (then close) when a connection is refused because
    /// the reactor is at capacity or draining. `None` closes silently.
    fn reject_frame(&self, _draining: bool) -> Option<Vec<u8>> {
        None
    }

    /// Frame to send (then close) when frame splitting fails — today
    /// that is only an oversized length prefix. `None` closes silently.
    fn frame_error_frame(&self, _conn: ConnId, _err: &FrameError) -> Option<Vec<u8>> {
        None
    }

    /// A connection was admitted.
    fn connected(&self, _conn: ConnId) {}

    /// An admitted connection is gone (rejected ones never get this).
    fn disconnected(&self, _conn: ConnId) {}
}

/// Reactor tuning knobs.
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Worker threads running [`Service::handle`].
    pub workers: usize,
    /// Admission cap: connections past this get the reject frame.
    pub max_connections: usize,
    /// Close connections with no progress for this long
    /// (`Duration::ZERO` disables the idle reaper).
    pub idle_timeout: Duration,
    /// Hard bound on graceful drain before remaining connections are
    /// force-closed.
    pub drain_timeout: Duration,
    /// Maximum accepted frame payload (the wire protocol's cap).
    pub max_frame_bytes: u32,
    /// Parsed-but-undispatched frames buffered per connection before
    /// reading pauses.
    pub max_pending_frames: usize,
    /// Unflushed outbound bytes per connection before the next request
    /// is held back.
    pub max_outbound_bytes: usize,
    /// Use the portable `poll(2)` backend even where epoll exists
    /// (tests / A-B comparison).
    pub force_poll_fallback: bool,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 4,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(60),
            drain_timeout: Duration::from_secs(5),
            max_frame_bytes: 64 << 20,
            max_pending_frames: 32,
            max_outbound_bytes: 16 << 20,
            force_poll_fallback: false,
        }
    }
}

/// Connection-lifecycle instruments, shared with the obs registry.
#[derive(Clone)]
pub struct ReactorMetrics {
    /// Admitted connections, cumulative.
    pub accepted: Arc<Counter>,
    /// Connections refused with the busy/draining frame, cumulative.
    pub rejected_busy: Arc<Counter>,
    /// Admitted connections closed by graceful drain, cumulative.
    pub drained: Arc<Counter>,
    /// Currently admitted connections.
    pub active: Arc<Gauge>,
}

impl ReactorMetrics {
    /// Registers the four instruments as `{prefix}.accepted`,
    /// `{prefix}.rejected_busy`, `{prefix}.drained`, `{prefix}.active`.
    pub fn registered(registry: &MetricsRegistry, prefix: &str) -> ReactorMetrics {
        ReactorMetrics {
            accepted: registry.counter(&format!("{prefix}.accepted")),
            rejected_busy: registry.counter(&format!("{prefix}.rejected_busy")),
            drained: registry.counter(&format!("{prefix}.drained")),
            active: registry.gauge(&format!("{prefix}.active")),
        }
    }

    /// Instruments backed by a private registry (tests, ad-hoc use).
    pub fn detached() -> ReactorMetrics {
        ReactorMetrics::registered(&MetricsRegistry::new(), "net.conn")
    }
}

struct Job {
    conn: ConnId,
    frame: Vec<u8>,
}

struct Completion {
    conn: ConnId,
    reply: Reply,
}

struct Shared {
    completions: parking_lot::Mutex<Vec<Completion>>,
    waker: Waker,
}

/// Handle to a running reactor.
///
/// Dropping the handle drains and joins the reactor. [`shutdown`]
/// (explicit drain) and [`join`] (wait for a wire-initiated shutdown)
/// are the two deliberate ways out.
///
/// [`shutdown`]: ReactorHandle::shutdown
/// [`join`]: ReactorHandle::join
pub struct ReactorHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shared: Arc<Shared>,
    backend: &'static str,
    loop_thread: Option<std::thread::JoinHandle<()>>,
    worker_threads: Vec<std::thread::JoinHandle<()>>,
}

impl ReactorHandle {
    /// Address the listener is bound to.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Poller backend in use (`"epoll"`, `"poll"`, `"degraded-scan"`).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// Starts graceful drain without waiting for it to finish.
    pub fn begin_drain(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
    }

    /// Drains and waits for the reactor to finish (bounded by the
    /// configured drain timeout).
    pub fn shutdown(mut self) {
        self.begin_drain();
        self.join_threads();
    }

    /// Waits for the reactor to exit on its own — i.e. for a service
    /// reply with `shutdown: true` (a wire-initiated shutdown).
    pub fn join(mut self) {
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(t) = self.loop_thread.take() {
            let _ = t.join();
        }
        for t in self.worker_threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ReactorHandle {
    fn drop(&mut self) {
        if self.loop_thread.is_some() {
            self.shutdown.store(true, Ordering::SeqCst);
            self.shared.waker.wake();
            self.join_threads();
        }
    }
}

/// The reactor entry point.
pub struct Reactor;

impl Reactor {
    /// Takes ownership of a bound listener and runs it on the reactor:
    /// one event-loop thread plus `cfg.workers` service threads.
    pub fn spawn(
        listener: TcpListener,
        service: Arc<dyn Service>,
        cfg: ReactorConfig,
        metrics: ReactorMetrics,
    ) -> io::Result<ReactorHandle> {
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let mut poller = if cfg.force_poll_fallback {
            Poller::new_fallback()?
        } else {
            Poller::new()?
        };
        let backend = poller.backend();
        let (waker, wake_rx) = wake_pair()?;
        poller.register(fd_of(&listener), TOKEN_LISTENER, Interest::READ)?;
        #[cfg(unix)]
        poller.register(wake_rx.fd(), TOKEN_WAKE, Interest::READ)?;

        let shared = Arc::new(Shared {
            completions: parking_lot::Mutex::new(Vec::new()),
            waker,
        });
        let shutdown = Arc::new(AtomicBool::new(false));

        // Unbounded on purpose: total in-flight jobs are already capped
        // at one per admitted connection, so depth is bounded by
        // `max_connections`; a bounded channel would let a slow worker
        // pool block the event loop itself.
        let (job_tx, job_rx) = crossbeam_channel::unbounded::<Job>();

        let mut worker_threads = Vec::with_capacity(cfg.workers.max(1));
        for i in 0..cfg.workers.max(1) {
            let rx = job_rx.clone();
            let svc = Arc::clone(&service);
            let sh = Arc::clone(&shared);
            let t = std::thread::Builder::new()
                .name(format!("sciml-net-worker-{i}"))
                .spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let reply = svc.handle(job.conn, job.frame);
                        sh.completions.lock().push(Completion {
                            conn: job.conn,
                            reply,
                        });
                        sh.waker.wake();
                    }
                })?;
            worker_threads.push(t);
        }
        drop(job_rx);

        let idle_tick = if cfg.idle_timeout.is_zero() {
            Duration::from_secs(30)
        } else {
            (cfg.idle_timeout / 4).clamp(Duration::from_millis(10), Duration::from_secs(1))
        };
        let framing = Framing {
            max_payload: cfg.max_frame_bytes,
        };
        let mut ev_loop = EventLoop {
            poller,
            listener,
            wake_rx,
            service,
            framing,
            jobs: job_tx,
            shared: Arc::clone(&shared),
            shutdown: Arc::clone(&shutdown),
            metrics,
            conns: Vec::new(),
            free: Vec::new(),
            thawing: Vec::new(),
            by_id: HashMap::new(),
            next_id: 1,
            active: 0,
            open: 0,
            draining: false,
            drain_deadline: None,
            idle_tick,
            next_idle_scan: Instant::now() + idle_tick,
            cfg,
        };
        let loop_thread = std::thread::Builder::new()
            .name("sciml-net-reactor".to_string())
            .spawn(move || ev_loop.run())?;

        Ok(ReactorHandle {
            local_addr,
            shutdown,
            shared,
            backend,
            loop_thread: Some(loop_thread),
            worker_threads,
        })
    }
}

const TOKEN_LISTENER: usize = 0;
#[cfg_attr(not(unix), allow(dead_code))]
const TOKEN_WAKE: usize = 1;
const TOKEN_BASE: usize = 2;

struct Conn {
    id: ConnId,
    stream: TcpStream,
    interest: Interest,
    inbuf: Vec<u8>,
    instart: usize,
    pending: VecDeque<Vec<u8>>,
    in_flight: bool,
    outbuf: Vec<u8>,
    outstart: usize,
    close_after_flush: bool,
    rejected: bool,
    read_paused: bool,
    last_activity: Instant,
}

impl Conn {
    fn out_backlog(&self) -> usize {
        self.outbuf.len() - self.outstart
    }

    fn is_settled(&self) -> bool {
        self.pending.is_empty()
            && !self.in_flight
            && self.out_backlog() == 0
            && !self.close_after_flush
    }
}

struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    wake_rx: WakeReceiver,
    service: Arc<dyn Service>,
    framing: Framing,
    jobs: crossbeam_channel::Sender<Job>,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    metrics: ReactorMetrics,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    // Slots freed during the current event batch; only reusable once
    // the batch (and its possibly-stale tokens) has been fully handled.
    thawing: Vec<usize>,
    by_id: HashMap<ConnId, usize>,
    next_id: ConnId,
    active: usize,
    open: usize,
    draining: bool,
    drain_deadline: Option<Instant>,
    idle_tick: Duration,
    next_idle_scan: Instant,
    cfg: ReactorConfig,
}

impl EventLoop {
    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.next_timeout();
            // lint:allow(no_blocking_in_reactor): the event loop's own poll/park point
            if self.poller.wait(&mut events, Some(timeout)).is_err() {
                // A broken poller is unrecoverable; abandon ship and
                // let connection drops signal clients.
                break;
            }
            for ev in events.iter().copied() {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKE => self.wake_rx.drain(),
                    t => self.conn_event(t - TOKEN_BASE, ev),
                }
            }
            self.apply_completions();
            if self.shutdown.load(Ordering::SeqCst) && !self.draining {
                self.begin_drain();
            }
            self.periodic();
            self.free.append(&mut self.thawing);
            if self.draining && self.open == 0 {
                break;
            }
        }
        // Closes the listener (rebinding the port must work as soon as
        // shutdown() returns) and any force-closed stragglers.
    }

    fn next_timeout(&self) -> Duration {
        let now = Instant::now();
        let mut t = self.next_idle_scan.saturating_duration_since(now);
        if let Some(deadline) = self.drain_deadline {
            t = t.min(deadline.saturating_duration_since(now));
        }
        if self.draining {
            t = t.min(Duration::from_millis(10));
        }
        t.max(Duration::from_millis(1))
    }

    fn accept_ready(&mut self) {
        loop {
            // lint:allow(no_blocking_in_reactor): listener is nonblocking; WouldBlock exits the loop
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(slot) = self.free.pop() {
            slot
        } else {
            self.conns.push(None);
            self.conns.len() - 1
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let reject = self.draining || self.active >= self.cfg.max_connections;
        if reject {
            self.metrics.rejected_busy.inc();
            let Some(bytes) = self.service.reject_frame(self.draining) else {
                return; // silent refusal: just drop the socket
            };
            let slot = self.alloc_slot();
            let id = self.next_id;
            self.next_id += 1;
            let conn = Conn {
                id,
                stream,
                interest: Interest::WRITE,
                inbuf: Vec::new(),
                instart: 0,
                pending: VecDeque::new(),
                in_flight: false,
                outbuf: bytes,
                outstart: 0,
                close_after_flush: true,
                rejected: true,
                read_paused: true,
                last_activity: Instant::now(),
            };
            if self
                .poller
                .register(fd_of(&conn.stream), TOKEN_BASE + slot, conn.interest)
                .is_err()
            {
                self.thawing.push(slot);
                return;
            }
            self.by_id.insert(id, slot);
            self.conns[slot] = Some(conn);
            self.open += 1;
            // The reject frame rides the same buffered-write path as
            // every normal reply (flush + write-interest + error
            // handling), not an ad-hoc blocking write.
            self.flush(slot);
            return;
        }

        let slot = self.alloc_slot();
        let id = self.next_id;
        self.next_id += 1;
        let conn = Conn {
            id,
            stream,
            interest: Interest::READ,
            inbuf: Vec::new(),
            instart: 0,
            pending: VecDeque::new(),
            in_flight: false,
            outbuf: Vec::new(),
            outstart: 0,
            close_after_flush: false,
            rejected: false,
            read_paused: false,
            last_activity: Instant::now(),
        };
        if self
            .poller
            .register(fd_of(&conn.stream), TOKEN_BASE + slot, conn.interest)
            .is_err()
        {
            self.thawing.push(slot);
            return;
        }
        self.by_id.insert(id, slot);
        self.conns[slot] = Some(conn);
        self.open += 1;
        self.active += 1;
        self.metrics.accepted.inc();
        self.metrics.active.add(1);
        self.service.connected(id);
    }

    fn conn_event(&mut self, slot: usize, ev: Event) {
        if self.conns.get(slot).is_none_or(|c| c.is_none()) {
            return; // stale token from earlier in this batch
        }
        if ev.hangup {
            self.close_conn(slot);
            return;
        }
        if ev.readable {
            self.read_ready(slot);
        }
        if ev.writable && self.conns.get(slot).is_some_and(|c| c.is_some()) {
            self.flush(slot);
        }
    }

    fn read_ready(&mut self, slot: usize) {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return;
            };
            if conn.read_paused {
                // Break, not return: a burst that just filled `pending`
                // pauses reading with nothing in flight yet, and only
                // the trailing dispatch below can start draining it.
                break;
            }
            match conn.stream.read(&mut scratch) {
                Ok(0) => {
                    self.close_conn(slot);
                    return;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&scratch[..n]);
                    conn.last_activity = Instant::now();
                    if !self.extract_frames(slot) {
                        return; // connection closed under us
                    }
                    self.sync_read_pause(slot);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(slot);
                    return;
                }
            }
        }
        self.maybe_dispatch(slot);
    }

    /// Splits buffered bytes into complete frames. Returns `false` when
    /// the connection was closed.
    fn extract_frames(&mut self, slot: usize) -> bool {
        let framing = self.framing;
        loop {
            let mut frame_err: Option<FrameError> = None;
            let frame = {
                let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                    return false;
                };
                let buf = &conn.inbuf[conn.instart..];
                match framing.frame_len(buf) {
                    Ok(None) => None,
                    Ok(Some(total)) if buf.len() >= total => {
                        let frame = buf[..total].to_vec();
                        conn.instart += total;
                        if conn.instart >= conn.inbuf.len() {
                            conn.inbuf.clear();
                            conn.instart = 0;
                        } else if conn.instart > 64 * 1024 {
                            conn.inbuf.drain(..conn.instart);
                            conn.instart = 0;
                        }
                        Some(frame)
                    }
                    Ok(Some(_)) => None,
                    Err(e) => {
                        frame_err = Some(e);
                        None
                    }
                }
            };
            if let Some(err) = frame_err {
                self.frame_failure(slot, err);
                return self.conns.get(slot).is_some_and(|c| c.is_some());
            }
            let Some(frame) = frame else { return true };
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return false;
            };
            conn.pending.push_back(frame);
            if conn.pending.len() >= self.cfg.max_pending_frames {
                // Keep splitting what is buffered, but the pause flag
                // (synced by the caller) stops further reads.
                continue;
            }
        }
    }

    fn frame_failure(&mut self, slot: usize, err: FrameError) {
        let id = match self.conns.get(slot).and_then(|c| c.as_ref()) {
            Some(c) => c.id,
            None => return,
        };
        match self.service.frame_error_frame(id, &err) {
            Some(bytes) => {
                if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
                    conn.outbuf.extend_from_slice(&bytes);
                    conn.close_after_flush = true;
                    conn.read_paused = true;
                    conn.pending.clear();
                }
                self.flush(slot);
            }
            None => self.close_conn(slot),
        }
    }

    fn maybe_dispatch(&mut self, slot: usize) {
        let job = {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return;
            };
            if conn.in_flight
                || conn.close_after_flush
                || conn.out_backlog() > self.cfg.max_outbound_bytes
            {
                return;
            }
            let Some(frame) = conn.pending.pop_front() else {
                return;
            };
            conn.in_flight = true;
            conn.last_activity = Instant::now();
            Job {
                conn: conn.id,
                frame,
            }
        };
        if self.jobs.send(job).is_err() {
            // Worker pool is gone — nothing can ever be handled again.
            self.close_conn(slot);
        }
    }

    fn apply_completions(&mut self) {
        let completions = std::mem::take(&mut *self.shared.completions.lock());
        let mut drain_requested = false;
        for c in completions {
            if c.reply.shutdown {
                drain_requested = true;
            }
            let Some(&slot) = self.by_id.get(&c.conn) else {
                continue; // connection died while the worker ran
            };
            {
                let Some(conn) = self.conns.get_mut(slot).and_then(|x| x.as_mut()) else {
                    continue;
                };
                conn.in_flight = false;
                conn.last_activity = Instant::now();
                if let Some(bytes) = c.reply.frame {
                    conn.outbuf.extend_from_slice(&bytes);
                }
                if c.reply.close {
                    conn.close_after_flush = true;
                }
            }
            self.flush(slot);
            self.maybe_dispatch(slot);
            self.sync_read_pause(slot);
        }
        if drain_requested && !self.draining {
            self.begin_drain();
        }
    }

    fn flush(&mut self, slot: usize) {
        let mut should_close = false;
        {
            let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
                return;
            };
            loop {
                if conn.out_backlog() == 0 {
                    break;
                }
                match conn.stream.write(&conn.outbuf[conn.outstart..]) {
                    Ok(0) => {
                        should_close = true;
                        break;
                    }
                    Ok(n) => {
                        conn.outstart += n;
                        conn.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        should_close = true;
                        break;
                    }
                }
            }
            if !should_close && conn.out_backlog() == 0 {
                conn.outbuf.clear();
                conn.outstart = 0;
                if conn.close_after_flush {
                    should_close = true;
                }
            }
        }
        if should_close {
            self.close_conn(slot);
            return;
        }
        self.sync_interest(slot);
        self.maybe_dispatch(slot);
        self.maybe_close_drained(slot);
    }

    fn sync_read_pause(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
            return;
        };
        if conn.rejected || conn.close_after_flush {
            return;
        }
        let want_pause = self.draining
            || conn.pending.len() >= self.cfg.max_pending_frames
            || conn.out_backlog() > self.cfg.max_outbound_bytes;
        if want_pause != conn.read_paused {
            conn.read_paused = want_pause;
        }
        self.sync_interest(slot);
    }

    fn sync_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) else {
            return;
        };
        let want = Interest {
            readable: !conn.read_paused,
            writable: conn.out_backlog() > 0,
        };
        if want != conn.interest {
            let fd = fd_of(&conn.stream);
            conn.interest = want;
            let _ = self.poller.reregister(fd, TOKEN_BASE + slot, want);
        }
    }

    fn maybe_close_drained(&mut self, slot: usize) {
        if !self.draining {
            return;
        }
        let settled = self
            .conns
            .get(slot)
            .and_then(|c| c.as_ref())
            .is_some_and(|c| c.is_settled());
        if settled {
            self.close_conn(slot);
        }
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.take()) else {
            return;
        };
        let _ = self.poller.deregister(fd_of(&conn.stream));
        self.by_id.remove(&conn.id);
        self.open -= 1;
        if !conn.rejected {
            self.active -= 1;
            self.metrics.active.add(-1);
            if self.draining {
                self.metrics.drained.inc();
            }
            self.service.disconnected(conn.id);
        }
        self.thawing.push(slot);
    }

    fn begin_drain(&mut self) {
        self.draining = true;
        self.drain_deadline = Some(Instant::now() + self.cfg.drain_timeout);
        for slot in 0..self.conns.len() {
            if let Some(conn) = self.conns.get_mut(slot).and_then(|c| c.as_mut()) {
                if !conn.rejected {
                    conn.read_paused = true;
                }
            }
            self.sync_interest(slot);
            self.maybe_close_drained(slot);
        }
    }

    fn periodic(&mut self) {
        let now = Instant::now();
        if now >= self.next_idle_scan {
            self.next_idle_scan = now + self.idle_tick;
            if !self.draining && !self.cfg.idle_timeout.is_zero() {
                for slot in 0..self.conns.len() {
                    let expired = self
                        .conns
                        .get(slot)
                        .and_then(|c| c.as_ref())
                        .is_some_and(|c| {
                            // Settled connections are plain idle; a
                            // close-after-flush connection (reject,
                            // frame error, ReplyThenClose) whose peer
                            // never reads the final frame must also be
                            // reaped or it holds its fd and buffers
                            // forever.
                            (c.is_settled() || c.close_after_flush)
                                && now.saturating_duration_since(c.last_activity)
                                    >= self.cfg.idle_timeout
                        });
                    if expired {
                        self.close_conn(slot);
                    }
                }
            }
        }
        if self.draining {
            let expired = self.drain_deadline.is_some_and(|d| now >= d);
            for slot in 0..self.conns.len() {
                if expired {
                    self.close_conn(slot);
                } else {
                    self.maybe_close_drained(slot);
                }
            }
        }
    }
}
