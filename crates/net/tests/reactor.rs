//! End-to-end reactor tests over real loopback sockets, on both the
//! default (epoll on Linux) and forced-`poll(2)` backends.

use sciml_net::reactor::{
    ConnId, Reactor, ReactorConfig, ReactorHandle, ReactorMetrics, Reply, Service,
};
use sciml_net::FrameError;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Builds a wire frame: `[len u32 LE][payload][crc32 placeholder]`.
/// The reactor only inspects the length prefix, so the trailer can be
/// anything for these tests.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&0u32.to_le_bytes());
    out
}

fn read_frame(stream: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut head = [0u8; 4];
    stream.read_exact(&mut head)?;
    let len = u32::from_le_bytes(head) as usize;
    let mut rest = vec![0u8; len + 4];
    stream.read_exact(&mut rest)?;
    let mut out = head.to_vec();
    out.extend_from_slice(&rest);
    Ok(out)
}

/// Echoes every frame back; optional per-request delay; counts
/// lifecycle callbacks.
struct EchoService {
    delay: Duration,
    connected: AtomicU64,
    disconnected: AtomicU64,
    handled: AtomicU64,
}

impl EchoService {
    fn new(delay: Duration) -> Arc<EchoService> {
        Arc::new(EchoService {
            delay,
            connected: AtomicU64::new(0),
            disconnected: AtomicU64::new(0),
            handled: AtomicU64::new(0),
        })
    }
}

impl Service for EchoService {
    fn handle(&self, _conn: ConnId, frame_bytes: Vec<u8>) -> Reply {
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.handled.fetch_add(1, Ordering::SeqCst);
        // "shutdown" payload triggers wire-initiated drain.
        if frame_bytes.len() >= 12 && &frame_bytes[4..12] == b"shutdown" {
            return Reply {
                frame: Some(frame_bytes),
                close: false,
                shutdown: true,
            };
        }
        // "bigclose" payload gets a 32 MiB reply-then-close: far more
        // than loopback socket buffers hold, so a client that never
        // reads leaves the connection stuck in close-after-flush.
        if frame_bytes.len() >= 12 && &frame_bytes[4..12] == b"bigclose" {
            return Reply::send_close(frame(&vec![0u8; 32 << 20]));
        }
        Reply::send(frame_bytes)
    }

    fn reject_frame(&self, draining: bool) -> Option<Vec<u8>> {
        Some(frame(if draining { b"DRAINING" } else { b"BUSY" }))
    }

    fn frame_error_frame(&self, _conn: ConnId, _err: &FrameError) -> Option<Vec<u8>> {
        Some(frame(b"TOO-BIG"))
    }

    fn connected(&self, _conn: ConnId) {
        self.connected.fetch_add(1, Ordering::SeqCst);
    }

    fn disconnected(&self, _conn: ConnId) {
        self.disconnected.fetch_add(1, Ordering::SeqCst);
    }
}

fn spawn_echo(cfg: ReactorConfig, delay: Duration) -> (ReactorHandle, Arc<EchoService>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let svc = EchoService::new(delay);
    let handle = Reactor::spawn(
        listener,
        svc.clone() as Arc<dyn Service>,
        cfg,
        ReactorMetrics::detached(),
    )
    .unwrap();
    (handle, svc)
}

fn echo_roundtrip(cfg: ReactorConfig) {
    let (handle, svc) = spawn_echo(cfg, Duration::ZERO);
    let mut conns: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(handle.local_addr()).unwrap())
        .collect();
    for (i, c) in conns.iter_mut().enumerate() {
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let msg = frame(format!("hello-{i}").as_bytes());
        c.write_all(&msg).unwrap();
        let got = read_frame(c).unwrap();
        assert_eq!(got, msg, "echo mismatch on conn {i}");
    }
    drop(conns);
    handle.shutdown();
    assert_eq!(svc.connected.load(Ordering::SeqCst), 8);
    assert_eq!(svc.disconnected.load(Ordering::SeqCst), 8);
    assert_eq!(svc.handled.load(Ordering::SeqCst), 8);
}

#[test]
fn echo_roundtrip_default_backend() {
    echo_roundtrip(ReactorConfig::default());
}

#[test]
fn echo_roundtrip_poll_fallback() {
    let cfg = ReactorConfig {
        force_poll_fallback: true,
        ..ReactorConfig::default()
    };
    echo_roundtrip(cfg);
}

#[test]
fn pipelined_frames_reply_in_order() {
    let (handle, _svc) = spawn_echo(ReactorConfig::default(), Duration::from_millis(2));
    let mut c = TcpStream::connect(handle.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    // Burst 20 frames without reading a single reply: the reactor must
    // queue them (one in flight at a time) and answer in order.
    let frames: Vec<Vec<u8>> = (0..20)
        .map(|i| frame(format!("req-{i:03}").as_bytes()))
        .collect();
    for f in &frames {
        c.write_all(f).unwrap();
    }
    for (i, f) in frames.iter().enumerate() {
        let got = read_frame(&mut c).unwrap();
        assert_eq!(&got, f, "reply {i} out of order");
    }
    drop(c);
    handle.shutdown();
}

#[test]
fn pipelined_burst_beyond_pending_cap_does_not_deadlock() {
    // A single write burst larger than max_pending_frames fills the
    // pending queue before anything is dispatched, pausing reads with
    // no job in flight. read_ready must still fall through to dispatch
    // or the connection hangs forever with no completion to unpause it.
    let cfg = ReactorConfig {
        max_pending_frames: 8,
        ..ReactorConfig::default()
    };
    let (handle, svc) = spawn_echo(cfg, Duration::ZERO);
    let mut c = TcpStream::connect(handle.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let frames: Vec<Vec<u8>> = (0..48)
        .map(|i| frame(format!("burst-{i:03}").as_bytes()))
        .collect();
    let burst: Vec<u8> = frames.iter().flatten().copied().collect();
    c.write_all(&burst).unwrap();
    for (i, f) in frames.iter().enumerate() {
        let got = read_frame(&mut c).unwrap();
        assert_eq!(&got, f, "reply {i} missing or out of order");
    }
    assert_eq!(svc.handled.load(Ordering::SeqCst), 48);
    drop(c);
    handle.shutdown();
}

#[test]
fn unread_close_after_flush_reply_is_idle_reaped() {
    // The peer requests a reply-then-close far bigger than the socket
    // buffers and never reads it: the connection sits unflushed with
    // close_after_flush set. The idle reaper must still close it, or
    // it holds its fd and buffers (and, for rejects, an open slot)
    // forever.
    let cfg = ReactorConfig {
        idle_timeout: Duration::from_millis(150),
        ..ReactorConfig::default()
    };
    let (handle, svc) = spawn_echo(cfg, Duration::ZERO);
    let mut c = TcpStream::connect(handle.local_addr()).unwrap();
    c.write_all(&frame(b"bigclose")).unwrap();
    // Never read. Once the kernel buffers fill, flush stalls and
    // last_activity stops advancing; the reaper should fire within a
    // couple of idle periods.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while svc.disconnected.load(Ordering::SeqCst) == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "stuck close-after-flush connection was never reaped"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    drop(c);
    handle.shutdown();
}

#[test]
fn admission_cap_sends_busy_frame() {
    let cfg = ReactorConfig {
        max_connections: 1,
        ..ReactorConfig::default()
    };
    let (handle, _svc) = spawn_echo(cfg, Duration::ZERO);
    let mut first = TcpStream::connect(handle.local_addr()).unwrap();
    first
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Prove the first connection is admitted before connecting again.
    let probe = frame(b"probe");
    first.write_all(&probe).unwrap();
    assert_eq!(read_frame(&mut first).unwrap(), probe);

    let mut second = TcpStream::connect(handle.local_addr()).unwrap();
    second
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let got = read_frame(&mut second).unwrap();
    assert_eq!(got, frame(b"BUSY"));
    // ... and the rejected socket is closed right after.
    let mut rest = Vec::new();
    second.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    drop(first);
    handle.shutdown();
}

#[test]
fn graceful_drain_finishes_in_flight_and_rejects_new() {
    let (handle, svc) = spawn_echo(ReactorConfig::default(), Duration::from_millis(200));
    let mut busy = TcpStream::connect(handle.local_addr()).unwrap();
    busy.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let slow = frame(b"slow-request");
    busy.write_all(&slow).unwrap();
    // Give the worker time to pick the request up, then drain.
    std::thread::sleep(Duration::from_millis(50));
    handle.begin_drain();
    std::thread::sleep(Duration::from_millis(20));

    // New connections now get the typed draining frame and a close.
    let mut late = TcpStream::connect(handle.local_addr()).unwrap();
    late.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert_eq!(read_frame(&mut late).unwrap(), frame(b"DRAINING"));

    // The in-flight request still completes, byte-identically.
    assert_eq!(read_frame(&mut busy).unwrap(), slow);
    // ... and the drained connection is then closed.
    let mut rest = Vec::new();
    busy.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    handle.shutdown();
    assert_eq!(svc.handled.load(Ordering::SeqCst), 1);
}

#[test]
fn wire_shutdown_reply_drains_reactor() {
    let (handle, _svc) = spawn_echo(ReactorConfig::default(), Duration::ZERO);
    let addr = handle.local_addr();
    let t = std::thread::spawn(move || {
        let mut c = TcpStream::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
        let msg = frame(b"shutdown");
        c.write_all(&msg).unwrap();
        assert_eq!(read_frame(&mut c).unwrap(), msg);
    });
    // join() only returns once the service-initiated drain completes.
    handle.join();
    t.join().unwrap();
}

#[test]
fn idle_connections_are_reaped() {
    let cfg = ReactorConfig {
        idle_timeout: Duration::from_millis(120),
        ..ReactorConfig::default()
    };
    let (handle, svc) = spawn_echo(cfg, Duration::ZERO);
    let mut c = TcpStream::connect(handle.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let msg = frame(b"warmup");
    c.write_all(&msg).unwrap();
    assert_eq!(read_frame(&mut c).unwrap(), msg);
    // No traffic: the reaper must close the socket (read returns EOF).
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    assert_eq!(svc.disconnected.load(Ordering::SeqCst), 1);
    handle.shutdown();
}

#[test]
fn oversized_frame_gets_error_frame_then_close() {
    let cfg = ReactorConfig {
        max_frame_bytes: 1024,
        ..ReactorConfig::default()
    };
    let (handle, _svc) = spawn_echo(cfg, Duration::ZERO);
    let mut c = TcpStream::connect(handle.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    c.write_all(&(4096u32).to_le_bytes()).unwrap();
    assert_eq!(read_frame(&mut c).unwrap(), frame(b"TOO-BIG"));
    let mut rest = Vec::new();
    c.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());
    handle.shutdown();
}

#[test]
fn five_hundred_twelve_concurrent_connections() {
    let cfg = ReactorConfig {
        max_connections: 2048,
        workers: 4,
        ..ReactorConfig::default()
    };
    let (handle, svc) = spawn_echo(cfg, Duration::ZERO);
    let addr = handle.local_addr();
    let mut conns: Vec<TcpStream> = Vec::with_capacity(512);
    for _ in 0..512 {
        conns.push(TcpStream::connect(addr).unwrap());
    }
    // Every connection does one echo while all 512 stay open.
    for (i, c) in conns.iter_mut().enumerate() {
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let msg = frame(format!("conn-{i}").as_bytes());
        c.write_all(&msg).unwrap();
        let got = read_frame(c).unwrap();
        assert_eq!(got, msg);
    }
    assert_eq!(svc.handled.load(Ordering::SeqCst), 512);
    drop(conns);
    handle.shutdown();
}
