//! Cross-process trace context: (trace id, span id) pairs that link
//! spans recorded in different processes into one logical trace.
//!
//! A [`TraceContext`] names the *current* span: `trace_id` groups every
//! span of one logical operation (e.g. one pipeline fetch) across
//! machines, `span_id` identifies the span itself so children can point
//! back at it. The active context is thread-local; root spans install
//! one, child spans derive from it, and the serve client copies it onto
//! the wire so the server's spans join the same trace.
//!
//! Ids are random-looking nonzero u64s: a per-process seed (wall clock
//! xor pid) mixed with an atomic counter through splitmix64, so two
//! processes started in the same nanosecond still draw disjoint
//! sequences with overwhelming probability.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifies a span within a distributed trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Groups all spans of one logical operation; shared across
    /// processes.
    pub trace_id: u64,
    /// The span this context names; children record it as their
    /// parent.
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// splitmix64 finalizer: bijective, well-mixed, `const`-free.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Fresh nonzero id, unique within the process and collision-resistant
/// across processes.
pub fn fresh_id() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    static SEED: AtomicU64 = AtomicU64::new(0);
    let mut seed = SEED.load(Ordering::Relaxed);
    if seed == 0 {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        seed = splitmix64(nanos ^ (u64::from(std::process::id()) << 32)) | 1;
        SEED.store(seed, Ordering::Relaxed);
    }
    loop {
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let id = splitmix64(seed.wrapping_add(n.wrapping_mul(0x2545_f491_4f6c_dd1d)));
        if id != 0 {
            return id;
        }
    }
}

impl TraceContext {
    /// Starts a brand-new trace: fresh trace id, fresh root span id.
    pub fn root() -> Self {
        Self {
            trace_id: fresh_id(),
            span_id: fresh_id(),
        }
    }

    /// A child span context within the same trace.
    pub fn child(&self) -> Self {
        Self {
            trace_id: self.trace_id,
            span_id: fresh_id(),
        }
    }

    /// The context installed on the current thread, if any.
    pub fn current() -> Option<Self> {
        CURRENT.with(|c| c.get())
    }

    /// Installs `ctx` as the current thread's context, returning a
    /// guard that restores the previous one on drop.
    pub fn install(ctx: Self) -> ContextGuard {
        let prev = CURRENT.with(|c| c.replace(Some(ctx)));
        ContextGuard { prev }
    }
}

/// Restores the previously-installed context when dropped. Obtain via
/// [`TraceContext::install`].
#[must_use = "dropping the guard immediately uninstalls the context"]
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_nonzero_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:#x}");
        }
    }

    #[test]
    fn child_shares_trace_id_with_new_span_id() {
        let root = TraceContext::root();
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_ne!(child.span_id, root.span_id);
    }

    #[test]
    fn install_nests_and_restores() {
        assert_eq!(TraceContext::current(), None);
        let outer = TraceContext::root();
        {
            let _g = TraceContext::install(outer);
            assert_eq!(TraceContext::current(), Some(outer));
            let inner = outer.child();
            {
                let _g2 = TraceContext::install(inner);
                assert_eq!(TraceContext::current(), Some(inner));
            }
            assert_eq!(TraceContext::current(), Some(outer));
        }
        assert_eq!(TraceContext::current(), None);
    }

    #[test]
    fn ids_survive_threads_independently() {
        let outer = TraceContext::root();
        let _g = TraceContext::install(outer);
        std::thread::spawn(|| {
            assert_eq!(TraceContext::current(), None);
        })
        .join()
        .unwrap();
        assert_eq!(TraceContext::current(), Some(outer));
    }
}
