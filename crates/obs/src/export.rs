//! Snapshot exporters: registry → metrics JSONL, and named perf
//! snapshots → `results/BENCH_*.json` machine-readable dumps.

use crate::histogram::HistogramSnapshot;
use crate::json::escape;
use crate::registry::{MetricValue, RegistrySnapshot};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

fn write_histogram_fields(out: &mut String, h: &HistogramSnapshot) {
    let (min, max) = if h.count == 0 { (0, 0) } else { (h.min, h.max) };
    out.push_str(&format!(
        "\"count\":{},\"sum\":{},\"min\":{min},\"max\":{max},\"mean\":{:.1},\
         \"p50\":{},\"p95\":{},\"p99\":{}",
        h.count,
        h.sum,
        h.mean(),
        h.percentile(0.50),
        h.percentile(0.95),
        h.percentile(0.99),
    ));
    out.push_str(",\"buckets\":[");
    for (i, (idx, n)) in h.sparse().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("[{idx},{n}]"));
    }
    out.push(']');
}

/// One metric as a single JSON line (no trailing newline).
pub fn metric_to_json(name: &str, value: &MetricValue) -> String {
    let mut out = format!("{{\"name\":\"{}\",", escape(name));
    match value {
        MetricValue::Counter(v) => out.push_str(&format!("\"type\":\"counter\",\"value\":{v}")),
        MetricValue::Gauge(v) => out.push_str(&format!("\"type\":\"gauge\",\"value\":{v}")),
        MetricValue::Histogram(h) => {
            out.push_str("\"type\":\"histogram\",");
            write_histogram_fields(&mut out, h);
        }
    }
    out.push('}');
    out
}

/// Writes a registry snapshot as JSONL: one metric per line, name
/// order. Histogram lines carry count/sum/min/max/mean, p50/p95/p99,
/// and sparse `[bucket, count]` pairs.
pub fn write_metrics_jsonl(snapshot: &RegistrySnapshot, w: &mut impl Write) -> io::Result<()> {
    for (name, value) in &snapshot.metrics {
        writeln!(w, "{}", metric_to_json(name, value))?;
    }
    Ok(())
}

/// Convenience: [`write_metrics_jsonl`] straight to a file path.
pub fn write_metrics_file(snapshot: &RegistrySnapshot, path: &Path) -> io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write_metrics_jsonl(snapshot, &mut f)
}

/// One scalar result inside a bench snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Metric name, e.g. `"serve_loopback/epoch_batched/16.mean_ns"`.
    pub metric: String,
    /// Measured value.
    pub value: f64,
    /// Unit string, e.g. `"ns"`, `"bytes_per_s"`.
    pub unit: String,
}

impl BenchEntry {
    /// Entry constructor.
    pub fn new(metric: impl Into<String>, value: f64, unit: impl Into<String>) -> Self {
        Self {
            metric: metric.into(),
            value,
            unit: unit.into(),
        }
    }
}

/// Serializes a bench snapshot document (label + entries) as JSON.
pub fn bench_snapshot_json(label: &str, entries: &[BenchEntry]) -> String {
    let mut out = format!("{{\n  \"label\": \"{}\",\n  \"entries\": [", escape(label));
    for (i, e) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = if e.value.is_finite() { e.value } else { 0.0 };
        out.push_str(&format!(
            "\n    {{\"metric\": \"{}\", \"value\": {value}, \"unit\": \"{}\"}}",
            escape(&e.metric),
            escape(&e.unit)
        ));
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes `BENCH_<label>.json` into `dir` (created if missing),
/// returning the path. This is the machine-readable perf trajectory the
/// bench harness accumulates under `results/`.
pub fn write_bench_snapshot(
    dir: &Path,
    label: &str,
    entries: &[BenchEntry],
) -> io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let sanitized: String = label
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = dir.join(format!("BENCH_{sanitized}.json"));
    std::fs::write(&path, bench_snapshot_json(label, entries))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::registry::MetricsRegistry;

    #[test]
    fn jsonl_lines_are_valid_json() {
        let reg = MetricsRegistry::new();
        reg.counter("c\"quoted").add(5);
        reg.gauge("g").set(-1);
        let h = reg.histogram("lat");
        for v in [10u64, 20, 30, 40_000] {
            h.record(v);
        }
        let mut buf = Vec::new();
        write_metrics_jsonl(&reg.snapshot(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            json::parse(line).expect("each JSONL line parses");
        }
        let hist_line = lines
            .iter()
            .find(|l| l.contains("histogram"))
            .expect("histogram line");
        let v = json::parse(hist_line).unwrap();
        assert_eq!(v.get("count").unwrap().as_f64(), Some(4.0));
        assert!(v.get("p99").unwrap().as_f64().unwrap() > 1000.0);
        assert!(!v.get("buckets").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn bench_snapshot_writes_valid_json_file() {
        let dir = std::env::temp_dir().join("sciml_obs_bench_test");
        let entries = vec![
            BenchEntry::new("epoch.mean_ns", 1234.5, "ns"),
            BenchEntry::new("epoch.p99_ns", 9999.0, "ns"),
        ];
        let path = write_bench_snapshot(&dir, "serve loopback", &entries).unwrap();
        assert!(path.ends_with("BENCH_serve_loopback.json"));
        let text = std::fs::read_to_string(&path).unwrap();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("label").unwrap().as_str(), Some("serve loopback"));
        assert_eq!(v.get("entries").unwrap().as_array().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
