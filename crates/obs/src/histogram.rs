//! Log-bucketed latency histogram with lock-free atomic buckets.
//!
//! Values (nanoseconds, byte counts, …) land in buckets whose width
//! grows geometrically: each power-of-two octave is split into
//! [`SUB_BUCKETS`] sub-buckets, so the relative quantization error of a
//! recorded value is at most 1/[`SUB_BUCKETS`] (12.5 %) — tight enough
//! for tail percentiles, cheap enough (one `fetch_add` plus three
//! min/max/sum atomics) for per-sample recording on the hot path.
//! Histograms merge bucket-wise, which is what lets per-thread or
//! per-node instances combine into one distribution.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave (8 → ≤12.5 % relative error).
pub const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = 3;

/// Total bucket count: values `0..8` get exact unit buckets, then each
/// of the 61 octaves `[2^3, 2^64)` contributes [`SUB_BUCKETS`] buckets.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + 61 * SUB_BUCKETS;

/// Bucket index for a recorded value.
pub fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = ((v >> (msb - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    (msb - SUB_BITS) as usize * SUB_BUCKETS + SUB_BUCKETS + sub
}

/// Half-open value range `[lo, hi)` covered by bucket `idx`
/// (`hi == u64::MAX` for the final, saturated bucket).
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    assert!(idx < NUM_BUCKETS, "bucket index {idx} out of range");
    if idx < SUB_BUCKETS {
        return (idx as u64, idx as u64 + 1);
    }
    let octave = ((idx - SUB_BUCKETS) / SUB_BUCKETS) as u32;
    let sub = ((idx - SUB_BUCKETS) % SUB_BUCKETS) as u64;
    let lo = (SUB_BUCKETS as u64 + sub) << octave;
    let hi = match (SUB_BUCKETS as u64 + sub + 1).checked_shl(octave) {
        Some(h) if h != 0 => h,
        _ => u64::MAX,
    };
    (lo, hi)
}

/// Lock-free histogram: concurrent `record` from any number of threads,
/// `snapshot` at any time, `merge` to combine instances.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("min", &s.min)
            .field("max", &s.max)
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not Copy; build the boxed array from a Vec.
        let v: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            v.into_boxed_slice().try_into().expect("exact length");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Times `f` and records the elapsed nanoseconds.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let t0 = std::time::Instant::now();
        let out = f();
        self.record_duration(t0.elapsed());
        out
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Adds every recorded value of `other` into `self`. Bucket-wise
    /// addition, so merging commutes and associates.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Point-in-time copy of the distribution. Concurrent recording
    /// while snapshotting may tear across buckets (a value counted in
    /// `count` but not yet in its bucket, or vice versa); the snapshot
    /// recomputes `count` from the buckets so percentiles stay
    /// internally consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`], queryable for percentiles and
/// serializable (sparse bucket pairs) for the wire or JSON.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Dense per-bucket counts (`NUM_BUCKETS` entries; empty means no
    /// data, e.g. a default-constructed snapshot).
    pub counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean recorded value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` in `[0, 1]`: the smallest bucket whose
    /// cumulative count reaches `ceil(q · count)`, reported as the
    /// bucket midpoint clamped into `[min, max]`. Monotone in `q`;
    /// returns 0 when the histogram is empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 || self.counts.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (idx, &n) in self.counts.iter().enumerate() {
            cum += n;
            if cum >= target {
                let (lo, hi) = bucket_bounds(idx);
                let mid = lo + (hi - lo) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Sparse `(bucket index, count)` pairs for compact serialization.
    pub fn sparse(&self) -> Vec<(u16, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n != 0)
            .map(|(i, &n)| (i as u16, n))
            .collect()
    }

    /// Rebuilds a snapshot from [`HistogramSnapshot::sparse`] pairs
    /// plus the scalar fields. Out-of-range indices are ignored.
    pub fn from_sparse(pairs: &[(u16, u64)], sum: u64, min: u64, max: u64) -> Self {
        let mut counts = vec![0u64; NUM_BUCKETS];
        for &(idx, n) in pairs {
            if (idx as usize) < NUM_BUCKETS {
                counts[idx as usize] += n;
            }
        }
        let count = counts.iter().sum();
        Self {
            counts,
            count,
            sum,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_partition_the_axis() {
        // Buckets tile [0, 2^63·9) contiguously with no gap or overlap.
        let mut expect_lo = 0u64;
        for idx in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert_eq!(lo, expect_lo, "bucket {idx} starts at its lower bound");
            assert!(hi > lo, "bucket {idx} is non-empty");
            expect_lo = hi;
        }
    }

    #[test]
    fn recorded_value_lands_in_its_bucket() {
        for v in [
            0u64,
            1,
            7,
            8,
            9,
            255,
            256,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ] {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v, "{v} below bucket {idx} lower bound {lo}");
            assert!(
                v < hi || hi == u64::MAX,
                "{v} at/above bucket {idx} hi {hi}"
            );
        }
    }

    #[test]
    fn percentiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        let p50 = s.percentile(0.50);
        let p99 = s.percentile(0.99);
        // Log-bucket quantization allows ≤12.5 % relative error.
        assert!((430..=570).contains(&p50), "p50 = {p50}");
        assert!((860..=1000).contains(&p99), "p99 = {p99}");
        assert_eq!(s.percentile(1.0), 1000);
        assert!(s.percentile(0.0) >= 1);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_combines_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100 {
            a.record(v);
            b.record(v + 1000);
        }
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 200);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1099);
    }

    #[test]
    fn sparse_roundtrip() {
        let h = Histogram::new();
        for v in [3u64, 3, 50, 7_000, 123_456_789] {
            h.record(v);
        }
        let s = h.snapshot();
        let back = HistogramSnapshot::from_sparse(&s.sparse(), s.sum, s.min, s.max);
        assert_eq!(back, s);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
        assert_eq!(h.snapshot().counts.iter().sum::<u64>(), 40_000);
    }
}
