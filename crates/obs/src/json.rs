//! Minimal JSON: string escaping for the writers and a strict
//! recursive-descent parser used to validate emitted trace/metrics
//! files (the CI smoke step, `sciml validate-json`) without external
//! dependencies.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// String (escapes resolved).
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, key-sorted.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Array view, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// String view, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Serializes the value back to compact JSON. Whole numbers render
    /// without a fractional part; object keys come out sorted (the
    /// in-memory representation is a `BTreeMap`).
    pub fn dump(&self) -> String {
        let mut out = String::new();
        self.dump_into(&mut out);
        out
    }

    fn dump_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.is_finite() && n.abs() < 9.0e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else if n.is_finite() {
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null"); // NaN/inf are not JSON
                }
            }
            Value::String(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.dump_into(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.dump_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parse failure: byte offset plus description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one complete JSON document; trailing non-whitespace is an
/// error.
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

/// Escapes `s` into a JSON string literal body (no surrounding quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':').map_err(|mut e| {
                e.message = "expected ':' after object key";
                e
            })?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"').map_err(|mut e| {
            e.message = "expected '\"'";
            e
        })?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"s":"x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "\"unterminated",
            "123abc",
            "{\"a\":1} extra",
            "\"bad \\q escape\"",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn dump_roundtrips_through_parse() {
        let doc = r#"{"a":[1,2.5,-300],"b":{"c":null,"d":true},"s":"x\ny"}"#;
        let v = parse(doc).unwrap();
        let dumped = v.dump();
        assert_eq!(parse(&dumped).unwrap(), v);
        assert!(dumped.contains("\"a\":[1,2.5,-300]"), "{dumped}");
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""é😀""#).unwrap().as_str(), Some("é😀"));
        assert_eq!(parse(r#""😀""#).unwrap().as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate");
    }
}
