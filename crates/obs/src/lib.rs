//! sciml-obs — unified telemetry layer for the sciml stack.
//!
//! Three pieces, all `std`-only and shareable across threads:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s, and
//!   log-bucketed latency [`Histogram`]s. Instruments are registered by
//!   name once and recorded lock-free thereafter; histograms answer
//!   p50/p95/p99/max queries and merge bucket-wise, so per-worker or
//!   per-connection distributions roll up without losing the tail.
//! * [`Tracer`] — bounded-ring span tracing. RAII [`SpanGuard`]s stamp
//!   thread id + wall-clock offsets; [`Tracer::write_chrome_trace`]
//!   emits trace-event JSON viewable in `chrome://tracing` /
//!   [Perfetto](https://ui.perfetto.dev). Near-zero cost when disabled.
//! * [`export`] — snapshot writers: metrics JSONL dumps and
//!   `results/BENCH_*.json` perf snapshots for the bench harness.
//!
//! [`Telemetry`] bundles a registry + tracer as the single handle the
//! pipeline, codec, serving, and training tiers thread through their
//! constructors.
//!
//! ```
//! use sciml_obs::Telemetry;
//!
//! let tel = Telemetry::new();
//! let lat = tel.registry.histogram("demo.latency_ns");
//! for v in [120u64, 130, 5_000] {
//!     lat.record(v);
//! }
//! {
//!     let _span = tel.tracer.span("demo", "work");
//! }
//! let snap = tel.registry.snapshot();
//! assert_eq!(snap.histogram("demo.latency_ns").unwrap().count, 3);
//! assert_eq!(tel.tracer.events().len(), 1);
//! ```

#![deny(missing_docs)]

pub mod context;
pub mod export;
pub mod histogram;
pub mod json;
pub mod lockcheck;
pub mod merge;
pub mod prom;
pub mod registry;
pub mod sampler;
pub mod simd;
pub mod trace;

pub use context::TraceContext;
pub use export::{
    bench_snapshot_json, metric_to_json, write_bench_snapshot, write_metrics_file,
    write_metrics_jsonl, BenchEntry,
};
pub use histogram::{Histogram, HistogramSnapshot};
pub use merge::merge_chrome_traces;
pub use prom::{parse_prometheus, prometheus_text, write_prometheus};
pub use registry::{Counter, Gauge, MetricValue, MetricsRegistry, RegistrySnapshot};
pub use sampler::{pipeline_stages, AttributionReport, PipelineSampler, SamplerConfig, StageSpec};
pub use trace::{SpanGuard, SpanIds, TraceEvent, Tracer};

use std::sync::Arc;

/// Default span-ring capacity for [`Telemetry::new`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// The registry + tracer pair a process threads through its tiers.
///
/// Cloning is cheap (two `Arc`s) and every clone observes the same
/// instruments, so the pipeline workers, codec, server, and CLI all
/// feed one snapshot.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Shared metrics registry.
    pub registry: Arc<MetricsRegistry>,
    /// Shared span tracer.
    pub tracer: Arc<Tracer>,
}

impl Telemetry {
    /// Fresh registry with an *enabled* tracer of
    /// [`DEFAULT_TRACE_CAPACITY`] events.
    pub fn new() -> Self {
        Self {
            registry: MetricsRegistry::new(),
            tracer: Tracer::new(DEFAULT_TRACE_CAPACITY),
        }
    }

    /// Fresh registry with a *disabled* tracer: metrics still record,
    /// spans cost one atomic load. The right default for hot paths.
    pub fn disabled() -> Self {
        Self {
            registry: MetricsRegistry::new(),
            tracer: Tracer::disabled(),
        }
    }

    /// Copies the tracer's dropped-span count into the registry as the
    /// `obs.trace.dropped_spans` gauge, so silent span loss shows up in
    /// every snapshot and scrape.
    pub fn publish_trace_stats(&self) {
        self.registry
            .gauge("obs.trace.dropped_spans")
            .set(i64::try_from(self.tracer.dropped()).unwrap_or(i64::MAX));
    }

    /// Writes the current metrics snapshot as JSONL to `path`. In
    /// `--cfg lockcheck` builds the snapshot first absorbs the
    /// lock-order detector's `analyze.lockcheck.*` gauges.
    pub fn write_metrics(&self, path: &std::path::Path) -> std::io::Result<()> {
        lockcheck::publish(&self.registry);
        self.publish_trace_stats();
        export::write_metrics_file(&self.registry.snapshot(), path)
    }

    /// Writes the retained trace as Chrome trace-event JSON to `path`.
    pub fn write_trace(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.tracer.write_chrome_trace(&mut f)
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::disabled()
    }
}
