//! Bridge from the `parking_lot` shim's lock-order detector into the
//! metrics registry.
//!
//! In `--cfg lockcheck` builds the detector accumulates global
//! statistics (sites seen, ordering edges, detected cycles); this
//! module publishes them as `analyze.lockcheck.*` gauges so they ride
//! along in every metrics snapshot/JSONL export. In normal builds
//! [`publish`] is a no-op — `parking_lot::lockcheck::enabled()` is
//! `const false` and the whole body folds away.

use crate::registry::MetricsRegistry;

/// Gauge-name prefix for detector statistics.
pub const PREFIX: &str = "analyze.lockcheck";

/// Publishes the detector's current statistics into `registry` as
/// `analyze.lockcheck.{sites,edges,cycles,acquisitions,same_site_nesting}`
/// gauges. No-op (registers nothing) when the detector is compiled out.
pub fn publish(registry: &MetricsRegistry) {
    if !parking_lot::lockcheck::enabled() {
        return;
    }
    let stats = parking_lot::lockcheck::stats();
    let clamp = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    registry
        .gauge(&format!("{PREFIX}.sites"))
        .set(clamp(stats.sites));
    registry
        .gauge(&format!("{PREFIX}.edges"))
        .set(clamp(stats.edges));
    registry
        .gauge(&format!("{PREFIX}.cycles"))
        .set(clamp(stats.cycles));
    registry
        .gauge(&format!("{PREFIX}.acquisitions"))
        .set(clamp(stats.acquisitions));
    registry
        .gauge(&format!("{PREFIX}.same_site_nesting"))
        .set(clamp(stats.same_site_nesting));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_matches_detector_state() {
        let reg = MetricsRegistry::new();
        publish(&reg);
        let snap = reg.snapshot();
        if parking_lot::lockcheck::enabled() {
            // Locks have been taken in this process (the registry
            // itself uses the shim), so the stats are live.
            assert!(snap.get(&format!("{PREFIX}.acquisitions")).is_some());
            assert!(snap.get(&format!("{PREFIX}.cycles")).is_some());
        } else {
            // Disabled detector must not pollute snapshots.
            assert!(snap.get(&format!("{PREFIX}.acquisitions")).is_none());
            assert!(snap.metrics.is_empty());
        }
    }
}
