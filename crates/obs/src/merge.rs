//! Merges Chrome trace-event JSON files from multiple processes into
//! one timeline.
//!
//! Each input (client, server, …) carries the wall-clock time of its
//! tracer epoch as a top-level `"epochNs"` string. The merger aligns
//! every file onto the earliest epoch by shifting its events' `ts`
//! values, assigns each file its own `pid` lane (input order, starting
//! at 1), and concatenates the events. Distributed-trace ids in the
//! events' `args` are left untouched — they are already globally
//! consistent hex strings — so a span recorded on the server stays the
//! child of the client request span in the merged view.

use crate::json::{parse, Value};
use std::collections::BTreeMap;
use std::io;

/// One input to the merge: its events and epoch.
struct TraceFile {
    epoch_ns: u64,
    events: Vec<Value>,
}

fn read_trace(text: &str, label: &str) -> io::Result<TraceFile> {
    let doc = parse(text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{label}: not valid trace JSON: {e}"),
        )
    })?;
    let epoch_ns = doc
        .get("epochNs")
        .and_then(|e| e.as_str())
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(0);
    let events = doc
        .get("traceEvents")
        .and_then(|e| e.as_array())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{label}: missing traceEvents array"),
            )
        })?
        .to_vec();
    Ok(TraceFile { epoch_ns, events })
}

/// Merges trace documents (as text, with labels for error messages)
/// into one Chrome trace document aligned on the earliest epoch.
///
/// Inputs without an `"epochNs"` field (pre-merge traces from older
/// builds, or already-merged outputs) are treated as epoch 0 and land
/// unshifted at the start of the timeline.
pub fn merge_chrome_traces(inputs: &[(String, String)]) -> io::Result<String> {
    if inputs.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "no trace files to merge",
        ));
    }
    let mut files = Vec::with_capacity(inputs.len());
    for (label, text) in inputs {
        files.push(read_trace(text, label)?);
    }
    let base_epoch = files.iter().map(|f| f.epoch_ns).min().unwrap_or(0);
    let mut merged = Vec::new();
    for (i, file) in files.iter().enumerate() {
        let shift_us = (file.epoch_ns.saturating_sub(base_epoch)) as f64 / 1e3;
        let pid = (i + 1) as f64;
        for ev in &file.events {
            let Value::Object(map) = ev else {
                continue; // tolerate non-object entries
            };
            let mut map: BTreeMap<String, Value> = map.clone();
            if let Some(Value::Number(ts)) = map.get("ts") {
                let shifted = ts + shift_us;
                map.insert("ts".to_string(), Value::Number(shifted));
            }
            map.insert("pid".to_string(), Value::Number(pid));
            merged.push(Value::Object(map));
        }
    }
    // Stable timeline: sort by shifted start time.
    merged.sort_by(|a, b| {
        let ta = a.get("ts").and_then(|t| t.as_f64()).unwrap_or(0.0);
        let tb = b.get("ts").and_then(|t| t.as_f64()).unwrap_or(0.0);
        ta.partial_cmp(&tb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut doc = BTreeMap::new();
    doc.insert(
        "displayTimeUnit".to_string(),
        Value::String("ms".to_string()),
    );
    doc.insert("epochNs".to_string(), Value::String(base_epoch.to_string()));
    doc.insert("traceEvents".to_string(), Value::Array(merged));
    Ok(Value::Object(doc).dump())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Tracer;

    fn trace_text(tracer: &Tracer) -> String {
        let mut out = Vec::new();
        tracer.write_chrome_trace(&mut out).unwrap();
        String::from_utf8(out).unwrap()
    }

    #[test]
    fn merges_two_tracers_onto_one_timeline() {
        let a = Tracer::new(16);
        drop(a.span_root("client", "fetch"));
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = Tracer::new(16);
        drop(b.span("serve", "request"));
        let merged = merge_chrome_traces(&[
            ("client".to_string(), trace_text(&a)),
            ("server".to_string(), trace_text(&b)),
        ])
        .unwrap();
        let doc = parse(&merged).unwrap();
        let events = doc.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        assert_eq!(events.len(), 2);
        // Each file gets its own pid lane.
        let pids: Vec<f64> = events
            .iter()
            .map(|e| e.get("pid").unwrap().as_f64().unwrap())
            .collect();
        assert!(pids.contains(&1.0) && pids.contains(&2.0), "{pids:?}");
        // b's tracer epoch is ≥2ms after a's, so its event is shifted
        // onto a's timeline and sorts last.
        let last = events.last().unwrap();
        assert_eq!(last.get("name").unwrap().as_str(), Some("request"));
        assert!(last.get("ts").unwrap().as_f64().unwrap() >= 2_000.0);
        // Distributed-trace args pass through untouched.
        let first = &events[0];
        assert!(first.get("args").and_then(|a| a.get("trace")).is_some());
    }

    #[test]
    fn rejects_garbage_and_empty_input() {
        assert!(merge_chrome_traces(&[]).is_err());
        assert!(merge_chrome_traces(&[("x".to_string(), "{}".to_string())]).is_err());
        assert!(merge_chrome_traces(&[("x".to_string(), "not json".to_string())]).is_err());
    }

    #[test]
    fn epochless_input_lands_at_timeline_start() {
        let legacy =
            r#"{"traceEvents":[{"name":"old","ph":"X","pid":1,"tid":1,"ts":5.0,"dur":1.0}]}"#;
        let merged = merge_chrome_traces(&[("legacy".to_string(), legacy.to_string())]).unwrap();
        let doc = parse(&merged).unwrap();
        let ev = &doc.get("traceEvents").and_then(|e| e.as_array()).unwrap()[0];
        assert_eq!(ev.get("ts").unwrap().as_f64(), Some(5.0));
        assert_eq!(doc.get("epochNs").unwrap().as_str(), Some("0"));
    }
}
