//! Prometheus text exposition (format version 0.0.4), `std`-only.
//!
//! [`write_prometheus`] renders a [`RegistrySnapshot`] as the plain
//! `text/plain; version=0.0.4` format every Prometheus-compatible
//! scraper understands: counters and gauges as single samples,
//! histograms as cumulative `_bucket{le="…"}` series plus `_sum` and
//! `_count`, derived from the registry's log-bucketed
//! [`HistogramSnapshot`](crate::HistogramSnapshot)s. Metric names are
//! sanitized (`.` → `_`) to the Prometheus charset.
//!
//! A deliberately minimal line parser ([`parse_prometheus`]) rides
//! along for self-checks: the scrape CLI verifies required families are
//! present, and property tests prove the writer's output round-trips
//! (buckets cumulative and monotone, `_count`/`_sum` consistent).
//!
//! Every numeric sample is an integer rendered in full, so u64 counts
//! survive the round-trip losslessly (the parser keeps raw value
//! strings and never goes through f64).

use crate::histogram::bucket_bounds;
use crate::registry::{MetricValue, RegistrySnapshot};
use std::io::{self, Write};

/// Maps a registry metric name (`pipeline.fetch_ns`) onto the
/// Prometheus charset `[a-zA-Z0-9_:]`: every other byte becomes `_`,
/// and a leading digit gets a `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Writes `snap` in Prometheus text exposition format.
///
/// Histogram `le` labels are the *exclusive* upper bounds of the
/// underlying log buckets; the ≤12.5% bucket quantization already
/// dwarfs the half-open/closed boundary difference.
pub fn write_prometheus(snap: &RegistrySnapshot, w: &mut impl Write) -> io::Result<()> {
    for (name, value) in &snap.metrics {
        let pname = sanitize_name(name);
        match value {
            MetricValue::Counter(v) => {
                writeln!(w, "# TYPE {pname} counter")?;
                writeln!(w, "{pname} {v}")?;
            }
            MetricValue::Gauge(v) => {
                writeln!(w, "# TYPE {pname} gauge")?;
                writeln!(w, "{pname} {v}")?;
            }
            MetricValue::Histogram(h) => {
                writeln!(w, "# TYPE {pname} histogram")?;
                let mut cum = 0u64;
                for (idx, &n) in h.counts.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cum += n;
                    let (_, hi) = bucket_bounds(idx);
                    writeln!(w, "{pname}_bucket{{le=\"{hi}\"}} {cum}")?;
                }
                writeln!(w, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count)?;
                writeln!(w, "{pname}_sum {}", h.sum)?;
                writeln!(w, "{pname}_count {}", h.count)?;
            }
        }
    }
    Ok(())
}

/// [`write_prometheus`] into a `String`.
pub fn prometheus_text(snap: &RegistrySnapshot) -> String {
    let mut out = Vec::new();
    // Vec<u8> writes are infallible.
    let _ = write_prometheus(snap, &mut out);
    String::from_utf8(out).unwrap_or_default()
}

/// One parsed sample line. The value is kept as its raw string so u64
/// counts compare losslessly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromSample {
    /// Sample name (`pipeline_fetch_ns_bucket`).
    pub name: String,
    /// The `le` label value when present (`"+Inf"`, `"4096"`, …).
    pub le: Option<String>,
    /// Raw value token.
    pub value: String,
}

/// Result of [`parse_prometheus`]: declared families and sample lines,
/// in file order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PromParsed {
    /// `(family name, kind)` pairs from `# TYPE` lines.
    pub types: Vec<(String, String)>,
    /// All sample lines.
    pub samples: Vec<PromSample>,
}

impl PromParsed {
    /// The declared kind of `family`, if any.
    pub fn kind(&self, family: &str) -> Option<&str> {
        self.types
            .iter()
            .find(|(n, _)| n == family)
            .map(|(_, k)| k.as_str())
    }

    /// Samples whose name equals `name` exactly.
    pub fn samples_named(&self, name: &str) -> Vec<&PromSample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

/// Minimal exposition-format parser covering exactly what
/// [`write_prometheus`] emits: `# TYPE` lines, bare-name samples, and
/// samples with a single `le` label. Anything else is an error.
pub fn parse_prometheus(text: &str) -> Result<PromParsed, String> {
    let mut out = PromParsed::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_ascii_whitespace();
            let (Some(name), Some(kind), None) = (it.next(), it.next(), it.next()) else {
                return Err(format!("line {}: malformed TYPE line", lineno + 1));
            };
            out.types.push((name.to_string(), kind.to_string()));
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments (HELP etc.)
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value", lineno + 1))?;
        let (name, le) = match name_part.split_once('{') {
            None => (name_part.to_string(), None),
            Some((name, labels)) => {
                let labels = labels
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {}: unterminated labels", lineno + 1))?;
                let le = labels
                    .strip_prefix("le=\"")
                    .and_then(|l| l.strip_suffix('"'))
                    .ok_or_else(|| format!("line {}: expected single le label", lineno + 1))?;
                (name.to_string(), Some(le.to_string()))
            }
        };
        if name.is_empty() || value.is_empty() {
            return Err(format!("line {}: empty name or value", lineno + 1));
        }
        let valid = |c: char| c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if !name.chars().all(valid) || name.starts_with(|c: char| c.is_ascii_digit()) {
            return Err(format!("line {}: invalid metric name {name:?}", lineno + 1));
        }
        out.samples.push(PromSample {
            name,
            le,
            value: value.to_string(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("pipeline.fetch_ns"), "pipeline_fetch_ns");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name("a-b c"), "a_b_c");
    }

    #[test]
    fn counters_and_gauges_expose() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests").add(7);
        reg.gauge("pool.resident_bytes").set(-3);
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("# TYPE serve_requests counter\nserve_requests 7\n"));
        assert!(text.contains("# TYPE pool_resident_bytes gauge\npool_resident_bytes -3\n"));
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed.kind("serve_requests"), Some("counter"));
        assert_eq!(parsed.samples_named("serve_requests")[0].value, "7");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_consistent() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("demo.lat");
        for v in [1u64, 1, 5, 900, 1_000_000] {
            h.record(v);
        }
        let text = prometheus_text(&reg.snapshot());
        let parsed = parse_prometheus(&text).unwrap();
        assert_eq!(parsed.kind("demo_lat"), Some("histogram"));
        let buckets = parsed.samples_named("demo_lat_bucket");
        let counts: Vec<u64> = buckets.iter().map(|s| s.value.parse().unwrap()).collect();
        assert!(
            counts.windows(2).all(|w| w[0] <= w[1]),
            "monotone: {counts:?}"
        );
        assert_eq!(buckets.last().unwrap().le.as_deref(), Some("+Inf"));
        assert_eq!(*counts.last().unwrap(), 5);
        assert_eq!(parsed.samples_named("demo_lat_count")[0].value, "5");
        assert_eq!(
            parsed.samples_named("demo_lat_sum")[0].value,
            (1u64 + 1 + 5 + 900 + 1_000_000).to_string()
        );
    }

    #[test]
    fn empty_histogram_still_has_inf_bucket() {
        let reg = MetricsRegistry::new();
        reg.histogram("quiet.lat");
        let parsed = parse_prometheus(&prometheus_text(&reg.snapshot())).unwrap();
        let buckets = parsed.samples_named("quiet_lat_bucket");
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].le.as_deref(), Some("+Inf"));
        assert_eq!(buckets[0].value, "0");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_prometheus("no_value_here\n").is_err());
        assert!(parse_prometheus("bad{le=\"1\" 2\n").is_err());
        assert!(parse_prometheus("bad{foo=\"1\"} 2\n").is_err());
        assert!(parse_prometheus("1leading 2\n").is_err());
    }
}
