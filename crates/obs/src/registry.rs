//! Named-metric registry: counters, gauges, and histograms, registered
//! once and recorded lock-free thereafter.
//!
//! Registration (`counter("pipeline.samples")`) takes a short mutex on
//! the name table and returns an `Arc` handle; every subsequent
//! `add`/`set`/`record` through the handle touches only atomics. The
//! same name always resolves to the same instrument, so independent
//! subsystems (pipeline workers, the serving tier, the training loop)
//! sharing one registry produce one coherent snapshot.

use crate::histogram::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (queue depths, active connections, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(i64),
    /// Full histogram distribution.
    Histogram(HistogramSnapshot),
}

/// Point-in-time copy of every registered metric, name-sorted.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    /// `(name, value)` pairs in name order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl RegistrySnapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Counter value by name (0 when absent or not a counter).
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by name (0 when absent or not a gauge).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram snapshot by name, when present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

/// The registry. Cheap to share (`Arc<MetricsRegistry>`); instruments
/// handed out live as long as any handle, even if the registry drops.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self.metrics.lock().keys().cloned().collect();
        f.debug_struct("MetricsRegistry")
            .field("metrics", &names)
            .finish()
    }
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Returns the counter registered under `name`, creating it on
    /// first use. Panics if `name` is already a different metric kind —
    /// that is a naming bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different kind"),
        }
    }

    /// Snapshots every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.metrics.lock();
        let metrics = map
            .iter()
            .map(|(name, m)| {
                let value = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                (name.clone(), value)
            })
            .collect();
        RegistrySnapshot { metrics }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_instrument() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(3);
        reg.counter("a").add(4);
        assert_eq!(reg.counter("a").get(), 7);
    }

    #[test]
    fn snapshot_covers_all_kinds_in_name_order() {
        let reg = MetricsRegistry::new();
        reg.counter("z.count").inc();
        reg.gauge("a.depth").set(-2);
        reg.histogram("m.lat").record(100);
        let s = reg.snapshot();
        let names: Vec<&str> = s.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.depth", "m.lat", "z.count"]);
        assert_eq!(s.counter("z.count"), 1);
        assert_eq!(s.get("a.depth"), Some(&MetricValue::Gauge(-2)));
        assert_eq!(s.histogram("m.lat").unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.histogram("x");
    }

    #[test]
    fn handles_outlive_registry() {
        let c = MetricsRegistry::new().counter("orphan");
        c.inc();
        assert_eq!(c.get(), 1);
    }
}
