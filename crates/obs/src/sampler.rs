//! Pipeline bottleneck attribution: a background sampler that watches
//! the metrics registry and names the stage limiting throughput.
//!
//! The paper's per-stage breakdowns (Figs 8–12) answer "which
//! preprocessing stage is the bottleneck" offline; [`PipelineSampler`]
//! answers it live. Each tick it snapshots the registry, computes
//! per-stage **utilization** — busy nanoseconds accumulated in the
//! stage's latency histogram divided by wall time × worker count — and
//! attributes the bottleneck to the stage with the highest utilization,
//! with a confidence score from the margin over the runner-up. The
//! [`AttributionReport`] also carries per-stage p95s, queue-depth
//! gauges, pool/cache hit rates, and the tracer's dropped-span count,
//! so a stalled consumer, an undersized pool, and span loss are all
//! visible in one line.
//!
//! The report is the structured signal ROADMAP's self-tuning controller
//! will consume; today it feeds `sciml fetch --stats --watch` and
//! `results/BENCH_obs_attribution.json`.

use crate::registry::{MetricsRegistry, RegistrySnapshot};
use crate::trace::Tracer;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One pipeline stage the sampler attributes time to.
#[derive(Debug, Clone)]
pub struct StageSpec {
    /// Stage name in reports (`"fetch"`, `"decode"`).
    pub name: String,
    /// Registry name of the stage's latency histogram, whose `sum` is
    /// the stage's accumulated busy nanoseconds.
    pub histogram: String,
    /// Workers concurrently executing the stage; scales the busy-time
    /// budget (`elapsed × workers`).
    pub workers: u64,
}

impl StageSpec {
    /// Convenience constructor.
    pub fn new(name: &str, histogram: &str, workers: u64) -> Self {
        Self {
            name: name.to_string(),
            histogram: histogram.to_string(),
            workers: workers.max(1),
        }
    }
}

/// The standard data-pipeline stage set (fetch on reader threads,
/// decode on decoder threads) against the `pipeline.*` histograms.
pub fn pipeline_stages(reader_threads: u64, decode_threads: u64) -> Vec<StageSpec> {
    vec![
        StageSpec::new("fetch", "pipeline.fetch_ns", reader_threads),
        StageSpec::new("decode", "pipeline.decode_ns", decode_threads),
    ]
}

/// Per-stage slice of an [`AttributionReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// Stage name.
    pub name: String,
    /// Workers assumed for the stage.
    pub workers: u64,
    /// Busy nanoseconds accumulated over the report window.
    pub busy_ns: u64,
    /// `busy_ns / (elapsed_ns × workers)`, clamped to `[0, 1]`.
    pub utilization: f64,
    /// p95 of the stage latency histogram (full run so far).
    pub p95_ns: u64,
    /// Operations recorded in the window.
    pub count: u64,
}

/// Snapshot of "where is the pipeline spending its time".
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// Wall-clock window the report covers, nanoseconds.
    pub elapsed_ns: u64,
    /// Name of the stage with the highest utilization; `"idle"` when no
    /// stage did any work.
    pub bottleneck: String,
    /// Margin of the winner over the runner-up, `(u1 - u2) / u1`,
    /// clamped to `[0, 1]`. 0 when nothing ran.
    pub confidence: f64,
    /// Per-stage breakdown, in spec order.
    pub stages: Vec<StageReport>,
    /// Buffer-pool hit rate in `[0, 1]`, when the pool counters exist.
    pub pool_hit_rate: Option<f64>,
    /// Server DRAM cache hit rate in `[0, 1]`, when the cache counters
    /// exist.
    pub cache_hit_rate: Option<f64>,
    /// `(gauge name, depth)` for every `pipeline.queue.*` gauge.
    pub queue_depths: Vec<(String, i64)>,
    /// Spans overwritten in the tracer ring so far.
    pub dropped_spans: u64,
}

fn rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    if total == 0 {
        None
    } else {
        Some(hits as f64 / total as f64)
    }
}

/// Computes an attribution report from two registry snapshots taken
/// `elapsed_ns` apart. Pure: all inputs explicit, trivially testable.
pub fn attribute(
    prev: &RegistrySnapshot,
    cur: &RegistrySnapshot,
    elapsed_ns: u64,
    stages: &[StageSpec],
    dropped_spans: u64,
) -> AttributionReport {
    let elapsed_ns = elapsed_ns.max(1);
    let mut reports = Vec::with_capacity(stages.len());
    for spec in stages {
        let (busy_ns, count, p95_ns) = match cur.histogram(&spec.histogram) {
            Some(h) => {
                let (prev_sum, prev_count) = prev
                    .histogram(&spec.histogram)
                    .map(|p| (p.sum, p.count))
                    .unwrap_or((0, 0));
                (
                    h.sum.saturating_sub(prev_sum),
                    h.count.saturating_sub(prev_count),
                    h.percentile(0.95),
                )
            }
            None => (0, 0, 0),
        };
        let budget = (elapsed_ns as f64) * (spec.workers as f64);
        reports.push(StageReport {
            name: spec.name.clone(),
            workers: spec.workers,
            busy_ns,
            utilization: (busy_ns as f64 / budget).clamp(0.0, 1.0),
            p95_ns,
            count,
        });
    }
    let (bottleneck, confidence) = {
        let mut utils: Vec<(usize, f64)> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| (i, r.utilization))
            .collect();
        utils.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        match utils.first() {
            Some(&(idx, top)) if top > 0.0 => {
                let runner_up = utils.get(1).map(|&(_, u)| u).unwrap_or(0.0);
                (
                    reports[idx].name.clone(),
                    ((top - runner_up) / top).clamp(0.0, 1.0),
                )
            }
            _ => ("idle".to_string(), 0.0),
        }
    };
    AttributionReport {
        elapsed_ns,
        bottleneck,
        confidence,
        stages: reports,
        pool_hit_rate: rate(
            cur.counter("pipeline.pool.hits"),
            cur.counter("pipeline.pool.misses"),
        ),
        cache_hit_rate: rate(
            cur.counter("pipeline.cache.memory.hits"),
            cur.counter("pipeline.cache.memory.misses"),
        ),
        queue_depths: cur
            .metrics
            .iter()
            .filter(|(n, _)| n.starts_with("pipeline.queue."))
            .map(|(n, _)| (n.clone(), cur.gauge(n)))
            .collect(),
        dropped_spans,
    }
}

fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(x) => format!("{x:.4}"),
        None => "null".to_string(),
    }
}

impl AttributionReport {
    /// Renders the report as a self-describing JSON object
    /// (`"schema": "sciml.obs.attribution.v1"`).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push_str("{\"schema\":\"sciml.obs.attribution.v1\"");
        s.push_str(&format!(",\"elapsed_ns\":{}", self.elapsed_ns));
        s.push_str(&format!(
            ",\"bottleneck\":\"{}\"",
            crate::json::escape(&self.bottleneck)
        ));
        s.push_str(&format!(",\"confidence\":{:.4}", self.confidence));
        s.push_str(",\"stages\":[");
        for (i, st) in self.stages.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"workers\":{},\"busy_ns\":{},\"utilization\":{:.4},\"p95_ns\":{},\"count\":{}}}",
                crate::json::escape(&st.name),
                st.workers,
                st.busy_ns,
                st.utilization,
                st.p95_ns,
                st.count
            ));
        }
        s.push(']');
        s.push_str(&format!(
            ",\"pool_hit_rate\":{}",
            json_opt(self.pool_hit_rate)
        ));
        s.push_str(&format!(
            ",\"cache_hit_rate\":{}",
            json_opt(self.cache_hit_rate)
        ));
        s.push_str(",\"queues\":{");
        for (i, (name, depth)) in self.queue_depths.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\"{}\":{}", crate::json::escape(name), depth));
        }
        s.push('}');
        s.push_str(&format!(",\"dropped_spans\":{}", self.dropped_spans));
        s.push('}');
        s
    }

    /// One human-readable status line for `--stats --watch`.
    pub fn live_line(&self) -> String {
        let mut s = format!(
            "[obs] bottleneck={} conf={:.2}",
            self.bottleneck, self.confidence
        );
        for st in &self.stages {
            s.push_str(&format!(
                " | {} u={:.2} p95={:.2}ms",
                st.name,
                st.utilization,
                st.p95_ns as f64 / 1e6
            ));
        }
        if let Some(p) = self.pool_hit_rate {
            s.push_str(&format!(" | pool {:.0}%", p * 100.0));
        }
        if let Some(c) = self.cache_hit_rate {
            s.push_str(&format!(" | cache {:.0}%", c * 100.0));
        }
        for (name, depth) in &self.queue_depths {
            let short = name.rsplit('.').next().unwrap_or(name);
            s.push_str(&format!(" | {short}={depth}"));
        }
        if self.dropped_spans > 0 {
            s.push_str(&format!(" | dropped_spans={}", self.dropped_spans));
        }
        s
    }
}

/// Sampler configuration.
#[derive(Debug, Clone)]
pub struct SamplerConfig {
    /// Tick period.
    pub interval: Duration,
    /// Stages to attribute between.
    pub stages: Vec<StageSpec>,
    /// Print [`AttributionReport::live_line`] to stderr on every tick.
    pub live: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            interval: Duration::from_millis(500),
            stages: pipeline_stages(2, 2),
            live: false,
        }
    }
}

/// Background thread periodically attributing pipeline time.
///
/// The baseline snapshot is taken at spawn, so every report covers the
/// run so far (stable attribution, immune to tick jitter). On each tick
/// the sampler also publishes the tracer's dropped-span count as the
/// `obs.trace.dropped_spans` gauge.
#[derive(Debug)]
pub struct PipelineSampler {
    stop: Arc<AtomicBool>,
    latest: Arc<Mutex<Option<AttributionReport>>>,
    handle: Option<std::thread::JoinHandle<()>>,
    registry: Arc<MetricsRegistry>,
    tracer: Arc<Tracer>,
    baseline: RegistrySnapshot,
    started: Instant,
    stages: Vec<StageSpec>,
}

impl PipelineSampler {
    /// Starts the sampling thread.
    pub fn spawn(registry: Arc<MetricsRegistry>, tracer: Arc<Tracer>, cfg: SamplerConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let latest = Arc::new(Mutex::new(None));
        let baseline = registry.snapshot();
        let started = Instant::now();
        let handle = {
            let stop = Arc::clone(&stop);
            let latest = Arc::clone(&latest);
            let registry = Arc::clone(&registry);
            let tracer = Arc::clone(&tracer);
            let baseline = baseline.clone();
            let stages = cfg.stages.clone();
            let interval = cfg.interval;
            let live = cfg.live;
            std::thread::Builder::new()
                .name("obs-sampler".to_string())
                .spawn(move || {
                    let chunk = Duration::from_millis(50).min(interval);
                    let mut next = Instant::now() + interval;
                    while !stop.load(Ordering::Relaxed) {
                        if Instant::now() < next {
                            std::thread::sleep(chunk);
                            continue;
                        }
                        next += interval;
                        let dropped = tracer.dropped();
                        registry
                            .gauge("obs.trace.dropped_spans")
                            .set(i64::try_from(dropped).unwrap_or(i64::MAX));
                        let report = attribute(
                            &baseline,
                            &registry.snapshot(),
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX),
                            &stages,
                            dropped,
                        );
                        if live {
                            eprintln!("{}", report.live_line());
                        }
                        *latest.lock() = Some(report);
                    }
                })
                .ok()
        };
        Self {
            stop,
            latest,
            handle,
            registry,
            tracer,
            baseline,
            started,
            stages: cfg.stages,
        }
    }

    /// The most recent tick's report, if one has fired yet.
    pub fn latest(&self) -> Option<AttributionReport> {
        self.latest.lock().clone()
    }

    /// Stops the thread and returns a final full-run report.
    pub fn stop(mut self) -> AttributionReport {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        let dropped = self.tracer.dropped();
        self.registry
            .gauge("obs.trace.dropped_spans")
            .set(i64::try_from(dropped).unwrap_or(i64::MAX));
        attribute(
            &self.baseline,
            &self.registry.snapshot(),
            u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX),
            &self.stages,
            dropped,
        )
    }
}

impl Drop for PipelineSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(fetch_busy: u64, decode_busy: u64, per_op_ns: u64) -> Arc<MetricsRegistry> {
        let reg = MetricsRegistry::new();
        let f = reg.histogram("pipeline.fetch_ns");
        let d = reg.histogram("pipeline.decode_ns");
        for _ in 0..fetch_busy / per_op_ns {
            f.record(per_op_ns);
        }
        for _ in 0..decode_busy / per_op_ns {
            d.record(per_op_ns);
        }
        reg
    }

    #[test]
    fn names_the_busier_stage() {
        let stages = pipeline_stages(1, 1);
        let empty = MetricsRegistry::new().snapshot();
        // Decode-bound: decode accumulated 9× the busy time.
        let reg = reg_with(1_000_000, 9_000_000, 100_000);
        let report = attribute(&empty, &reg.snapshot(), 10_000_000, &stages, 0);
        assert_eq!(report.bottleneck, "decode");
        assert!(report.confidence > 0.5, "conf={}", report.confidence);
        // Fetch-bound: mirror image.
        let reg = reg_with(9_000_000, 1_000_000, 100_000);
        let report = attribute(&empty, &reg.snapshot(), 10_000_000, &stages, 0);
        assert_eq!(report.bottleneck, "fetch");
    }

    #[test]
    fn idle_pipeline_reports_idle() {
        let stages = pipeline_stages(2, 2);
        let snap = MetricsRegistry::new().snapshot();
        let report = attribute(&snap, &snap, 1_000_000, &stages, 0);
        assert_eq!(report.bottleneck, "idle");
        assert_eq!(report.confidence, 0.0);
    }

    #[test]
    fn baseline_subtraction_windows_the_busy_time() {
        let stages = pipeline_stages(1, 1);
        let reg = reg_with(5_000_000, 0, 1_000_000);
        let prev = reg.snapshot();
        reg.histogram("pipeline.decode_ns").record(2_000_000);
        let report = attribute(&prev, &reg.snapshot(), 2_000_000, &stages, 0);
        // Fetch busy time is entirely in the baseline; only decode
        // advanced inside the window.
        assert_eq!(report.stages[0].busy_ns, 0);
        assert_eq!(report.stages[1].busy_ns, 2_000_000);
        assert_eq!(report.bottleneck, "decode");
    }

    #[test]
    fn report_json_is_valid_and_self_describing() {
        let stages = pipeline_stages(2, 2);
        let reg = reg_with(1_000_000, 3_000_000, 100_000);
        reg.counter("pipeline.pool.hits").add(99);
        reg.counter("pipeline.pool.misses").add(1);
        reg.gauge("pipeline.queue.raw_depth").set(7);
        let empty = MetricsRegistry::new().snapshot();
        let report = attribute(&empty, &reg.snapshot(), 10_000_000, &stages, 3);
        let v = crate::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("sciml.obs.attribution.v1")
        );
        assert_eq!(v.get("bottleneck").and_then(|s| s.as_str()), Some("decode"));
        assert_eq!(
            v.get("queues")
                .and_then(|q| q.get("pipeline.queue.raw_depth"))
                .and_then(|d| d.as_f64()),
            Some(7.0)
        );
        assert_eq!(v.get("dropped_spans").and_then(|d| d.as_f64()), Some(3.0));
        assert!(report.live_line().contains("bottleneck=decode"));
    }

    #[test]
    fn sampler_ticks_and_publishes_dropped_spans() {
        let reg = MetricsRegistry::new();
        let tracer = Tracer::new(2);
        for _ in 0..5 {
            drop(tracer.span("t", "s")); // overflow the ring → drops
        }
        let sampler = PipelineSampler::spawn(
            Arc::clone(&reg),
            Arc::clone(&tracer),
            SamplerConfig {
                interval: Duration::from_millis(10),
                stages: pipeline_stages(1, 1),
                live: false,
            },
        );
        reg.histogram("pipeline.fetch_ns").record(1_000_000);
        let deadline = Instant::now() + Duration::from_secs(5);
        while sampler.latest().is_none() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(sampler.latest().is_some(), "sampler never ticked");
        let report = sampler.stop();
        assert_eq!(report.dropped_spans, 3);
        assert_eq!(reg.snapshot().gauge("obs.trace.dropped_spans"), 3);
        assert_eq!(report.bottleneck, "fetch");
    }
}
