//! Publishes the process-wide SIMD decode-kernel dispatch counters
//! into a metrics registry, following the [`crate::lockcheck`] pattern:
//! hot paths bump plain atomics in `sciml-simd`; export points call
//! [`publish`] to lift them into `codec.simd.*` gauges right before a
//! snapshot or scrape.

use crate::registry::MetricsRegistry;
use std::sync::Arc;

/// Sets the `codec.simd.*` gauges from the current dispatch counters
/// (gauges, because the atomics are cumulative and re-publishing must
/// overwrite, not add):
///
/// - `codec.simd.<kernel>.<level>` — dispatches of one kernel at one
///   tier, emitted only once non-zero so expositions stay compact;
/// - `codec.simd.level.<level>` — per-tier totals across kernels
///   (always emitted, so dashboards get a stable series);
/// - `codec.simd.dispatch_total` — grand total, host-independent.
pub fn publish(registry: &Arc<MetricsRegistry>) {
    // One read of the atomics; totals derive from the same snapshot so
    // the published gauges are mutually consistent even while decodes
    // keep running on other threads.
    let counts = sciml_simd::dispatch_counts();
    let mut total = 0u64;
    let mut by_level = [0u64; sciml_simd::ALL_LEVELS.len()];
    for &(kernel, level, n) in &counts {
        total += n;
        by_level[level.index()] += n;
        if n > 0 {
            let name = format!("codec.simd.{}.{}", kernel.name(), level.name());
            registry.gauge(&name).set(n as i64);
        }
    }
    for level in sciml_simd::ALL_LEVELS {
        let name = format!("codec.simd.level.{}", level.name());
        registry.gauge(&name).set(by_level[level.index()] as i64);
    }
    registry
        .gauge("codec.simd.dispatch_total")
        .set(total as i64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sciml_simd::{record, Kernel};

    #[test]
    fn publish_is_consistent_and_overwrites() {
        let reg = MetricsRegistry::new();
        record(Kernel::HalfWiden, sciml_simd::arch_level());
        publish(&reg);
        let snap = reg.snapshot();
        let total = snap.gauge("codec.simd.dispatch_total");
        assert!(total > 0);
        let level_sum: i64 = sciml_simd::ALL_LEVELS
            .iter()
            .map(|l| snap.gauge(&format!("codec.simd.level.{}", l.name())))
            .sum();
        assert_eq!(level_sum, total);
        // Re-publishing replaces rather than accumulates (no dispatches
        // happen between the two calls in this test binary).
        publish(&reg);
        assert_eq!(reg.snapshot().gauge("codec.simd.dispatch_total"), total);
    }
}
