//! Lightweight span tracer emitting Chrome trace-event JSON.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; each completed span
//! becomes one `ph: "X"` (complete) event with the recording thread's
//! id and wall-clock offsets from the tracer's epoch. Events land in a
//! bounded ring buffer — when full, the oldest events are overwritten
//! and counted, so a long run keeps its *tail* (the interesting part of
//! an epoch timeline) at fixed memory cost.
//!
//! A disabled tracer costs one relaxed atomic load per span: no clock
//! read, no allocation, no lock. The emitted file loads directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::context::{fresh_id, ContextGuard, TraceContext};
use parking_lot::Mutex;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Small dense per-process thread ids (`ThreadId` has no stable integer
/// accessor, and Perfetto tracks lanes by small integers anyway).
fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// Distributed-trace identity of a span: which trace it belongs to,
/// its own id, and its parent's id (0 = trace root).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanIds {
    /// Trace the span belongs to (shared across processes).
    pub trace_id: u64,
    /// The span's own id.
    pub span_id: u64,
    /// Parent span id; 0 marks a trace root.
    pub parent_id: u64,
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (`"fetch"`, `"decode"`, …).
    pub name: &'static str,
    /// Category lane (`"pipeline"`, `"serve"`, …).
    pub cat: &'static str,
    /// Dense id of the recording thread.
    pub tid: u64,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
    /// Distributed-trace identity, when the span was opened inside (or
    /// as the root of) a [`TraceContext`].
    pub ids: Option<SpanIds>,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position once the buffer has wrapped.
    next: usize,
    wrapped: bool,
}

/// Span tracer. Share as `Arc<Tracer>`; spans record from any thread.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    /// Wall-clock time of `epoch`, nanoseconds since the Unix epoch.
    /// Lets traces from different processes be aligned after the fact.
    epoch_unix_ns: u64,
    capacity: usize,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Tracer {
    /// Enabled tracer keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Arc<Self> {
        let epoch_unix_ns = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        Arc::new(Self {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            epoch_unix_ns,
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                next: 0,
                wrapped: false,
            }),
            dropped: AtomicU64::new(0),
        })
    }

    /// Disabled tracer: spans are free, nothing is recorded. Can be
    /// enabled later with [`Tracer::set_enabled`].
    pub fn disabled() -> Arc<Self> {
        let t = Self::new(1024);
        t.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Wall-clock time of the tracer's epoch, nanoseconds since the
    /// Unix epoch. `trace-merge` uses it to align timelines recorded in
    /// different processes.
    pub fn epoch_unix_ns(&self) -> u64 {
        self.epoch_unix_ns
    }

    /// Opens a span; it records when the guard drops. When the tracer
    /// is disabled this is a single atomic load. If a [`TraceContext`]
    /// is installed on the current thread the span joins that trace as
    /// a child and becomes the current context for its extent.
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::inert(cat, name);
        }
        let (ids, ctx) = match TraceContext::current() {
            Some(cur) => {
                let child = cur.child();
                (
                    Some(SpanIds {
                        trace_id: child.trace_id,
                        span_id: child.span_id,
                        parent_id: cur.span_id,
                    }),
                    Some(TraceContext::install(child)),
                )
            }
            None => (None, None),
        };
        SpanGuard {
            tracer: Some(self),
            cat,
            name,
            start: Some(Instant::now()),
            ids,
            ctx,
        }
    }

    /// Opens a span that starts a brand-new trace, installing its
    /// context on the current thread so nested spans (and outbound
    /// requests) join the trace. No-op when disabled.
    pub fn span_root(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::inert(cat, name);
        }
        let ctx = TraceContext::root();
        SpanGuard {
            tracer: Some(self),
            cat,
            name,
            start: Some(Instant::now()),
            ids: Some(SpanIds {
                trace_id: ctx.trace_id,
                span_id: ctx.span_id,
                parent_id: 0,
            }),
            ctx: Some(TraceContext::install(ctx)),
        }
    }

    /// Opens a span whose parent lives in *another process* (the ids
    /// arrived over the wire). The span joins `trace_id` under
    /// `parent_span` and installs itself as the current context so
    /// local child spans nest beneath it. No-op when disabled.
    pub fn span_linked(
        &self,
        cat: &'static str,
        name: &'static str,
        trace_id: u64,
        parent_span: u64,
    ) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard::inert(cat, name);
        }
        let ctx = TraceContext {
            trace_id,
            span_id: fresh_id(),
        };
        SpanGuard {
            tracer: Some(self),
            cat,
            name,
            start: Some(Instant::now()),
            ids: Some(SpanIds {
                trace_id,
                span_id: ctx.span_id,
                parent_id: parent_span,
            }),
            ctx: Some(TraceContext::install(ctx)),
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            let pos = ring.next;
            ring.buf[pos] = ev;
            ring.next = (pos + 1) % self.capacity;
            ring.wrapped = true;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Retained events in recording order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock();
        if !ring.wrapped {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(ring.buf.len());
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
            out
        }
    }

    /// Writes the retained events as a Chrome trace-event JSON object
    /// (`{"traceEvents": [...]}`), timestamps in microseconds.
    ///
    /// Distributed-trace ids are emitted as fixed-width hex *strings*
    /// under `args` (u64s do not survive an f64-based JSON parser), and
    /// the tracer's wall-clock epoch rides along as a top-level
    /// `"epochNs"` string so `trace-merge` can align processes.
    pub fn write_chrome_trace(&self, w: &mut impl Write) -> io::Result<()> {
        let events = self.events();
        write!(
            w,
            "{{\"displayTimeUnit\":\"ms\",\"epochNs\":\"{}\",\"traceEvents\":[",
            self.epoch_unix_ns
        )?;
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}",
                ev.name,
                ev.cat,
                ev.tid,
                ev.start_ns as f64 / 1e3,
                ev.dur_ns as f64 / 1e3,
            )?;
            if let Some(ids) = ev.ids {
                write!(
                    w,
                    ",\"args\":{{\"trace\":\"{:016x}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\"}}",
                    ids.trace_id, ids.span_id, ids.parent_id,
                )?;
            }
            write!(w, "}}")?;
        }
        writeln!(w, "\n]}}")
    }
}

/// RAII span: records on drop. Obtain via [`Tracer::span`],
/// [`Tracer::span_root`], or [`Tracer::span_linked`].
#[must_use = "a span records when the guard drops; binding to _ ends it immediately"]
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    cat: &'static str,
    name: &'static str,
    start: Option<Instant>,
    ids: Option<SpanIds>,
    /// Restores the previous thread-local context when the span ends.
    ctx: Option<ContextGuard>,
}

impl SpanGuard<'_> {
    fn inert(cat: &'static str, name: &'static str) -> Self {
        Self {
            tracer: None,
            cat,
            name,
            start: None,
            ids: None,
            ctx: None,
        }
    }

    /// The span's distributed-trace ids, if it joined a trace.
    pub fn ids(&self) -> Option<SpanIds> {
        self.ids
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        // Uninstall the context before recording so the event captures
        // ids fixed at open time.
        self.ctx = None;
        let (Some(tracer), Some(start)) = (self.tracer, self.start) else {
            return;
        };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let start_ns =
            u64::try_from(start.duration_since(tracer.epoch).as_nanos()).unwrap_or(u64::MAX);
        tracer.push(TraceEvent {
            name: self.name,
            cat: self.cat,
            tid: current_tid(),
            start_ns,
            dur_ns,
            ids: self.ids,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_with_thread_ids() {
        let tracer = Tracer::new(64);
        {
            let _s = tracer.span("test", "outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let t2 = Arc::clone(&tracer);
        std::thread::spawn(move || {
            let _s = t2.span("test", "worker");
        })
        .join()
        .unwrap();
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "outer");
        assert!(events[0].dur_ns >= 1_000_000);
        assert_ne!(events[0].tid, events[1].tid, "distinct threads");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        drop(tracer.span("test", "ignored"));
        assert!(tracer.events().is_empty());
        tracer.set_enabled(true);
        drop(tracer.span("test", "kept"));
        assert_eq!(tracer.events().len(), 1);
    }

    #[test]
    fn ring_keeps_newest_events() {
        let tracer = Tracer::new(4);
        for _ in 0..10 {
            drop(tracer.span("test", "e"));
        }
        let events = tracer.events();
        assert_eq!(events.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        // Oldest-first ordering survives the wrap.
        for w in events.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn root_span_links_children_across_helpers() {
        let tracer = Tracer::new(64);
        {
            let root = tracer.span_root("pipeline", "fetch");
            let root_ids = root.ids().unwrap();
            assert_eq!(root_ids.parent_id, 0);
            {
                let child = tracer.span("serve", "request");
                let child_ids = child.ids().unwrap();
                assert_eq!(child_ids.trace_id, root_ids.trace_id);
                assert_eq!(child_ids.parent_id, root_ids.span_id);
            }
        }
        assert_eq!(TraceContext::current(), None, "context restored");
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        // Children drop (and record) before their parents.
        assert_eq!(events[0].name, "request");
        assert_eq!(events[1].name, "fetch");
    }

    #[test]
    fn linked_span_adopts_remote_parent() {
        let tracer = Tracer::new(16);
        {
            let _s = tracer.span_linked("serve", "request", 0xabcd, 0x1234);
        }
        let ids = tracer.events()[0].ids.unwrap();
        assert_eq!(ids.trace_id, 0xabcd);
        assert_eq!(ids.parent_id, 0x1234);
        assert_ne!(ids.span_id, 0);
    }

    #[test]
    fn plain_span_without_context_has_no_ids() {
        let tracer = Tracer::new(16);
        drop(tracer.span("pipeline", "decode"));
        assert_eq!(tracer.events()[0].ids, None);
    }

    #[test]
    fn disabled_tracer_installs_no_context() {
        let tracer = Tracer::disabled();
        let _s = tracer.span_root("pipeline", "fetch");
        assert_eq!(
            TraceContext::current(),
            None,
            "disabled root span must not leak a context into the thread"
        );
    }

    #[test]
    fn chrome_trace_carries_hex_ids_and_epoch() {
        let tracer = Tracer::new(16);
        drop(tracer.span_root("pipeline", "fetch"));
        let mut out = Vec::new();
        tracer.write_chrome_trace(&mut out).unwrap();
        let v = crate::json::parse(&String::from_utf8(out).unwrap()).unwrap();
        let epoch: u64 = v
            .get("epochNs")
            .and_then(|e| e.as_str())
            .unwrap()
            .parse()
            .unwrap();
        assert!(epoch > 0);
        let ev = &v.get("traceEvents").and_then(|e| e.as_array()).unwrap()[0];
        let args = ev.get("args").unwrap();
        let ids = tracer.events()[0].ids.unwrap();
        assert_eq!(
            args.get("trace").and_then(|t| t.as_str()),
            Some(format!("{:016x}", ids.trace_id).as_str())
        );
        assert_eq!(
            args.get("parent").and_then(|p| p.as_str()),
            Some("0000000000000000")
        );
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let tracer = Tracer::new(16);
        drop(tracer.span("pipeline", "fetch"));
        drop(tracer.span("pipeline", "decode"));
        let mut out = Vec::new();
        tracer.write_chrome_trace(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let v = crate::json::parse(&text).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").and_then(|n| n.as_str()),
            Some("fetch")
        );
    }
}
