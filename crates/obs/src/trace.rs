//! Lightweight span tracer emitting Chrome trace-event JSON.
//!
//! A [`Tracer`] hands out RAII [`SpanGuard`]s; each completed span
//! becomes one `ph: "X"` (complete) event with the recording thread's
//! id and wall-clock offsets from the tracer's epoch. Events land in a
//! bounded ring buffer — when full, the oldest events are overwritten
//! and counted, so a long run keeps its *tail* (the interesting part of
//! an epoch timeline) at fixed memory cost.
//!
//! A disabled tracer costs one relaxed atomic load per span: no clock
//! read, no allocation, no lock. The emitted file loads directly in
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use parking_lot::Mutex;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Small dense per-process thread ids (`ThreadId` has no stable integer
/// accessor, and Perfetto tracks lanes by small integers anyway).
fn current_tid() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Span name (`"fetch"`, `"decode"`, …).
    pub name: &'static str,
    /// Category lane (`"pipeline"`, `"serve"`, …).
    pub cat: &'static str,
    /// Dense id of the recording thread.
    pub tid: u64,
    /// Start offset from the tracer epoch, nanoseconds.
    pub start_ns: u64,
    /// Span duration, nanoseconds.
    pub dur_ns: u64,
}

struct Ring {
    buf: Vec<TraceEvent>,
    /// Next write position once the buffer has wrapped.
    next: usize,
    wrapped: bool,
}

/// Span tracer. Share as `Arc<Tracer>`; spans record from any thread.
pub struct Tracer {
    enabled: AtomicBool,
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
    dropped: AtomicU64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Tracer {
    /// Enabled tracer keeping at most `capacity` most-recent events.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            enabled: AtomicBool::new(true),
            epoch: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                next: 0,
                wrapped: false,
            }),
            dropped: AtomicU64::new(0),
        })
    }

    /// Disabled tracer: spans are free, nothing is recorded. Can be
    /// enabled later with [`Tracer::set_enabled`].
    pub fn disabled() -> Arc<Self> {
        let t = Self::new(1024);
        t.enabled.store(false, Ordering::Relaxed);
        t
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether spans currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Opens a span; it records when the guard drops. When the tracer
    /// is disabled this is a single atomic load.
    pub fn span(&self, cat: &'static str, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                tracer: None,
                cat,
                name,
                start: None,
            };
        }
        SpanGuard {
            tracer: Some(self),
            cat,
            name,
            start: Some(Instant::now()),
        }
    }

    fn push(&self, ev: TraceEvent) {
        let mut ring = self.ring.lock();
        if ring.buf.len() < self.capacity {
            ring.buf.push(ev);
        } else {
            let pos = ring.next;
            ring.buf[pos] = ev;
            ring.next = (pos + 1) % self.capacity;
            ring.wrapped = true;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Retained events in recording order (oldest first).
    pub fn events(&self) -> Vec<TraceEvent> {
        let ring = self.ring.lock();
        if !ring.wrapped {
            ring.buf.clone()
        } else {
            let mut out = Vec::with_capacity(ring.buf.len());
            out.extend_from_slice(&ring.buf[ring.next..]);
            out.extend_from_slice(&ring.buf[..ring.next]);
            out
        }
    }

    /// Writes the retained events as a Chrome trace-event JSON object
    /// (`{"traceEvents": [...]}`), timestamps in microseconds.
    pub fn write_chrome_trace(&self, w: &mut impl Write) -> io::Result<()> {
        let events = self.events();
        write!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(
                w,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
                ev.name,
                ev.cat,
                ev.tid,
                ev.start_ns as f64 / 1e3,
                ev.dur_ns as f64 / 1e3,
            )?;
        }
        writeln!(w, "\n]}}")
    }
}

/// RAII span: records on drop. Obtain via [`Tracer::span`].
#[must_use = "a span records when the guard drops; binding to _ ends it immediately"]
pub struct SpanGuard<'a> {
    tracer: Option<&'a Tracer>,
    cat: &'static str,
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let (Some(tracer), Some(start)) = (self.tracer, self.start) else {
            return;
        };
        let dur_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let start_ns =
            u64::try_from(start.duration_since(tracer.epoch).as_nanos()).unwrap_or(u64::MAX);
        tracer.push(TraceEvent {
            name: self.name,
            cat: self.cat,
            tid: current_tid(),
            start_ns,
            dur_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_with_thread_ids() {
        let tracer = Tracer::new(64);
        {
            let _s = tracer.span("test", "outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let t2 = Arc::clone(&tracer);
        std::thread::spawn(move || {
            let _s = t2.span("test", "worker");
        })
        .join()
        .unwrap();
        let events = tracer.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "outer");
        assert!(events[0].dur_ns >= 1_000_000);
        assert_ne!(events[0].tid, events[1].tid, "distinct threads");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        drop(tracer.span("test", "ignored"));
        assert!(tracer.events().is_empty());
        tracer.set_enabled(true);
        drop(tracer.span("test", "kept"));
        assert_eq!(tracer.events().len(), 1);
    }

    #[test]
    fn ring_keeps_newest_events() {
        let tracer = Tracer::new(4);
        for _ in 0..10 {
            drop(tracer.span("test", "e"));
        }
        let events = tracer.events();
        assert_eq!(events.len(), 4);
        assert_eq!(tracer.dropped(), 6);
        // Oldest-first ordering survives the wrap.
        for w in events.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let tracer = Tracer::new(16);
        drop(tracer.span("pipeline", "fetch"));
        drop(tracer.span("pipeline", "decode"));
        let mut out = Vec::new();
        tracer.write_chrome_trace(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let v = crate::json::parse(&text).expect("valid JSON");
        let events = v
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        assert_eq!(events.len(), 2);
        assert_eq!(
            events[0].get("name").and_then(|n| n.as_str()),
            Some("fetch")
        );
    }
}
